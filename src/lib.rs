//! # krcore — Efficient (k,r)-Core Computation on Social Networks
//!
//! A from-scratch Rust reproduction of the VLDB 2017 paper *"When Engagement
//! Meets Similarity: Efficient (k,r)-Core Computation on Social Networks"*
//! (Zhang, Zhang, Qin, Zhang, Lin).
//!
//! A **(k,r)-core** is a connected subgraph of an attributed graph in which
//! every vertex has at least `k` neighbors inside the subgraph (*engagement*,
//! the k-core structure constraint) and every pair of vertices is similar
//! with respect to a threshold `r` (*similarity constraint*). The crate
//! provides:
//!
//! * enumeration of **all maximal (k,r)-cores** (`NaiveEnum`, `BasicEnum`,
//!   `AdvEnum` of the paper),
//! * the **maximum (k,r)-core** (`BasicMax`, `AdvMax` with the novel
//!   (k,k')-core size upper bound),
//! * the **clique-based baseline** of Section 3,
//! * a long-lived **query service** ([`server`]): component cache keyed by
//!   `(dataset, k, r-band)`, streamed enumeration results, line-delimited
//!   JSON protocol (`krcore-cli serve` / `krcore-cli query`),
//! * the supporting substrates: graph + k-core machinery ([`graph`]),
//!   similarity metrics and thresholds ([`similarity`]), maximal-clique
//!   enumeration ([`clique`]), and synthetic attributed social networks
//!   ([`datagen`]).
//!
//! ## Quickstart
//!
//! ```
//! use krcore::prelude::*;
//!
//! // A toy co-author network: two tight groups sharing one author.
//! let graph = Graph::from_edges(7, &[
//!     (0, 1), (0, 2), (1, 2),          // group A triangle
//!     (4, 5), (4, 6), (5, 6),          // group B triangle
//!     (3, 0), (3, 1), (3, 2),          // author 3 works with A...
//!     (3, 4), (3, 5), (3, 6),          // ...and with B
//! ]);
//! // Keyword attributes: A writes about databases, B about biology;
//! // author 3 writes about both.
//! let attrs = AttributeTable::keywords(vec![
//!     vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)],
//!     vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
//!     vec![(2, 1.0), (3, 1.0)], vec![(2, 1.0), (3, 1.0)], vec![(2, 1.0), (3, 1.0)],
//! ]);
//! let problem = ProblemInstance::new(
//!     graph, attrs, Metric::WeightedJaccard, Threshold::MinSimilarity(0.4), 2);
//! let cores = enumerate_maximal(&problem, &AlgoConfig::adv_enum()).cores;
//! assert_eq!(cores.len(), 2); // the two groups, each including author 3
//! let max = find_maximum(&problem, &AlgoConfig::adv_max()).core.unwrap();
//! assert_eq!(max.vertices.len(), 4);
//! ```

pub use kr_clique as clique;
pub use kr_core as core;
pub use kr_datagen as datagen;
pub use kr_graph as graph;
pub use kr_server as server;
pub use kr_similarity as similarity;

/// Convenient single-import surface for the common API.
pub mod prelude {
    pub use kr_core::{
        enumerate_maximal, enumerate_maximal_prepared, find_maximum, find_maximum_prepared,
        AlgoConfig, BoundKind, BranchPolicy, CoreHook, EnumResult, KrCore, LocalComponent,
        MaxResult, ProblemInstance, SearchOrder,
    };
    pub use kr_datagen::{DatasetPreset, SyntheticDataset};
    pub use kr_graph::{Graph, GraphBuilder, VertexId};
    pub use kr_server::{Client, QuerySpec, Server, ServerConfig};
    pub use kr_similarity::{AttributeTable, Metric, Threshold};
}
