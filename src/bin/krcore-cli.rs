//! Command-line (k,r)-core miner for SNAP-style datasets, plus the
//! long-lived query service and its client.
//!
//! ```text
//! krcore-cli enum   --edges graph.txt --points locs.tsv    --k 5 --r 10        [--out cores.txt]
//! krcore-cli enum   --edges dblp.txt  --keywords kw.tsv    --k 5 --r 0.4
//! krcore-cli max    --edges dblp.txt  --keywords kw.tsv    --k 5 --permille 3
//! krcore-cli stats  --edges graph.txt --points locs.tsv    --k 5 --r 10
//! krcore-cli ingest edges.txt (--points locs.tsv | --keywords kw.tsv) -o data.krb
//! krcore-cli serve  [--addr 127.0.0.1:7878] [--cache-capacity 16] [--max-time-limit-ms MS] \
//!                   [--dataset name=path.krb]... [--log PATH|-] [--slow-query-ms MS] \
//!                   [--max-connections N] [--max-queries-per-dataset N]
//! krcore-cli query  --addr 127.0.0.1:7878 <enum|max> --dataset gowalla-like --k 3 --r 8 \
//!                   [--scale 0.25] [--algo adv|basic] [--threads N] [--out FILE]
//! krcore-cli query  --addr 127.0.0.1:7878 <stats|metrics|ping|shutdown>
//! krcore-cli query  --addr 127.0.0.1:7878 <add-edges|remove-edges> --dataset NAME \
//!                   [--scale S] --edge U,V [--edge U,V]...
//! krcore-cli query  --addr 127.0.0.1:7878 set-point --dataset NAME [--scale S] \
//!                   --vertex W --point X,Y
//! ```
//!
//! * `--points FILE` selects Euclidean distance (`--r` is a max distance);
//! * `--keywords FILE` selects weighted Jaccard (`--r` is a min similarity,
//!   or use `--permille X` to calibrate r as the top-X‰ pairwise quantile);
//! * `--algo` picks the configuration (`adv` default, `basic`, `naive`,
//!   `clique`);
//! * `--threads N` runs the work-stealing parallel engine on `N` workers
//!   (`0` = all cores; default 1 = sequential; `adv`/`basic` only);
//! * `--time-limit-ms` bounds the run (prints a warning when exceeded);
//! * `ingest` streams a SNAP edge list + attribute TSV (attribute rows
//!   keyed by the file's original sparse ids) into a verified `.krb`
//!   binary snapshot — the format `serve --dataset` hosts; with
//!   `--with-index` it also precomputes the (k,r)-core decomposition
//!   index and embeds it as an optional snapshot section, so the server
//!   resolves every `(k, r)` cache miss by index lookup from the first
//!   query on;
//! * `serve` hosts the preset datasets — plus any `--dataset name=path.krb`
//!   snapshots — behind the line-delimited JSON protocol of `kr_server`
//!   (preprocessed components cached per `(dataset, k, r-band)`,
//!   enumeration results streamed); `--log PATH` (or `-` for stderr)
//!   turns on the structured span/slow-query trace log, and
//!   `--slow-query-ms MS` sets the slow-query threshold (default 1000;
//!   `0` logs every query); `--max-connections N` caps live sessions
//!   (overflow gets a `busy` frame; `0` = unlimited) and
//!   `--max-queries-per-dataset N` caps in-flight queries per dataset
//!   (see `docs/OPERATIONS.md`);
//! * `query add-edges` / `remove-edges` / `set-point` are the write half
//!   of the client: batched graph mutations applied atomically server-side
//!   (the whole batch is rejected on any invalid update), answered with a
//!   `mutated` frame whose counters print as TAB rows — `applied`,
//!   `ignored`, `version`, `core_updates`, and the cache `repairs` /
//!   `invalidations` the batch triggered;
//! * `query` is the matching client: cores stream to stdout as they
//!   arrive, diagnostics (cache hit/miss, timing, the server-assigned
//!   trace id) to stderr; `query metrics` prints the server's metrics
//!   registry — counters and gauges as `name<TAB>value`, histograms
//!   exploded into `.count`/`.sum`/`.p50`/`.p90`/`.p99` rows (all
//!   microseconds for the latency histograms).

use krcore::core::{
    clique_based_maximal, enumerate_maximal, find_maximum, AlgoConfig, ProblemInstance,
};
use krcore::graph::io::{read_edge_list_file, read_edge_list_streaming_with};
use krcore::server::{Algo, Client, QuerySpec, Server, ServerConfig};
use krcore::similarity::{
    read_keywords, read_keywords_mapped, read_points, read_points_mapped, top_permille_threshold,
    write_snapshot_file, AttributeTable, Metric, TableOracle, Threshold,
};
use std::io::Write;
use std::process::exit;

struct Args {
    command: String,
    edges: String,
    points: Option<String>,
    keywords: Option<String>,
    k: u32,
    r: Option<f64>,
    permille: Option<f64>,
    algo: String,
    out: Option<String>,
    time_limit_ms: Option<u64>,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: krcore-cli <enum|max|stats> --edges FILE (--points FILE | --keywords FILE) \
         --k K (--r R | --permille X) [--algo adv|basic|naive|clique] [--threads N] \
         [--out FILE] [--time-limit-ms MS]\n\
         \x20      krcore-cli ingest EDGES (--points FILE | --keywords FILE) -o OUT.krb \
         [--with-index] [--progress-every EDGES]\n\
         \x20      krcore-cli serve [--addr HOST:PORT] [--cache-capacity N] \
         [--max-time-limit-ms MS] [--max-scale S] [--dataset NAME=PATH.krb]... \
         [--log PATH|-] [--slow-query-ms MS] [--max-connections N] \
         [--max-queries-per-dataset N]\n\
         \x20      krcore-cli query --addr HOST:PORT <enum|max|stats|metrics|ping|shutdown> \
         [--dataset NAME --k K --r R] [--scale S] [--algo adv|basic] [--threads N] \
         [--time-limit-ms MS] [--node-limit N] [--out FILE]\n\
         \x20      krcore-cli query --addr HOST:PORT <add-edges|remove-edges> --dataset NAME \
         [--scale S] --edge U,V [--edge U,V]...\n\
         \x20      krcore-cli query --addr HOST:PORT set-point --dataset NAME [--scale S] \
         --vertex W --point X,Y"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let command = it.next().unwrap_or_else(|| usage());
    if !matches!(command.as_str(), "enum" | "max" | "stats") {
        usage();
    }
    let mut args = Args {
        command,
        edges: String::new(),
        points: None,
        keywords: None,
        k: 0,
        r: None,
        permille: None,
        algo: "adv".into(),
        out: None,
        time_limit_ms: None,
        threads: 1,
    };
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--edges" => args.edges = val(),
            "--points" => args.points = Some(val()),
            "--keywords" => args.keywords = Some(val()),
            "--k" => args.k = val().parse().unwrap_or_else(|_| usage()),
            "--r" => args.r = Some(val().parse().unwrap_or_else(|_| usage())),
            "--permille" => args.permille = Some(val().parse().unwrap_or_else(|_| usage())),
            "--algo" => args.algo = val(),
            "--out" => args.out = Some(val()),
            "--time-limit-ms" => {
                args.time_limit_ms = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--threads" => args.threads = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if args.edges.is_empty() || args.k == 0 {
        usage();
    }
    if args.points.is_some() == args.keywords.is_some() {
        eprintln!("exactly one of --points / --keywords is required");
        exit(2);
    }
    if args.r.is_some() == args.permille.is_some() {
        eprintln!("exactly one of --r / --permille is required");
        exit(2);
    }
    if args.permille.is_some() && args.points.is_some() {
        eprintln!("--permille only applies to keyword similarity");
        exit(2);
    }
    if args.threads != 1 && matches!(args.algo.as_str(), "naive" | "clique") {
        eprintln!("--threads only applies to the adv/basic configurations");
        exit(2);
    }
    args
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => return cmd_serve(),
        Some("query") => return cmd_query(),
        Some("ingest") => return cmd_ingest(),
        _ => {}
    }
    let args = parse_args();
    let loaded = match read_edge_list_file(&args.edges) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("failed to read {}: {e}", args.edges);
            exit(1);
        }
    };
    let n = loaded.graph.num_vertices();
    eprintln!(
        "loaded {} vertices / {} edges from {}",
        n,
        loaded.graph.num_edges(),
        args.edges
    );

    let (attrs, metric): (AttributeTable, Metric) = if let Some(path) = &args.points {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("failed to open {path}: {e}");
            exit(1)
        });
        match read_points(f, n) {
            Ok(t) => (t, Metric::Euclidean),
            Err(e) => {
                eprintln!("failed to parse {path}: {e}");
                exit(1);
            }
        }
    } else {
        let path = args.keywords.as_ref().expect("validated");
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("failed to open {path}: {e}");
            exit(1)
        });
        match read_keywords(f, n) {
            Ok(t) => (t, Metric::WeightedJaccard),
            Err(e) => {
                eprintln!("failed to parse {path}: {e}");
                exit(1);
            }
        }
    };

    let threshold = match (metric, args.r, args.permille) {
        (Metric::Euclidean, Some(r), _) => Threshold::MaxDistance(r),
        (Metric::WeightedJaccard, Some(r), _) => Threshold::MinSimilarity(r),
        (Metric::WeightedJaccard, None, Some(x)) => {
            let oracle = TableOracle::new(attrs.clone(), metric, Threshold::MinSimilarity(0.0));
            let r = top_permille_threshold(&oracle, n, x, 3000, 0x5EED);
            eprintln!("calibrated r = {r:.4} (top {x} permille)");
            Threshold::MinSimilarity(r)
        }
        _ => usage(),
    };

    let problem = ProblemInstance::new(loaded.graph, attrs, metric, threshold, args.k);
    let mut cfg = match args.algo.as_str() {
        "adv" => AlgoConfig::adv_enum(),
        "basic" => AlgoConfig::basic_enum(),
        "naive" => AlgoConfig::naive_enum(),
        "clique" => AlgoConfig::adv_enum(), // handled separately below
        other => {
            eprintln!("unknown --algo {other}");
            exit(2);
        }
    };
    if let Some(ms) = args.time_limit_ms {
        cfg = cfg.with_time_limit_ms(ms);
    }
    cfg = cfg.with_threads(args.threads);

    let t0 = std::time::Instant::now();
    match args.command.as_str() {
        "enum" | "stats" => {
            let cores = if args.algo == "clique" {
                clique_based_maximal(&problem)
            } else {
                let res = enumerate_maximal(&problem, &cfg);
                if !res.completed {
                    eprintln!("warning: time budget exceeded; results are incomplete");
                }
                res.cores
            };
            eprintln!(
                "{} maximal (k,r)-cores in {:.2?}",
                cores.len(),
                t0.elapsed()
            );
            if args.command == "stats" {
                let max = cores.iter().map(|c| c.len()).max().unwrap_or(0);
                let avg = if cores.is_empty() {
                    0.0
                } else {
                    cores.iter().map(|c| c.len()).sum::<usize>() as f64 / cores.len() as f64
                };
                println!("cores\t{}", cores.len());
                println!("max_size\t{max}");
                println!("avg_size\t{avg:.2}");
            } else {
                let mut out: Box<dyn Write> = match &args.out {
                    Some(path) => Box::new(std::io::BufWriter::new(
                        std::fs::File::create(path).unwrap_or_else(|e| {
                            eprintln!("cannot create {path}: {e}");
                            exit(1)
                        }),
                    )),
                    None => Box::new(std::io::stdout().lock()),
                };
                for core in &cores {
                    let ids: Vec<String> = core
                        .vertices
                        .iter()
                        .map(|&v| loaded.original_ids[v as usize].to_string())
                        .collect();
                    writeln!(out, "{}", ids.join("\t")).expect("write failed");
                }
            }
        }
        "max" => {
            let cfg = if args.algo == "basic" {
                AlgoConfig::basic_max()
            } else {
                AlgoConfig::adv_max()
            };
            let cfg = match args.time_limit_ms {
                Some(ms) => cfg.with_time_limit_ms(ms),
                None => cfg,
            };
            let cfg = cfg.with_threads(args.threads);
            let res = find_maximum(&problem, &cfg);
            if !res.completed {
                eprintln!("warning: time budget exceeded; result may be suboptimal");
            }
            match res.core {
                Some(core) => {
                    eprintln!(
                        "maximum core: {} vertices in {:.2?}",
                        core.len(),
                        t0.elapsed()
                    );
                    let ids: Vec<String> = core
                        .vertices
                        .iter()
                        .map(|&v| loaded.original_ids[v as usize].to_string())
                        .collect();
                    println!("{}", ids.join("\t"));
                }
                None => {
                    eprintln!("no (k,r)-core exists for k={} at this threshold", args.k);
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}

/// `krcore-cli ingest`: stream an edge list + attribute file into a
/// verified binary snapshot (`.krb`) that `serve --dataset` can host.
fn cmd_ingest() {
    let mut edges: Option<String> = None;
    let mut points: Option<String> = None;
    let mut keywords: Option<String> = None;
    let mut out: Option<String> = None;
    let mut with_index = false;
    let mut progress_every: u64 = 1_000_000;
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--points" => points = Some(val()),
            "--keywords" => keywords = Some(val()),
            "-o" | "--out" => out = Some(val()),
            "--with-index" => with_index = true,
            "--progress-every" => progress_every = val().parse().unwrap_or_else(|_| usage()),
            _ if edges.is_none() && !arg.starts_with('-') => edges = Some(arg),
            _ => usage(),
        }
    }
    let (Some(edges), Some(out)) = (edges, out) else {
        usage()
    };
    if points.is_some() == keywords.is_some() {
        eprintln!("exactly one of --points / --keywords is required");
        exit(2);
    }

    let t0 = std::time::Instant::now();
    let source = std::fs::File::open(&edges).unwrap_or_else(|e| {
        eprintln!("failed to open {edges}: {e}");
        exit(1)
    });
    let (loaded, progress) = read_edge_list_streaming_with(source, progress_every.max(1), |p| {
        eprintln!(
            "  ... {} edges / {} vertices ({} MiB read)",
            p.edges,
            p.vertices,
            p.bytes >> 20
        );
    })
    .unwrap_or_else(|e| {
        eprintln!("failed to read {edges}: {e}");
        exit(1)
    });
    let n = loaded.graph.num_vertices();
    eprintln!(
        "streamed {} vertices / {} edges ({} raw records, {} bytes) in {:.2?}",
        n,
        loaded.graph.num_edges(),
        progress.edges,
        progress.bytes,
        t0.elapsed()
    );

    let id_map = &loaded.id_map;
    let (attrs, metric, stats) = if let Some(path) = &points {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("failed to open {path}: {e}");
            exit(1)
        });
        match read_points_mapped(f, id_map, n) {
            Ok((t, s)) => (t, Metric::Euclidean, s),
            Err(e) => {
                eprintln!("failed to parse {path}: {e}");
                exit(1);
            }
        }
    } else {
        let path = keywords.as_ref().expect("validated");
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("failed to open {path}: {e}");
            exit(1)
        });
        match read_keywords_mapped(f, id_map, n) {
            Ok((t, s)) => (t, Metric::WeightedJaccard, s),
            Err(e) => {
                eprintln!("failed to parse {path}: {e}");
                exit(1);
            }
        }
    };
    eprintln!(
        "joined attributes: {} rows matched, {} rows for vertices absent from the graph",
        stats.matched, stats.unmatched
    );

    let write_result = if with_index {
        let t_ix = std::time::Instant::now();
        let threshold = if metric.is_distance() {
            Threshold::MaxDistance(f64::MAX)
        } else {
            Threshold::MinSimilarity(0.0)
        };
        let oracle = TableOracle::new(attrs.clone(), metric, threshold);
        let index = krcore::core::decomp::DecompositionIndex::build_default(&loaded.graph, &oracle);
        eprintln!(
            "built decomposition index: {} r-bands, {} KiB, in {:.2?}",
            index.bands().len(),
            index.memory_bytes() >> 10,
            t_ix.elapsed()
        );
        krcore::core::decomp::write_indexed_snapshot_file(
            &out,
            &loaded.graph,
            &loaded.original_ids,
            &attrs,
            metric,
            &index,
        )
    } else {
        write_snapshot_file(&out, &loaded.graph, &loaded.original_ids, &attrs, metric)
    };
    if let Err(e) = write_result {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    // Machine-readable summary on stdout so scripts can scrape it.
    println!(
        "wrote {out}: {} vertices, {} edges, {} attribute rows, {} bytes, metric {:?}{}",
        n,
        loaded.graph.num_edges(),
        stats.matched,
        bytes,
        metric,
        if with_index { ", indexed" } else { "" }
    );
}

/// `krcore-cli serve`: host the preset datasets behind the wire protocol.
fn cmd_serve() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => config.addr = val(),
            "--cache-capacity" => config.cache_capacity = val().parse().unwrap_or_else(|_| usage()),
            "--max-time-limit-ms" => {
                config.max_time_limit_ms = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--max-node-limit" => {
                config.max_node_limit = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--max-scale" => config.max_scale = val().parse().unwrap_or_else(|_| usage()),
            "--log" => config.trace_log = Some(val()),
            "--slow-query-ms" => config.slow_query_ms = val().parse().unwrap_or_else(|_| usage()),
            "--max-connections" => {
                config.max_connections = val().parse().unwrap_or_else(|_| usage())
            }
            "--max-queries-per-dataset" => {
                config.max_queries_per_dataset = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--dataset" => {
                let spec = val();
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--dataset expects NAME=PATH.krb, got {spec:?}");
                    exit(2);
                };
                config
                    .file_datasets
                    .push((name.to_string(), path.to_string()));
            }
            _ => usage(),
        }
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            exit(1);
        }
    };
    // Machine-readable line on stdout so scripts can scrape the port.
    println!("kr-server listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("server failed: {e}");
        exit(1);
    }
    eprintln!("kr-server shut down cleanly");
}

/// `krcore-cli query`: the protocol client. Cores stream to stdout as
/// frames arrive; diagnostics go to stderr.
fn cmd_query() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut action: Option<String> = None;
    let mut dataset: Option<String> = None;
    let mut k: u32 = 0;
    let mut r: Option<f64> = None;
    let mut scale: Option<f64> = None;
    let mut algo = Algo::Adv;
    let mut threads: usize = 1;
    let mut time_limit_ms: Option<u64> = None;
    let mut node_limit: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut vertex: Option<u32> = None;
    let mut point: Option<(f64, f64)> = None;
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = val(),
            "--dataset" => dataset = Some(val()),
            "--k" => k = val().parse().unwrap_or_else(|_| usage()),
            "--r" => r = Some(val().parse().unwrap_or_else(|_| usage())),
            "--scale" => scale = Some(val().parse().unwrap_or_else(|_| usage())),
            "--algo" => {
                algo = match val().as_str() {
                    "adv" => Algo::Adv,
                    "basic" => Algo::Basic,
                    _ => usage(),
                }
            }
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--time-limit-ms" => time_limit_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--node-limit" => node_limit = Some(val().parse().unwrap_or_else(|_| usage())),
            "--out" => out = Some(val()),
            "--edge" => {
                let spec = val();
                let (u, v) = spec.split_once(',').unwrap_or_else(|| usage());
                edges.push((
                    u.parse().unwrap_or_else(|_| usage()),
                    v.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--vertex" => vertex = Some(val().parse().unwrap_or_else(|_| usage())),
            "--point" => {
                let spec = val();
                let (x, y) = spec.split_once(',').unwrap_or_else(|| usage());
                point = Some((
                    x.parse().unwrap_or_else(|_| usage()),
                    y.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "enum" | "max" | "stats" | "metrics" | "ping" | "shutdown" | "add-edges"
            | "remove-edges" | "set-point"
                if action.is_none() =>
            {
                action = Some(arg)
            }
            _ => usage(),
        }
    }
    let action = action.unwrap_or_else(|| usage());

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            exit(1);
        }
    };
    let fail = |e: krcore::server::ClientError| -> ! {
        eprintln!("query failed: {e}");
        exit(1);
    };
    match action.as_str() {
        "ping" => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("pong");
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            println!("server shutting down");
        }
        "stats" => {
            let stats = client.stats().unwrap_or_else(|e| fail(e));
            println!("hits\t{}", stats.hits);
            println!("misses\t{}", stats.misses);
            println!("evictions\t{}", stats.evictions);
            println!("entries\t{}", stats.entries);
            println!("resident_bytes\t{}", stats.resident_bytes);
            println!("preprocess_ms\t{}", stats.preprocess_ms);
            println!("oracle_evals\t{}", stats.oracle_evals);
            println!("index_hits\t{}", stats.index_hits);
            println!("residual_vertices\t{}", stats.residual_vertices);
            println!("repairs\t{}", stats.repairs);
            println!("invalidations\t{}", stats.invalidations);
        }
        "metrics" => {
            // Flat TAB-separated rows so scripts can `awk -F'\t'` them.
            let snap = client.metrics().unwrap_or_else(|e| fail(e));
            for (name, value) in &snap.counters {
                println!("{name}\t{value}");
            }
            for (name, value) in &snap.gauges {
                println!("{name}\t{value}");
            }
            for (name, h) in &snap.histograms {
                println!("{name}.count\t{}", h.count);
                println!("{name}.sum\t{}", h.sum);
                println!("{name}.p50\t{}", h.quantile(0.5));
                println!("{name}.p90\t{}", h.quantile(0.9));
                println!("{name}.p99\t{}", h.quantile(0.99));
            }
        }
        cmd @ ("add-edges" | "remove-edges" | "set-point") => {
            let dataset = dataset.unwrap_or_else(|| usage());
            let scale = scale.unwrap_or(1.0);
            let res = match cmd {
                "add-edges" | "remove-edges" => {
                    if edges.is_empty() {
                        usage();
                    }
                    if cmd == "add-edges" {
                        client.add_edges(&dataset, scale, edges)
                    } else {
                        client.remove_edges(&dataset, scale, edges)
                    }
                }
                _ => {
                    let w = vertex.unwrap_or_else(|| usage());
                    let (x, y) = point.unwrap_or_else(|| usage());
                    client.set_attributes(
                        &dataset,
                        scale,
                        vec![(w, krcore::server::AttributeValue::Point(x, y))],
                    )
                }
            }
            .unwrap_or_else(|e| fail(e));
            eprintln!(
                "mutation applied in {} ms server-side{}",
                res.elapsed_ms,
                if res.trace.is_empty() {
                    String::new()
                } else {
                    format!(" | trace {}", res.trace)
                },
            );
            // Same TAB rows as `stats`, so scripts scrape both alike.
            println!("applied\t{}", res.applied);
            println!("ignored\t{}", res.ignored);
            println!("version\t{}", res.version);
            println!("core_updates\t{}", res.core_updates);
            println!("repairs\t{}", res.repairs);
            println!("invalidations\t{}", res.invalidations);
        }
        cmd @ ("enum" | "max") => {
            let dataset = dataset.unwrap_or_else(|| usage());
            let r = r.unwrap_or_else(|| usage());
            if k == 0 {
                usage();
            }
            let mut spec = QuerySpec::new(&dataset, k, r);
            if let Some(scale) = scale {
                spec.scale = scale;
            }
            spec.algo = algo;
            spec.threads = threads;
            spec.time_limit_ms = time_limit_ms;
            spec.node_limit = node_limit;
            let result = if cmd == "enum" {
                client.enumerate(spec)
            } else {
                client.maximum(spec)
            }
            .unwrap_or_else(|e| fail(e));
            eprintln!(
                "{} core(s) | cache {} | {} search nodes | {} ms server-side{}",
                result.cores.len(),
                result.cache.name(),
                result.nodes,
                result.elapsed_ms,
                if result.trace.is_empty() {
                    String::new()
                } else {
                    format!(" | trace {}", result.trace)
                },
            );
            if !result.completed {
                eprintln!("warning: budget exceeded server-side; results are incomplete");
            }
            let mut sink: Box<dyn Write> = match &out {
                Some(path) => Box::new(std::io::BufWriter::new(
                    std::fs::File::create(path).unwrap_or_else(|e| {
                        eprintln!("cannot create {path}: {e}");
                        exit(1)
                    }),
                )),
                None => Box::new(std::io::stdout().lock()),
            };
            for core in &result.cores {
                let ids: Vec<String> = core.iter().map(|v| v.to_string()).collect();
                writeln!(sink, "{}", ids.join("\t")).expect("write failed");
            }
        }
        _ => usage(),
    }
}
