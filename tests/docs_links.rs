//! Intra-repo link checker for the docs layer: every relative markdown
//! link in `README.md` and `docs/*.md` must resolve to a file that
//! exists. External `http(s)` links and same-page `#anchors` are left
//! alone; `path#anchor` links are checked for the path part only.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `(target)` of every inline markdown link `[text](target)`
/// in `text`. Deliberately simple: the docs do not use reference-style
/// links or targets containing parentheses.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                out.push(text[i + 2..i + 2 + end].to_string());
                i += 2 + end;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("md") {
            files.push(path);
        }
    }
    assert!(
        files.len() >= 6,
        "expected README + docs pages, got {files:?}"
    );

    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().unwrap_or(Path::new("."));
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap();
            if path_part.is_empty() {
                continue;
            }
            let resolved = dir.join(path_part);
            checked += 1;
            if !resolved.exists() {
                broken.push(format!(
                    "{} -> {target} (resolved {})",
                    file.strip_prefix(&root).unwrap_or(file).display(),
                    resolved.display()
                ));
            }
        }
    }
    assert!(checked > 0, "link scan found no relative links at all");
    assert!(
        broken.is_empty(),
        "broken intra-repo doc links:\n{}",
        broken.join("\n")
    );
}
