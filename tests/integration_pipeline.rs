//! End-to-end integration: datagen → calibration → preprocessing →
//! enumeration/maximum → verification, across every preset.

use krcore::prelude::*;
use krcore::similarity::{top_permille_threshold, TableOracle};

fn instance_for(preset: DatasetPreset, scale: f64, k: u32, r_axis_value: f64) -> ProblemInstance {
    let d = preset.generate_scaled(scale);
    let threshold = match d.metric {
        krcore::similarity::Metric::Euclidean => Threshold::MaxDistance(r_axis_value),
        _ => {
            let oracle = TableOracle::new(
                d.attributes.clone(),
                d.metric,
                Threshold::MinSimilarity(0.0),
            );
            let r = top_permille_threshold(&oracle, d.graph.num_vertices(), r_axis_value, 2000, 11);
            Threshold::MinSimilarity(r)
        }
    };
    ProblemInstance::new(d.graph, d.attributes, d.metric, threshold, k)
}

#[test]
fn every_preset_yields_verified_cores() {
    for (preset, r) in [
        (DatasetPreset::BrightkiteLike, 8.0),
        (DatasetPreset::GowallaLike, 8.0),
        (DatasetPreset::DblpLike, 5.0),
        (DatasetPreset::PokecLike, 5.0),
    ] {
        let p = instance_for(preset, 0.3, 3, r);
        let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        assert!(res.completed, "{preset:?} aborted");
        assert!(
            !res.cores.is_empty(),
            "{preset:?}: no cores found — dataset/threshold drifted"
        );
        // Definitions check for every core; pairwise non-containment.
        krcore::core::verify_maximal_family(&p, &res.cores)
            .unwrap_or_else(|e| panic!("{preset:?}: {e}"));
    }
}

#[test]
fn maximum_equals_largest_maximal_on_presets() {
    for (preset, r) in [
        (DatasetPreset::GowallaLike, 8.0),
        (DatasetPreset::DblpLike, 5.0),
    ] {
        let p = instance_for(preset, 0.3, 3, r);
        let enum_res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        let expect = enum_res.cores.iter().map(|c| c.len()).max().unwrap_or(0);
        for cfg in [AlgoConfig::basic_max(), AlgoConfig::adv_max()] {
            let res = find_maximum(&p, &cfg);
            assert!(res.completed);
            assert_eq!(res.core.map_or(0, |c| c.len()), expect, "{preset:?}");
        }
    }
}

#[test]
fn clique_baseline_agrees_on_presets() {
    let p = instance_for(DatasetPreset::GowallaLike, 0.25, 3, 8.0);
    let fast = enumerate_maximal(&p, &AlgoConfig::adv_enum()).cores;
    let baseline = krcore::core::clique_based_maximal(&p);
    assert_eq!(fast, baseline);
}

#[test]
fn monotonicity_in_k() {
    // Raising k can only shrink the union of core members.
    let d = DatasetPreset::GowallaLike.generate_scaled(0.3);
    let mut prev_members: Option<std::collections::HashSet<VertexId>> = None;
    for k in [2u32, 3, 4, 5] {
        let p = ProblemInstance::new(
            d.graph.clone(),
            d.attributes.clone(),
            d.metric,
            Threshold::MaxDistance(8.0),
            k,
        );
        let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        let members: std::collections::HashSet<VertexId> = res
            .cores
            .iter()
            .flat_map(|c| c.vertices.iter().copied())
            .collect();
        if let Some(prev) = &prev_members {
            assert!(
                members.is_subset(prev),
                "k={k}: member set grew when k increased"
            );
        }
        prev_members = Some(members);
    }
}

#[test]
fn monotonicity_in_r_distance() {
    // Relaxing a distance threshold can only grow the member union.
    let d = DatasetPreset::BrightkiteLike.generate_scaled(0.3);
    let mut prev: Option<std::collections::HashSet<VertexId>> = None;
    for r in [2.0f64, 5.0, 10.0, 20.0] {
        let p = ProblemInstance::new(
            d.graph.clone(),
            d.attributes.clone(),
            d.metric,
            Threshold::MaxDistance(r),
            3,
        );
        let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        let members: std::collections::HashSet<VertexId> = res
            .cores
            .iter()
            .flat_map(|c| c.vertices.iter().copied())
            .collect();
        if let Some(prev) = &prev {
            assert!(
                prev.is_subset(&members),
                "r={r}: member set shrank when r relaxed"
            );
        }
        prev = Some(members);
    }
}

#[test]
fn cores_respect_planted_structure() {
    // At a tight geo threshold, every core should sit inside one planted
    // community (cities are hundreds of km apart; only the hub city mixes).
    let d = DatasetPreset::BrightkiteLike.generate_scaled(0.3);
    let p = ProblemInstance::new(
        d.graph.clone(),
        d.attributes.clone(),
        d.metric,
        Threshold::MaxDistance(10.0),
        3,
    );
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert!(!res.cores.is_empty());
    let mut single_community = 0usize;
    for core in &res.cores {
        let mut comms: Vec<u32> = core
            .vertices
            .iter()
            .map(|&v| d.community[v as usize])
            .collect();
        comms.sort_unstable();
        comms.dedup();
        if comms.len() == 1 {
            single_community += 1;
        }
    }
    // The hub city can blend communities; the overwhelming majority of
    // cores must still be community-pure.
    assert!(
        single_community * 10 >= res.cores.len() * 8,
        "only {single_community}/{} cores community-pure",
        res.cores.len()
    );
}

#[test]
fn snap_roundtrip_preserves_results() {
    // Export the graph as a SNAP edge list, re-import, and verify the
    // mining results are identical (vertex ids are preserved because the
    // export enumerates vertices in order).
    let d = DatasetPreset::GowallaLike.generate_scaled(0.2);
    let mut buf = Vec::new();
    krcore::graph::io::write_edge_list(&d.graph, &mut buf).unwrap();
    let loaded = krcore::graph::io::read_edge_list(&buf[..]).unwrap();
    // Densification preserves first-seen order, which for our export is
    // ascending — but isolated vertices are dropped; compare via the
    // induced problem on the loaded graph only if sizes match.
    if loaded.graph.num_vertices() == d.graph.num_vertices() {
        let p1 = ProblemInstance::new(
            d.graph.clone(),
            d.attributes.clone(),
            d.metric,
            Threshold::MaxDistance(8.0),
            3,
        );
        let p2 = ProblemInstance::new(
            loaded.graph,
            d.attributes.clone(),
            d.metric,
            Threshold::MaxDistance(8.0),
            3,
        );
        assert_eq!(
            enumerate_maximal(&p1, &AlgoConfig::adv_enum()).cores,
            enumerate_maximal(&p2, &AlgoConfig::adv_enum()).cores
        );
    }
}

#[test]
fn time_limit_reports_incomplete_not_wrong() {
    // With an absurdly small budget the run must flag incompleteness and
    // still return only valid cores.
    let p = instance_for(DatasetPreset::GowallaLike, 0.5, 3, 12.0);
    let res = enumerate_maximal(&p, &AlgoConfig::adv_enum().with_time_limit_ms(1));
    for c in &res.cores {
        assert!(krcore::core::is_kr_core(&p, c));
    }
}
