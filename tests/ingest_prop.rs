//! Property tests for the ingestion pipeline.
//!
//! 1. The chunked streaming edge-list reader is behaviorally identical
//!    to the line-buffered reference reader on arbitrary messy input
//!    (sparse ids, duplicates, self loops, comments, CRLF, weird
//!    whitespace), and `write_edge_list` output round-trips through it.
//! 2. A snapshot round trip (`snapshot_to_bytes` → `read_snapshot_bytes`)
//!    changes nothing: preprocessing the reloaded dataset yields
//!    **identical** `LocalComponent`s (CSR arenas compare byte for byte
//!    via `Eq`) on random `datagen` instances.
//! 3. The full text pipeline — edge list + attribute TSV keyed by sparse
//!    original ids → streaming load + mapped join → snapshot → load →
//!    preprocess — yields the same cores as the direct in-memory path,
//!    modulo the densification relabeling (compared in original-id
//!    space, where the two are exactly equal).

use krcore::graph::io::{read_edge_list, read_edge_list_streaming, write_edge_list, IoError};
use krcore::prelude::*;
use krcore::similarity::{
    read_keywords_mapped, read_points_mapped, read_snapshot_bytes, snapshot_to_bytes,
    write_attributes,
};
use proptest::prelude::*;

/// One line of a synthetic edge-list file: an edge with formatting
/// quirks, a comment, or a blank line.
#[derive(Debug, Clone)]
enum Line {
    Edge { a: u64, b: u64, sep: u8, pad: bool },
    Comment(String),
    Blank,
}

fn arb_edge() -> impl Strategy<Value = Line> {
    (0u64..40, 0u64..40, 0u8..4, false..true).prop_map(|(a, b, sep, pad)| {
        // Sparse ids: stretch a dense-ish range so first-seen
        // densification has real work to do.
        Line::Edge {
            a: a * 17 + 3,
            b: b * 17 + 3,
            sep,
            pad,
        }
    })
}

fn arb_line() -> impl Strategy<Value = Line> {
    let comment = (0u8..4).prop_map(|pick| {
        Line::Comment(
            match pick {
                0 => "#",
                1 => "# a comment",
                2 => "#\tweird\twhitespace  ",
                _ => "# 1 2 3 looks like data",
            }
            .to_string(),
        )
    });
    // The offline proptest shim's `prop_oneof!` draws uniformly, so the
    // edge arm is listed once per desired weight unit.
    prop_oneof![
        arb_edge(),
        arb_edge(),
        arb_edge(),
        arb_edge(),
        arb_edge(),
        arb_edge(),
        comment,
        Just(Line::Blank),
    ]
}

fn render(lines: &[Line], crlf: bool, trailing_newline: bool) -> String {
    let mut out = String::new();
    let eol = if crlf { "\r\n" } else { "\n" };
    for (i, line) in lines.iter().enumerate() {
        match line {
            Line::Edge { a, b, sep, pad } => {
                let sep = match sep {
                    0 => " ",
                    1 => "\t",
                    2 => "   ",
                    _ => " \t ",
                };
                if *pad {
                    out.push_str("  ");
                }
                out.push_str(&format!("{a}{sep}{b}"));
                if *pad {
                    out.push_str(" \t");
                }
            }
            Line::Comment(c) => out.push_str(c),
            Line::Blank => {}
        }
        if i + 1 < lines.len() || trailing_newline {
            out.push_str(eol);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_reader_equals_reference_reader(
        lines in proptest::collection::vec(arb_line(), 0..30),
        crlf in false..true,
        trailing_newline in false..true,
    ) {
        let text = render(&lines, crlf, trailing_newline);
        let reference = read_edge_list(text.as_bytes());
        let streaming = read_edge_list_streaming(text.as_bytes());
        match (reference, streaming) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.graph, b.graph);
                prop_assert_eq!(a.original_ids, b.original_ids);
            }
            (Err(IoError::Empty), Err(IoError::Empty)) => {}
            (a, b) => prop_assert!(false, "readers disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn written_edge_lists_roundtrip_through_streaming_reader(
        lines in proptest::collection::vec(arb_line(), 1..30),
    ) {
        let text = render(&lines, false, true);
        let Ok(loaded) = read_edge_list(text.as_bytes()) else {
            return Ok(()); // all-comment input: nothing to round-trip
        };
        if loaded.graph.num_edges() == 0 {
            return Ok(()); // self-loop-only input writes an empty list
        }
        let mut buf = Vec::new();
        write_edge_list(&loaded.graph, &mut buf).unwrap();
        let back = read_edge_list_streaming(&buf[..]).unwrap();
        // write_edge_list emits dense ids sorted, so reloading them
        // densifies isolated-vertex-free graphs in vertex order...
        prop_assert_eq!(back.graph.num_edges(), loaded.graph.num_edges());
        // ...and re-mapping through the reload's id map reproduces every
        // edge exactly.
        let edges: std::collections::BTreeSet<(u64, u64)> = back
            .graph
            .edges()
            .map(|(u, v)| {
                let (a, b) = (
                    back.original_ids[u as usize],
                    back.original_ids[v as usize],
                );
                (a.min(b), a.max(b))
            })
            .collect();
        let expected: std::collections::BTreeSet<(u64, u64)> = loaded
            .graph
            .edges()
            .map(|(u, v)| ((u as u64).min(v as u64), (u as u64).max(v as u64)))
            .collect();
        prop_assert_eq!(edges, expected);
    }
}

/// Deterministic per-case datagen instance for the snapshot properties.
fn datagen_case(preset_idx: usize, scale_step: u32, k: u32) -> (SyntheticDataset, u32, f64) {
    let preset = DatasetPreset::all()[preset_idx % 4];
    let scale = 0.1 + f64::from(scale_step % 4) * 0.05;
    let d = preset.generate_scaled(scale);
    let r = if d.metric.is_distance() { 8.0 } else { 0.25 };
    (d, k, r)
}

fn threshold_for(metric: Metric, r: f64) -> Threshold {
    if metric.is_distance() {
        Threshold::MaxDistance(r)
    } else {
        Threshold::MinSimilarity(r)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot round trip is lossless: preprocessing the reloaded
    /// dataset yields LocalComponents that compare equal (the CSR arenas
    /// derive `Eq`, so this pins offsets and target arenas exactly).
    #[test]
    fn snapshot_roundtrip_preserves_preprocessing(
        preset_idx in 0usize..4,
        scale_step in 0u32..4,
        k in 2u32..4,
    ) {
        let (d, k, r) = datagen_case(preset_idx, scale_step, k);
        // Sparse original ids exercise the id-map section.
        let original_ids: Vec<u64> = (0..d.graph.num_vertices() as u64).map(|v| v * 3 + 11).collect();
        let bytes = snapshot_to_bytes(&d.graph, &original_ids, &d.attributes, d.metric);
        let ds = read_snapshot_bytes(bytes).expect("roundtrip");
        prop_assert_eq!(&ds.graph, &d.graph);
        prop_assert_eq!(&ds.original_ids, &original_ids);
        prop_assert_eq!(&ds.attributes, &d.attributes);
        prop_assert_eq!(ds.metric, d.metric);

        let direct = ProblemInstance::new(
            d.graph.clone(), d.attributes.clone(), d.metric, threshold_for(d.metric, r), k);
        let reloaded = ProblemInstance::new(
            ds.graph, ds.attributes, ds.metric, threshold_for(ds.metric, r), k);
        prop_assert_eq!(direct.preprocess(), reloaded.preprocess());
    }

    /// Full text-ingestion pipeline vs the direct in-memory path. The
    /// text round trip relabels vertices (first-seen densification), so
    /// the comparison happens in original-id space, where the maximal
    /// cores must match exactly.
    #[test]
    fn text_ingest_pipeline_matches_direct_path(
        preset_idx in 0usize..4,
        scale_step in 0u32..4,
        k in 2u32..4,
    ) {
        let (d, k, r) = datagen_case(preset_idx, scale_step, k);
        let n = d.graph.num_vertices();
        let orig = |v: VertexId| (v as u64) * 7 + 5;

        // Serialize the dataset as the text files a user would ingest:
        // an edge list over sparse original ids, and an attribute TSV
        // keyed by the same ids.
        let mut edge_text = String::from("# synthetic ingest fixture\n");
        for (u, v) in d.graph.edges() {
            edge_text.push_str(&format!("{}\t{}\n", orig(u), orig(v)));
        }
        let mut attr_text = Vec::new();
        write_attributes(&d.attributes, &mut attr_text).unwrap();
        // write_attributes keys rows by dense id; rewrite the leading
        // column to original ids.
        let attr_text: String = String::from_utf8(attr_text)
            .unwrap()
            .lines()
            .map(|line| {
                if line.starts_with('#') || line.is_empty() {
                    line.to_string()
                } else {
                    let (id, rest) = line.split_once('\t').unwrap_or((line, ""));
                    let dense: u64 = id.parse().unwrap();
                    format!("{}\t{}", dense * 7 + 5, rest)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");

        let loaded = read_edge_list_streaming(edge_text.as_bytes()).expect("streamed");
        let id_map = &loaded.id_map;
        let ln = loaded.graph.num_vertices();
        let (attrs, stats) = match &d.attributes {
            AttributeTable::Points(_) =>
                read_points_mapped(attr_text.as_bytes(), id_map, ln).expect("points"),
            AttributeTable::Keywords(_) =>
                read_keywords_mapped(attr_text.as_bytes(), id_map, ln).expect("keywords"),
            AttributeTable::Vectors(_) => unreachable!("datagen emits points/keywords"),
        };
        // Isolated vertices never appear in an edge list, so the loaded
        // graph may be smaller; attribute rows for them count as
        // unmatched, not errors.
        prop_assert_eq!(stats.matched, ln as u64);
        prop_assert_eq!(stats.unmatched, (n - ln) as u64);

        let ds = read_snapshot_bytes(snapshot_to_bytes(
            &loaded.graph, &loaded.original_ids, &attrs, d.metric)).expect("snapshot");

        let ingested = ProblemInstance::new(
            ds.graph, ds.attributes, ds.metric, threshold_for(ds.metric, r), k);
        let direct = ProblemInstance::new(
            d.graph.clone(), d.attributes.clone(), d.metric, threshold_for(d.metric, r), k);
        let cfg = AlgoConfig::adv_enum();

        // Compare maximal cores in original-id space.
        let to_orig_sets = |cores: Vec<KrCore>, map: &dyn Fn(VertexId) -> u64| {
            let mut sets: Vec<Vec<u64>> = cores
                .into_iter()
                .map(|c| {
                    let mut ids: Vec<u64> = c.vertices.iter().map(|&v| map(v)).collect();
                    ids.sort_unstable();
                    ids
                })
                .collect();
            sets.sort();
            sets
        };
        let ingested_cores = to_orig_sets(
            krcore::core::enumerate_maximal(&ingested, &cfg).cores,
            &|v| ds.original_ids[v as usize],
        );
        let direct_cores = to_orig_sets(
            krcore::core::enumerate_maximal(&direct, &cfg).cores,
            &|v| orig(v),
        );
        prop_assert_eq!(ingested_cores, direct_cores);
    }
}
