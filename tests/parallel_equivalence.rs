//! Cross-engine equivalence on every dataset preset: the parallel engine
//! must return vertex-set-identical results to the sequential engine for
//! both the enumeration and the maximum search, at every thread count.

use kr_bench::BenchDataset;
use krcore::prelude::*;

/// Representative (scale, k, r) per preset: small enough for CI, large
/// enough that the preprocessed graph has several components and the
/// search trees split into many subtasks.
fn cases() -> Vec<(DatasetPreset, f64, u32, f64)> {
    vec![
        (DatasetPreset::BrightkiteLike, 0.25, 3, 8.0),
        (DatasetPreset::GowallaLike, 0.25, 3, 10.0),
        (DatasetPreset::DblpLike, 0.2, 4, 5.0),
        (DatasetPreset::PokecLike, 0.2, 4, 5.0),
    ]
}

#[test]
fn adv_enum_parallel_matches_sequential_on_all_presets() {
    for (preset, scale, k, r) in cases() {
        let ds = BenchDataset::new(preset, scale);
        let p = ds.instance(k, r);
        let seq = krcore::core::enumerate_maximal(&p, &AlgoConfig::adv_enum());
        assert!(seq.completed, "{preset:?} sequential aborted");
        for threads in [2, 4] {
            let par = krcore::core::enumerate_maximal(
                &p,
                &AlgoConfig::adv_enum_parallel().with_threads(threads),
            );
            assert!(par.completed, "{preset:?} parallel aborted");
            assert_eq!(
                par.cores, seq.cores,
                "{preset:?} (k={k}, r={r}, threads={threads}): core families differ"
            );
        }
    }
}

#[test]
fn adv_max_parallel_matches_sequential_on_all_presets() {
    for (preset, scale, k, r) in cases() {
        let ds = BenchDataset::new(preset, scale);
        let p = ds.instance(k, r);
        let seq = krcore::core::find_maximum(&p, &AlgoConfig::adv_max());
        assert!(seq.completed, "{preset:?} sequential aborted");
        for threads in [2, 4] {
            let par = krcore::core::find_maximum(
                &p,
                &AlgoConfig::adv_max_parallel().with_threads(threads),
            );
            assert!(par.completed, "{preset:?} parallel aborted");
            assert_eq!(
                par.core.as_ref().map(|c| &c.vertices),
                seq.core.as_ref().map(|c| &c.vertices),
                "{preset:?} (k={k}, r={r}, threads={threads}): maximum cores differ"
            );
            if let Some(core) = &par.core {
                assert!(
                    krcore::core::is_kr_core(&p, core),
                    "{preset:?}: parallel result is not a (k,r)-core"
                );
            }
        }
    }
}

#[test]
fn parallel_preprocessing_matches_sequential_on_all_presets() {
    for (preset, scale, k, r) in cases() {
        let ds = BenchDataset::new(preset, scale);
        let p = ds.instance(k, r);
        let seq = p.preprocess();
        let par = p.preprocess_parallel(4);
        assert_eq!(seq.len(), par.len(), "{preset:?}: component count differs");
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                a.local_to_global, b.local_to_global,
                "{preset:?}: component membership differs"
            );
            assert_eq!(a.adj_csr(), b.adj_csr(), "{preset:?}: adjacency differs");
            assert_eq!(
                a.dissimilarity(),
                b.dissimilarity(),
                "{preset:?}: dissimilarity differs"
            );
        }
    }
}
