//! Golden-file harness for the ingestion pipeline and the `.krb`
//! snapshot format.
//!
//! * **Byte-exact pinning** — ingesting the committed fixture inputs
//!   (`tests/fixtures/tiny.edges` + attribute TSVs) must reproduce the
//!   committed snapshot bytes exactly. Any change to the format, the
//!   loaders, or the writer shows up as a diff against the golden files.
//!   Regenerate deliberately with `KR_BLESS_GOLDEN=1 cargo test --test
//!   snapshot_golden` after a *intentional* format revision (and bump
//!   the snapshot version).
//! * **Corruption matrix** — flipping any header byte and truncating at
//!   every byte boundary (a superset of "every section boundary") must
//!   produce typed [`SnapshotError`]s, never panics.
//! * **Forward compatibility** — a higher minor version with unknown
//!   optional sections loads (skipping them); a higher major version and
//!   unknown required sections are typed errors.

use krcore::core::decomp::{
    indexed_snapshot_to_bytes, read_indexed_snapshot_bytes, DecompositionIndex,
};
use krcore::graph::io::read_edge_list_streaming_file;
use krcore::graph::snapshot::{
    add_graph_sections, fnv1a64, section, SnapshotError, SnapshotWriter, HEADER_LEN,
    SECTION_ENTRY_LEN, SECTION_FLAG_OPTIONAL, VERSION_MINOR,
};
use krcore::prelude::*;
use krcore::similarity::snapshot::encode_attributes;
use krcore::similarity::{
    read_keywords_mapped, read_points_mapped, read_snapshot_bytes, snapshot_to_bytes, TableOracle,
};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Ingests the fixture edge list + attribute table exactly the way
/// `krcore-cli ingest` does, returning the snapshot bytes.
fn ingest_fixture(points: bool) -> Vec<u8> {
    let loaded = read_edge_list_streaming_file(fixture("tiny.edges")).expect("fixture edges");
    let id_map = &loaded.id_map;
    let n = loaded.graph.num_vertices();
    let (attrs, metric, stats) = if points {
        let f = std::fs::File::open(fixture("tiny.points.tsv")).expect("fixture points");
        let (attrs, stats) = read_points_mapped(f, id_map, n).expect("parse points");
        (attrs, Metric::Euclidean, stats)
    } else {
        let f = std::fs::File::open(fixture("tiny.keywords.tsv")).expect("fixture keywords");
        let (attrs, stats) = read_keywords_mapped(f, id_map, n).expect("parse keywords");
        (attrs, Metric::WeightedJaccard, stats)
    };
    // Both fixture attribute files carry exactly one row for a vertex
    // the edge list never mentions.
    assert_eq!(stats.unmatched, 1, "fixture has one unmatched row");
    assert_eq!(stats.matched, 5);
    snapshot_to_bytes(&loaded.graph, &loaded.original_ids, &attrs, metric)
}

/// `ingest_fixture(points)` the way `krcore-cli ingest --with-index`
/// does it: the same four sections plus the optional decomposition
/// section. Deterministic (the default band derivation is exact at this
/// size), so the output is golden-pinnable.
fn ingest_fixture_indexed() -> Vec<u8> {
    let loaded = read_edge_list_streaming_file(fixture("tiny.edges")).expect("fixture edges");
    let f = std::fs::File::open(fixture("tiny.points.tsv")).expect("fixture points");
    let (attrs, _) =
        read_points_mapped(f, &loaded.id_map, loaded.graph.num_vertices()).expect("parse points");
    let oracle = TableOracle::new(
        attrs.clone(),
        Metric::Euclidean,
        Threshold::MaxDistance(1.0),
    );
    let index = DecompositionIndex::build_default(&loaded.graph, &oracle);
    indexed_snapshot_to_bytes(
        &loaded.graph,
        &loaded.original_ids,
        &attrs,
        Metric::Euclidean,
        &index,
    )
}

fn check_golden(golden_name: &str, built: &[u8]) {
    let path = fixture(golden_name);
    if std::env::var("KR_BLESS_GOLDEN").is_ok() {
        std::fs::write(&path, built).expect("bless golden");
        return;
    }
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); bless with KR_BLESS_GOLDEN=1"));
    assert_eq!(
        committed, built,
        "{golden_name}: ingestion output drifted from the committed golden bytes"
    );
}

#[test]
fn golden_points_snapshot_is_byte_exact() {
    check_golden("tiny_points.krb", &ingest_fixture(true));
}

#[test]
fn golden_keywords_snapshot_is_byte_exact() {
    check_golden("tiny_keywords.krb", &ingest_fixture(false));
}

#[test]
fn golden_points_snapshot_loads_and_answers_queries() {
    let ds = read_snapshot_bytes(std::fs::read(fixture("tiny_points.krb")).expect("golden"))
        .expect("load golden");
    assert_eq!(ds.graph.num_vertices(), 5);
    assert_eq!(ds.graph.num_edges(), 7, "4-clique + pendant");
    assert_eq!(ds.original_ids, vec![100, 200, 300, 400, 7]);
    assert_eq!(ds.metric, Metric::Euclidean);
    assert!(ds.skipped_sections.is_empty());

    // k=3, r=2: the unit-square clique survives, the far pendant cannot.
    let problem = ProblemInstance::new(
        ds.graph,
        ds.attributes,
        ds.metric,
        Threshold::MaxDistance(2.0),
        3,
    );
    let cores = krcore::core::enumerate_maximal(&problem, &AlgoConfig::adv_enum()).cores;
    assert_eq!(cores.len(), 1);
    assert_eq!(cores[0].vertices, vec![0, 1, 2, 3]);
}

#[test]
fn golden_keywords_snapshot_loads() {
    let ds = read_snapshot_bytes(std::fs::read(fixture("tiny_keywords.krb")).expect("golden"))
        .expect("load golden");
    assert_eq!(ds.metric, Metric::WeightedJaccard);
    match &ds.attributes {
        AttributeTable::Keywords(lists) => {
            assert_eq!(lists[0], vec![(1, 2.0), (2, 1.0)]);
            assert_eq!(lists[4], vec![(9, 1.0)]);
        }
        other => panic!("wrong attribute family {other:?}"),
    }
}

#[test]
fn golden_indexed_snapshot_is_byte_exact() {
    check_golden("tiny_points_indexed.krb", &ingest_fixture_indexed());
}

/// The indexed golden loads through the indexed reader with the index
/// recovered, and through the plain (pre-index) reader with the section
/// skipped — the live proof that old readers keep serving new snapshots.
#[test]
fn golden_indexed_snapshot_loads_both_ways() {
    let bytes = std::fs::read(fixture("tiny_points_indexed.krb")).expect("golden");

    let (ds, index) = read_indexed_snapshot_bytes(bytes.clone()).expect("indexed load");
    let index = index.expect("golden carries an index");
    assert!(ds.skipped_sections.is_empty());
    assert_eq!(index.num_vertices(), ds.graph.num_vertices());
    assert!(index.is_distance());
    assert!(!index.bands().is_empty());
    // The stored index resolves the same candidates a fresh build does.
    let oracle = TableOracle::new(
        ds.attributes.clone(),
        ds.metric,
        Threshold::MaxDistance(1.0),
    );
    let fresh = DecompositionIndex::build_default(&ds.graph, &oracle);
    assert_eq!(index, fresh);

    let plain = read_snapshot_bytes(bytes).expect("plain reader must still load");
    assert_eq!(plain.skipped_sections, vec![section::DECOMP_INDEX]);
    assert_eq!(plain.graph, ds.graph);
    assert_eq!(plain.original_ids, ds.original_ids);
}

/// Corrupting any byte of the decomposition section's payload trips the
/// container checksum; a *re-sealed* corrupt payload (valid checksum,
/// garbage content) is caught by the section decoder instead. Either
/// way: typed errors, never panics, and the plain reader stays unharmed
/// by the checksum-level flips it verifies.
#[test]
fn corruption_matrix_decomp_section() {
    let good = ingest_fixture_indexed();
    // Locate the decomposition payload inside the container by content:
    // rebuild the (deterministic) index and search for its section bytes.
    let loaded = read_edge_list_streaming_file(fixture("tiny.edges")).expect("fixture edges");
    let f = std::fs::File::open(fixture("tiny.points.tsv")).expect("fixture points");
    let (attrs, _) =
        read_points_mapped(f, &loaded.id_map, loaded.graph.num_vertices()).expect("points");
    let oracle = TableOracle::new(
        attrs.clone(),
        Metric::Euclidean,
        Threshold::MaxDistance(1.0),
    );
    let payload = DecompositionIndex::build_default(&loaded.graph, &oracle).to_section_bytes();
    let offset = good
        .windows(payload.len())
        .position(|w| w == &payload[..])
        .expect("decomp payload present in the container");
    let len = payload.len();
    for at in (offset..offset + len).step_by(7) {
        let mut bad = good.clone();
        bad[at] ^= 0xFF;
        assert!(
            matches!(
                read_indexed_snapshot_bytes(bad),
                Err(SnapshotError::SectionChecksumMismatch { .. })
            ),
            "decomp payload byte {at}: flip must trip the section checksum"
        );
    }
    // Re-seal a corrupt payload behind valid container checksums: the
    // decoder's structural validation must reject it as Malformed.
    let mut payload = payload;
    payload[0..4].copy_from_slice(&9u32.to_le_bytes()); // bogus direction code
    let mut w = SnapshotWriter::new();
    add_graph_sections(&mut w, &loaded.graph, &loaded.original_ids);
    w.add_section(
        section::ATTRIBUTES,
        0,
        encode_attributes(&attrs, Metric::Euclidean),
    );
    w.add_section(section::DECOMP_INDEX, SECTION_FLAG_OPTIONAL, payload);
    let resealed = w.to_bytes();
    assert!(matches!(
        read_indexed_snapshot_bytes(resealed.clone()),
        Err(SnapshotError::Malformed(_))
    ));
    // The plain reader never decodes the section, so the same bytes load
    // fine for a pre-index consumer.
    let plain = read_snapshot_bytes(resealed).expect("plain reader skips the section");
    assert_eq!(plain.skipped_sections, vec![section::DECOMP_INDEX]);
}

/// Truncating indexed bytes at every boundary stays typed (the indexed
/// analogue of `corruption_matrix_truncation_everywhere`).
#[test]
fn corruption_matrix_indexed_truncation() {
    let good = ingest_fixture_indexed();
    for cut in (0..good.len()).step_by(11) {
        let err = read_indexed_snapshot_bytes(good[..cut].to_vec())
            .expect_err(&format!("truncation to {cut} bytes must not load"));
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::HeaderChecksumMismatch
                    | SnapshotError::BadMagic { .. }
            ),
            "cut {cut}: unexpected error class {err}"
        );
    }
}

/// Flipping any single header byte must yield a typed error: bytes 0..4
/// are the magic, 4..6 the major version, and everything else in the
/// checksummed range 0..24 (minor, flags, section count, total length)
/// plus the stored checksum itself (24..32) trips the header checksum.
#[test]
fn corruption_matrix_every_header_byte() {
    let good = ingest_fixture(true);
    for at in 0..HEADER_LEN {
        let mut bad = good.clone();
        bad[at] ^= 0xFF;
        let err =
            read_snapshot_bytes(bad).expect_err(&format!("flipped header byte {at} must not load"));
        match at {
            0..=3 => assert!(
                matches!(err, SnapshotError::BadMagic { .. }),
                "byte {at}: {err}"
            ),
            4..=5 => assert!(
                matches!(err, SnapshotError::UnsupportedMajor { .. }),
                "byte {at}: {err}"
            ),
            _ => assert!(
                matches!(
                    err,
                    SnapshotError::HeaderChecksumMismatch | SnapshotError::Truncated { .. }
                ),
                "byte {at}: {err}"
            ),
        }
    }
}

/// Flipping the load-bearing section-table fields (kind, offset, length,
/// checksum) of every section must yield typed errors.
#[test]
fn corruption_matrix_section_table_fields() {
    let good = ingest_fixture(false);
    let snap = krcore::graph::Snapshot::from_bytes(good.clone()).expect("good bytes");
    let sections = snap.sections().len();
    for entry in 0..sections {
        let base = HEADER_LEN + entry * SECTION_ENTRY_LEN;
        // Field offsets within an entry: kind 0..4, flags 4..8 (not
        // load-bearing for known kinds), offset 8..16, len 16..24,
        // checksum 24..32.
        for field_at in (0..4).chain(8..SECTION_ENTRY_LEN) {
            let mut bad = good.clone();
            bad[base + field_at] ^= 0xFF;
            assert!(
                read_snapshot_bytes(bad).is_err(),
                "section {entry}, entry byte {field_at}: corrupt table must not load"
            );
        }
    }
}

/// Corrupting any payload byte must trip that section's checksum.
#[test]
fn corruption_matrix_payload_bytes() {
    let good = ingest_fixture(true);
    let payload_start = {
        let snap = krcore::graph::Snapshot::from_bytes(good.clone()).expect("good bytes");
        assert!(!snap.sections().is_empty());
        HEADER_LEN + snap.sections().len() * SECTION_ENTRY_LEN
    };
    for at in payload_start..good.len() {
        let mut bad = good.clone();
        bad[at] ^= 0xFF;
        match read_snapshot_bytes(bad) {
            Err(SnapshotError::SectionChecksumMismatch { .. } | SnapshotError::Malformed(_)) => {}
            // Alignment padding between sections is not covered by any
            // checksum; flipping it is harmless by design.
            Ok(_) => {}
            Err(other) => panic!("payload byte {at}: unexpected error class {other}"),
        }
    }
}

/// Truncating at *every* byte boundary — a superset of every section
/// boundary — must be a typed error, never a panic.
#[test]
fn corruption_matrix_truncation_everywhere() {
    let good = ingest_fixture(true);
    for cut in 0..good.len() {
        let err = read_snapshot_bytes(good[..cut].to_vec())
            .expect_err(&format!("truncation to {cut} bytes must not load"));
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::HeaderChecksumMismatch
                    | SnapshotError::BadMagic { .. }
            ),
            "cut {cut}: unexpected error class {err}"
        );
    }
}

/// A file written by a newer minor version, carrying a section kind this
/// reader has never heard of (flagged optional), must load — skipping
/// the unknown section and reporting it.
#[test]
fn forward_compat_higher_minor_with_unknown_optional_section() {
    let loaded = read_edge_list_streaming_file(fixture("tiny.edges")).expect("fixture edges");
    let f = std::fs::File::open(fixture("tiny.points.tsv")).expect("fixture points");
    let (attrs, _) =
        read_points_mapped(f, &loaded.id_map, loaded.graph.num_vertices()).expect("points");

    let mut w = SnapshotWriter::new().with_version_minor(VERSION_MINOR + 3);
    add_graph_sections(&mut w, &loaded.graph, &loaded.original_ids);
    w.add_section(
        section::ATTRIBUTES,
        0,
        encode_attributes(&attrs, Metric::Euclidean),
    );
    w.add_section(0xBEEF, SECTION_FLAG_OPTIONAL, b"from the future".to_vec());
    let bytes = w.to_bytes();

    let ds = read_snapshot_bytes(bytes).expect("higher minor + optional unknown must load");
    assert_eq!(ds.skipped_sections, vec![0xBEEF]);
    assert_eq!(ds.graph, loaded.graph);
    assert_eq!(ds.original_ids, loaded.original_ids);
}

/// The same future file with the unknown section marked *required* must
/// be a typed error — the writer is telling us we cannot understand the
/// file without it.
#[test]
fn forward_compat_unknown_required_section_rejected() {
    let loaded = read_edge_list_streaming_file(fixture("tiny.edges")).expect("fixture edges");
    let f = std::fs::File::open(fixture("tiny.points.tsv")).expect("fixture points");
    let (attrs, _) =
        read_points_mapped(f, &loaded.id_map, loaded.graph.num_vertices()).expect("points");

    let mut w = SnapshotWriter::new().with_version_minor(VERSION_MINOR + 3);
    add_graph_sections(&mut w, &loaded.graph, &loaded.original_ids);
    w.add_section(
        section::ATTRIBUTES,
        0,
        encode_attributes(&attrs, Metric::Euclidean),
    );
    w.add_section(0xBEEF, 0, b"load-bearing future data".to_vec());
    assert!(matches!(
        read_snapshot_bytes(w.to_bytes()),
        Err(SnapshotError::UnknownRequiredSection { kind: 0xBEEF })
    ));
}

/// A higher *major* version is rejected up front, whatever else the file
/// contains (bytes crafted in-test: patch the major field, re-seal the
/// header checksum so only the version differs).
#[test]
fn forward_compat_higher_major_rejected() {
    let mut bytes = ingest_fixture(true);
    bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
    let reseal = fnv1a64(&bytes[..24]);
    bytes[24..32].copy_from_slice(&reseal.to_le_bytes());
    assert!(matches!(
        read_snapshot_bytes(bytes),
        Err(SnapshotError::UnsupportedMajor {
            found: 2,
            supported: 1
        })
    ));
}
