//! Drives the real `krcore-cli ingest` binary over the committed
//! fixtures and pins its output against the golden snapshots — the CLI
//! must be a thin shell over exactly the library path the golden tests
//! pin.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_krcore-cli"))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn temp_out(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kr_ingest_cli_{tag}_{}.krb", std::process::id()))
}

#[test]
fn ingest_points_reproduces_golden_bytes() {
    let out = temp_out("points");
    let status = cli()
        .args(["ingest"])
        .arg(fixture("tiny.edges"))
        .arg("--points")
        .arg(fixture("tiny.points.tsv"))
        .arg("-o")
        .arg(&out)
        .status()
        .expect("run krcore-cli ingest");
    assert!(status.success(), "ingest must exit 0");
    let built = std::fs::read(&out).expect("snapshot written");
    let golden = std::fs::read(fixture("tiny_points.krb")).expect("golden");
    assert_eq!(built, golden, "CLI output drifted from the golden snapshot");
    let _ = std::fs::remove_file(out);
}

#[test]
fn ingest_keywords_reproduces_golden_bytes() {
    let out = temp_out("keywords");
    let output = cli()
        .args(["ingest"])
        .arg(fixture("tiny.edges"))
        .arg("--keywords")
        .arg(fixture("tiny.keywords.tsv"))
        .arg("-o")
        .arg(&out)
        .output()
        .expect("run krcore-cli ingest");
    assert!(output.status.success(), "ingest must exit 0");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("5 vertices, 7 edges"),
        "summary line missing: {stdout}"
    );
    let built = std::fs::read(&out).expect("snapshot written");
    let golden = std::fs::read(fixture("tiny_keywords.krb")).expect("golden");
    assert_eq!(built, golden, "CLI output drifted from the golden snapshot");
    let _ = std::fs::remove_file(out);
}

#[test]
fn ingest_of_empty_edge_list_fails_with_typed_message() {
    let empty = std::env::temp_dir().join(format!("kr_empty_{}.edges", std::process::id()));
    std::fs::write(&empty, "# nothing but comments\n\n").unwrap();
    let out = temp_out("empty");
    let output = cli()
        .args(["ingest"])
        .arg(&empty)
        .arg("--points")
        .arg(fixture("tiny.points.tsv"))
        .arg("-o")
        .arg(&out)
        .output()
        .expect("run krcore-cli ingest");
    assert!(!output.status.success(), "empty input must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no data lines"),
        "typed empty-input error missing: {stderr}"
    );
    assert!(!out.exists(), "no snapshot may be written on failure");
    let _ = std::fs::remove_file(empty);
}

#[test]
fn ingest_requires_exactly_one_attribute_file() {
    let out = temp_out("both");
    let output = cli()
        .args(["ingest"])
        .arg(fixture("tiny.edges"))
        .arg("--points")
        .arg(fixture("tiny.points.tsv"))
        .arg("--keywords")
        .arg(fixture("tiny.keywords.tsv"))
        .arg("-o")
        .arg(&out)
        .output()
        .expect("run krcore-cli ingest");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("exactly one"));
}
