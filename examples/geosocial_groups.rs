//! Geo-social group discovery — the paper's Figure 6 scenario on the
//! Gowalla-like synthetic dataset.
//!
//! With a distance threshold `r`, maximal (k,r)-cores are groups of
//! friends who also live near each other. Sweeping `r` shows the paper's
//! qualitative finding: small r yields neighborhood groups, large r merges
//! them into city groups, and the headquarters hub attracts the maximum
//! core.
//!
//! ```sh
//! cargo run --release --example geosocial_groups
//! ```

use krcore::prelude::*;

fn main() {
    let ds = krcore::datagen::DatasetPreset::GowallaLike.generate_scaled(0.5);
    let pts = match &ds.attributes {
        krcore::similarity::AttributeTable::Points(p) => p.clone(),
        _ => unreachable!("gowalla-like is a geo dataset"),
    };
    println!(
        "gowalla-like: {} users, {} friendships",
        ds.graph.num_vertices(),
        ds.graph.num_edges()
    );

    let k = 4;
    for r in [3.0, 8.0, 15.0] {
        let problem = ProblemInstance::new(
            ds.graph.clone(),
            ds.attributes.clone(),
            ds.metric,
            Threshold::MaxDistance(r),
            k,
        );
        let result =
            enumerate_maximal(&problem, &AlgoConfig::adv_enum().with_time_limit_ms(15_000));
        let (count, max, avg) = result.size_summary();
        println!("\nr = {r} km: {count} groups, max {max}, avg {avg:.1}");

        // Geometry of the three largest groups.
        let mut cores = result.cores.clone();
        cores.sort_by_key(|c| std::cmp::Reverse(c.len()));
        for core in cores.iter().take(3) {
            let n = core.len() as f64;
            let (cx, cy) = core.vertices.iter().fold((0.0, 0.0), |(x, y), &v| {
                (x + pts[v as usize].0 / n, y + pts[v as usize].1 / n)
            });
            let spread = core
                .vertices
                .iter()
                .map(|&v| {
                    ((pts[v as usize].0 - cx).powi(2) + (pts[v as usize].1 - cy).powi(2)).sqrt()
                })
                .fold(0.0f64, f64::max);
            println!(
                "  group of {:>3} users centered at ({cx:>6.0}, {cy:>6.0}) km, radius {spread:.1} km",
                core.len()
            );
        }

        let max_core = find_maximum(&problem, &AlgoConfig::adv_max().with_time_limit_ms(15_000));
        if let Some(core) = max_core.core {
            println!("  maximum group: {} users", core.len());
        }
    }
}
