//! The serving layer end to end, in one process: spawn `kr-server` on an
//! ephemeral port, run enumeration + maximum queries through the wire
//! protocol, and show the component cache amortizing preprocessing across
//! repeated queries.
//!
//! ```sh
//! cargo run --release --example serve_and_query
//! ```

use krcore::prelude::*;
use krcore::server::CacheOutcome;
use std::time::Instant;

fn main() {
    let server = Server::bind(ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("kr-server listening on {addr}");

    let mut client = Client::connect(addr).expect("connect");
    let spec = QuerySpec {
        scale: 0.3,
        ..QuerySpec::new("gowalla-like", 3, 8.0)
    };

    // Cold query: the server generates the dataset and preprocesses
    // (filter -> peel -> split -> arenas), then streams each maximal core
    // as its own frame.
    let t = Instant::now();
    let cold = client.enumerate(spec.clone()).expect("cold query");
    println!(
        "cold : {} maximal (k,r)-cores | cache {} | {:?} round-trip | {} ms server-side",
        cold.cores.len(),
        cold.cache.name(),
        t.elapsed(),
        cold.elapsed_ms,
    );

    // Warm query: same (dataset, k, r-band) key, so the preprocessed
    // components come straight from the LRU cache.
    let t = Instant::now();
    let warm = client.enumerate(spec.clone()).expect("warm query");
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.cores, cold.cores);
    println!(
        "warm : {} cores | cache {} | {:?} round-trip | {} ms server-side",
        warm.cores.len(),
        warm.cache.name(),
        t.elapsed(),
        warm.elapsed_ms,
    );

    // The maximum query reuses the very same cache entry.
    let max = client.maximum(spec).expect("maximum query");
    println!(
        "max  : {} vertices | cache {}",
        max.cores.first().map_or(0, |c| c.len()),
        max.cache.name(),
    );

    let stats = client.stats().expect("stats");
    println!(
        "cache: {} hits / {} misses / {} evictions / {} resident",
        stats.hits, stats.misses, stats.evictions, stats.entries
    );

    handle.shutdown_and_join().expect("clean shutdown");
    println!("server shut down cleanly");
}
