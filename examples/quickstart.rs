//! Quickstart: build a tiny attributed graph, enumerate its maximal
//! (k,r)-cores, and find the maximum one.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use krcore::prelude::*;

fn main() {
    // The motivating example of the paper (Figure 1), in miniature: a
    // co-author network where two tight groups share one author. Edges are
    // co-authorships; keywords describe research interests.
    let graph = Graph::from_edges(
        7,
        &[
            // group A: databases
            (0, 1),
            (0, 2),
            (1, 2),
            // group B: biology
            (4, 5),
            (4, 6),
            (5, 6),
            // author 3 collaborates with both groups
            (3, 0),
            (3, 1),
            (3, 2),
            (3, 4),
            (3, 5),
            (3, 6),
        ],
    );
    let attrs = AttributeTable::keywords(vec![
        vec![(0, 3.0), (1, 2.0)],                     // author 0: SIGMOD, VLDB
        vec![(0, 2.0), (1, 3.0)],                     // author 1
        vec![(0, 2.0), (1, 2.0)],                     // author 2
        vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)], // author 3: both fields
        vec![(2, 3.0), (3, 2.0)],                     // author 4: ISMB, Bioinformatics
        vec![(2, 2.0), (3, 3.0)],                     // author 5
        vec![(2, 2.0), (3, 2.0)],                     // author 6
    ]);

    let k = 2; // everyone needs >= 2 co-authors inside the group
    let r = 0.25; // minimum pairwise weighted-Jaccard similarity
    let problem = ProblemInstance::new(
        graph,
        attrs,
        Metric::WeightedJaccard,
        Threshold::MinSimilarity(r),
        k,
    );

    let result = enumerate_maximal(&problem, &AlgoConfig::adv_enum());
    println!("maximal ({k},{r})-cores:");
    for core in &result.cores {
        println!("  {:?}", core.vertices);
    }
    println!(
        "search visited {} nodes, ran {} maximal checks",
        result.stats.nodes, result.stats.maximal_checks
    );

    let max = find_maximum(&problem, &AlgoConfig::adv_max());
    match max.core {
        Some(core) => println!("maximum core: {:?} ({} authors)", core.vertices, core.len()),
        None => println!("no ({k},{r})-core exists"),
    }
}
