//! The work-stealing parallel engine vs the sequential engine, on a
//! generated DBLP-like network: same results, wall-clock printed for both.
//!
//! ```sh
//! cargo run --release --example parallel_engine [threads]
//! ```

use krcore::prelude::*;
use std::time::Instant;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("threads must be a number"))
        .unwrap_or(4);
    let data = DatasetPreset::DblpLike.generate_scaled(0.5);
    let problem = krcore::core::ProblemInstance::new(
        data.graph.clone(),
        data.attributes.clone(),
        data.metric,
        krcore::similarity::Threshold::MinSimilarity(0.22),
        4,
    );

    let t = Instant::now();
    let seq = enumerate_maximal(&problem, &AlgoConfig::adv_enum());
    let seq_ms = t.elapsed();
    let t = Instant::now();
    let par = enumerate_maximal(
        &problem,
        &AlgoConfig::adv_enum_parallel().with_threads(threads),
    );
    let par_ms = t.elapsed();
    assert_eq!(seq.cores, par.cores, "engines must agree");
    println!(
        "enumeration: {} maximal cores | sequential {seq_ms:?} | {threads} threads {par_ms:?}",
        seq.cores.len()
    );

    let t = Instant::now();
    let seq = find_maximum(&problem, &AlgoConfig::adv_max());
    let seq_ms = t.elapsed();
    let t = Instant::now();
    let par = find_maximum(
        &problem,
        &AlgoConfig::adv_max_parallel().with_threads(threads),
    );
    let par_ms = t.elapsed();
    assert_eq!(
        seq.core.as_ref().map(|c| &c.vertices),
        par.core.as_ref().map(|c| &c.vertices),
        "engines must return the identical maximum core"
    );
    println!(
        "maximum: {} vertices | sequential {seq_ms:?} | {threads} threads {par_ms:?}",
        seq.core.as_ref().map_or(0, |c| c.len())
    );
}
