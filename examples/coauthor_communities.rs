//! Co-author community discovery — the paper's Figure 5 scenario on the
//! DBLP-like synthetic dataset.
//!
//! A plain k-core lumps collaborating research groups together; adding the
//! similarity constraint splits them along research-interest seams while
//! overlapping authors (who publish in both areas) appear in several
//! maximal cores. We check the recovered cores against the generator's
//! planted sub-groups.
//!
//! ```sh
//! cargo run --release --example coauthor_communities
//! ```

use krcore::prelude::*;
use std::collections::HashMap;

fn main() {
    let ds = krcore::datagen::DatasetPreset::DblpLike.generate_scaled(0.5);
    println!(
        "dblp-like: {} authors, {} co-author edges",
        ds.graph.num_vertices(),
        ds.graph.num_edges()
    );

    // Calibrate r as the top-5-permille pairwise similarity (the paper's
    // convention for DBLP), then mine with k = 4.
    let oracle = krcore::similarity::TableOracle::new(
        ds.attributes.clone(),
        ds.metric,
        Threshold::MinSimilarity(0.0),
    );
    let r =
        krcore::similarity::top_permille_threshold(&oracle, ds.graph.num_vertices(), 5.0, 3000, 7);
    let k = 4;
    println!("calibrated similarity threshold r = {r:.3} (top 5 permille), k = {k}");

    let problem = ProblemInstance::new(
        ds.graph.clone(),
        ds.attributes.clone(),
        ds.metric,
        Threshold::MinSimilarity(r),
        k,
    );
    let result = enumerate_maximal(&problem, &AlgoConfig::adv_enum());
    println!("found {} maximal (k,r)-cores", result.cores.len());

    // How pure is each core w.r.t. the planted sub-groups?
    let mut pure = 0usize;
    let mut overlapping_members = 0usize;
    for core in &result.cores {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &v in &core.vertices {
            *counts.entry(ds.subgroup[v as usize]).or_insert(0) += 1;
        }
        if counts.len() == 1 {
            pure += 1;
        }
        overlapping_members += core
            .vertices
            .iter()
            .filter(|&&v| ds.overlaps.iter().any(|&(o, _)| o == v))
            .count();
    }
    println!(
        "{pure}/{} cores lie inside a single planted research group",
        result.cores.len()
    );
    println!("{overlapping_members} core memberships belong to dual-affiliation authors");

    // The Figure 5(a) effect: pairs of maximal cores sharing authors.
    let mut shared_pairs = 0usize;
    for i in 0..result.cores.len() {
        for j in (i + 1)..result.cores.len() {
            let a = &result.cores[i];
            let b = &result.cores[j];
            let shared = a
                .vertices
                .iter()
                .filter(|v| b.vertices.binary_search(v).is_ok())
                .count();
            if shared > 0 {
                shared_pairs += 1;
                if shared_pairs <= 5 {
                    println!(
                        "cores of sizes {} and {} share {shared} author(s) — bridging researcher(s)",
                        a.len(),
                        b.len()
                    );
                }
            }
        }
    }
    println!("total overlapping core pairs: {shared_pairs}");

    // Figure 5(b): the maximum core is a project-team-like cluster.
    let max = find_maximum(&problem, &AlgoConfig::adv_max());
    if let Some(core) = max.core {
        let mut sg: Vec<u32> = core
            .vertices
            .iter()
            .map(|&v| ds.subgroup[v as usize])
            .collect();
        sg.sort_unstable();
        sg.dedup();
        println!(
            "maximum core: {} authors drawn from planted group(s) {:?}",
            core.len(),
            sg
        );
    }
}
