//! (k,r)-core statistics explorer — the paper's Figure 7 on any preset.
//!
//! Prints the number of maximal cores and their size distribution across a
//! (k, r) grid, showing the paper's observation that counts and maximum
//! sizes react much more sharply to k and r than average sizes do.
//!
//! ```sh
//! cargo run --release --example core_statistics [preset] [scale]
//! # preset: brightkite | gowalla | dblp | pokec (default gowalla)
//! ```

use krcore::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let preset = match args.next().as_deref() {
        Some("brightkite") => DatasetPreset::BrightkiteLike,
        Some("dblp") => DatasetPreset::DblpLike,
        Some("pokec") => DatasetPreset::PokecLike,
        _ => DatasetPreset::GowallaLike,
    };
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let ds = krcore::core::ProblemInstance::new; // silence unused-import lints in rustdoc builds
    let _ = ds;

    let bench = kr_bench_dataset(preset, scale);
    println!(
        "{}: {} vertices, {} edges (scale {scale})",
        bench.data.name,
        bench.data.graph.num_vertices(),
        bench.data.graph.num_edges()
    );
    let rs = bench.default_r_sweep();
    println!(
        "\n{:>4} {:>8} | {:>8} {:>8} {:>8}",
        "k", "r", "#cores", "max", "avg"
    );
    for k in [3u32, 4, 5, 6] {
        for &r in &rs {
            let p = bench.instance(k, r);
            let res = enumerate_maximal(&p, &AlgoConfig::adv_enum().with_time_limit_ms(10_000));
            let (count, max, avg) = res.size_summary();
            let flag = if res.completed { " " } else { "*" };
            println!("{k:>4} {r:>8} | {count:>8} {max:>8} {avg:>8.1}{flag}");
        }
    }
    println!("\n(* = run hit the time budget; counts are partial)");
}

// Small helper so the example depends only on the public crates.
fn kr_bench_dataset(preset: DatasetPreset, scale: f64) -> kr_bench::BenchDataset {
    kr_bench::BenchDataset::new(preset, scale)
}
