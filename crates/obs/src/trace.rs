//! Structured tracing: trace ids, span events, and the JSON-lines sink.
//!
//! ## Event format
//!
//! One JSON object per line, no nesting:
//!
//! ```text
//! {"ts_us":1754550000123456,"trace":"a3f91c0088421b07","span":"preprocess","dur_us":1834,"oracle_evals":912}
//! ```
//!
//! * `ts_us` — wall-clock microseconds since the Unix epoch, stamped at
//!   emission time (for phase events that is the phase *end*).
//! * `trace` — the 16-hex-digit per-query trace id. The server echoes
//!   the same id in every response frame of the query, so a wire capture
//!   joins against the span log on this field.
//! * `span` — the event name (see `docs/OBSERVABILITY.md` for the span
//!   taxonomy).
//! * `dur_us` — present on phase events emitted by [`PhaseTimer`].
//! * Any further fields are event-specific key/value pairs ([`Field`]).
//!
//! The slow-query log uses the same format with `span == "slow_query"`.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Returns a process-unique 16-hex-digit trace id. Ids are a counter
/// seeded from the wall clock at first use, so they are unique within a
/// process and almost certainly unique across server restarts.
pub fn next_trace_id() -> String {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            | 1; // never start at 0, the "no trace" sentinel
        AtomicU64::new(seed)
    });
    format!("{:016x}", next.fetch_add(1, Ordering::Relaxed))
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float (non-finite values are emitted as `null`).
    F(f64),
    /// String (JSON-escaped on emission).
    S(String),
    /// Boolean.
    B(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::S(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::S(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::B(v)
    }
}

/// Where span events go. Cheap to clone (shared handle). A disabled
/// sink makes every emission a no-op, so instrumented code does not pay
/// for formatting when tracing is off — guard expensive field
/// construction with [`TraceSink::enabled`] where it matters.
#[derive(Clone, Default)]
pub struct TraceSink {
    out: Option<Arc<Mutex<Box<dyn Write + Send>>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl TraceSink {
    /// A sink that drops every event.
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// A sink writing JSON lines to an arbitrary writer (tests, pipes).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        TraceSink {
            out: Some(Arc::new(Mutex::new(w))),
        }
    }

    /// A sink writing to stderr (the `serve --log -` path; stdout stays
    /// machine-readable).
    pub fn stderr() -> Self {
        TraceSink::to_writer(Box::new(io::stderr()))
    }

    /// A sink appending to the file at `path`, created if absent.
    pub fn file(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(TraceSink::to_writer(Box::new(f)))
    }

    /// Whether events will actually be written.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Emits one event line. `trace` may be empty for connection-scoped
    /// events that precede any query. Write errors are swallowed —
    /// tracing must never take down the serving path.
    pub fn event(&self, trace: &str, span: &str, fields: &[(&str, Field)]) {
        let Some(out) = &self.out else { return };
        let mut line = String::with_capacity(96);
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let _ = write!(line, "{{\"ts_us\":{ts_us}");
        if !trace.is_empty() {
            line.push_str(",\"trace\":");
            escape_into(trace, &mut line);
        }
        line.push_str(",\"span\":");
        escape_into(span, &mut line);
        for (k, v) in fields {
            line.push(',');
            escape_into(k, &mut line);
            line.push(':');
            match v {
                Field::U(n) => {
                    let _ = write!(line, "{n}");
                }
                Field::I(n) => {
                    let _ = write!(line, "{n}");
                }
                Field::F(n) if n.is_finite() => {
                    let _ = write!(line, "{n:?}");
                }
                Field::F(_) => line.push_str("null"),
                Field::S(s) => escape_into(s, &mut line),
                Field::B(b) => line.push_str(if *b { "true" } else { "false" }),
            }
        }
        line.push_str("}\n");
        if let Ok(mut w) = out.lock() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }
    }
}

/// Minimal JSON string escaping (control characters, quote, backslash).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Times one phase of a query and emits a single event with `dur_us` on
/// finish (or on drop, so early-return paths still log). The measured
/// duration is also returned for callers that feed a
/// [`crate::Histogram`].
#[derive(Debug)]
pub struct PhaseTimer<'a> {
    sink: &'a TraceSink,
    trace: &'a str,
    span: &'static str,
    start: Instant,
    finished: bool,
}

impl<'a> PhaseTimer<'a> {
    /// Starts timing `span` for query `trace`.
    pub fn start(sink: &'a TraceSink, trace: &'a str, span: &'static str) -> Self {
        PhaseTimer {
            sink,
            trace,
            span,
            start: Instant::now(),
            finished: false,
        }
    }

    /// Elapsed microseconds so far (does not finish the span).
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Finishes the span, emitting its event. Returns the duration in
    /// microseconds.
    pub fn finish(self) -> u64 {
        self.finish_with(&[])
    }

    /// Finishes the span with extra event fields. Returns the duration
    /// in microseconds.
    pub fn finish_with(mut self, fields: &[(&str, Field)]) -> u64 {
        let dur_us = self.elapsed_us();
        self.emit(dur_us, fields);
        self.finished = true;
        dur_us
    }

    fn emit(&self, dur_us: u64, fields: &[(&str, Field)]) {
        if !self.sink.enabled() {
            return;
        }
        let mut all: Vec<(&str, Field)> = Vec::with_capacity(fields.len() + 1);
        all.push(("dur_us", Field::U(dur_us)));
        all.extend_from_slice(fields);
        self.sink.event(self.trace, self.span, &all);
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let dur_us = self.elapsed_us();
            self.emit(dur_us, &[("aborted", Field::B(true))]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` that appends into a shared buffer, for asserting on
    /// emitted lines.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture() -> (TraceSink, SharedBuf) {
        let buf = SharedBuf::default();
        (TraceSink::to_writer(Box::new(buf.clone())), buf)
    }

    fn lines(buf: &SharedBuf) -> Vec<String> {
        String::from_utf8(buf.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn event_emits_one_json_line() {
        let (sink, buf) = capture();
        sink.event(
            "deadbeef00000001",
            "cache_lookup",
            &[
                ("outcome", Field::from("hit")),
                ("entries", Field::from(3u64)),
                ("delta", Field::I(-2)),
                ("ok", Field::from(true)),
            ],
        );
        let ls = lines(&buf);
        assert_eq!(ls.len(), 1);
        let l = &ls[0];
        assert!(l.starts_with("{\"ts_us\":"), "{l}");
        assert!(l.contains("\"trace\":\"deadbeef00000001\""), "{l}");
        assert!(l.contains("\"span\":\"cache_lookup\""), "{l}");
        assert!(l.contains("\"outcome\":\"hit\""), "{l}");
        assert!(l.contains("\"entries\":3"), "{l}");
        assert!(l.contains("\"delta\":-2"), "{l}");
        assert!(l.contains("\"ok\":true"), "{l}");
        assert!(l.ends_with('}'), "{l}");
    }

    #[test]
    fn strings_are_escaped() {
        let (sink, buf) = capture();
        sink.event("", "x", &[("msg", Field::from("a\"b\\c\nd"))]);
        let l = lines(&buf).remove(0);
        assert!(l.contains("\"msg\":\"a\\\"b\\\\c\\nd\""), "{l}");
        assert!(!l.contains('\n'), "framing: one line");
    }

    #[test]
    fn phase_timer_emits_dur_us() {
        let (sink, buf) = capture();
        let t = PhaseTimer::start(&sink, "deadbeef00000002", "preprocess");
        let dur = t.finish_with(&[("oracle_evals", Field::from(7u64))]);
        let l = lines(&buf).remove(0);
        assert!(l.contains("\"span\":\"preprocess\""), "{l}");
        assert!(l.contains("\"dur_us\":"), "{l}");
        assert!(l.contains("\"oracle_evals\":7"), "{l}");
        assert!(!l.contains("aborted"), "{l}");
        let _ = dur; // any value is fine; just must not panic
    }

    #[test]
    fn dropped_timer_marks_aborted() {
        let (sink, buf) = capture();
        {
            let _t = PhaseTimer::start(&sink, "deadbeef00000003", "search");
        }
        let l = lines(&buf).remove(0);
        assert!(l.contains("\"aborted\":true"), "{l}");
    }

    #[test]
    fn disabled_sink_is_silent() {
        let sink = TraceSink::disabled();
        assert!(!sink.enabled());
        sink.event("t", "s", &[]);
        PhaseTimer::start(&sink, "t", "s").finish();
        // nothing to assert beyond "no panic, no output destination"
    }
}
