//! Atomic metrics and the registry.
//!
//! ## Histogram bucket scheme (log-linear)
//!
//! Buckets cover the full `u64` range with bounded relative error, the
//! classic HdrHistogram layout: each power-of-two octave is divided into
//! `HIST_SUBS = 8` linear sub-buckets, so a bucket's width is at most
//! 1/8th of its lower bound (≤ 12.5% relative error — plenty for latency
//! quantiles) while the whole table is a fixed array of
//! [`HIST_BUCKETS`]` = 496` counters (~4 KB per histogram).
//!
//! * Values `0..8` get exact unit buckets (index == value).
//! * A value `v ≥ 8` with top bit position `t = 63 - v.leading_zeros()`
//!   lands in `index = (t - 2) * 8 + ((v >> (t - 3)) & 7)`, i.e. octave
//!   `t` sliced into 8 equal sub-ranges of width `2^(t-3)`.
//!
//! [`bucket_bounds`] inverts the mapping; quantiles report a bucket's
//! *upper* bound, which makes `quantile(q)` monotone in `q` by
//! construction (`p99 ≥ p50` always holds).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Linear sub-buckets per power-of-two octave.
pub const HIST_SUBS: usize = 8;
const SUB_BITS: u32 = 3; // log2(HIST_SUBS)

/// Total bucket count: 8 unit buckets + 61 octaves × 8 sub-buckets
/// (octaves 3..=63; values below 2³ use the unit buckets).
pub const HIST_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * HIST_SUBS;

/// Maps a value to its bucket index. Monotone non-decreasing in `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUBS as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = top - SUB_BITS;
    let sub = ((v >> shift) & (HIST_SUBS as u64 - 1)) as usize;
    (shift as usize + 1) * HIST_SUBS + sub
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
///
/// Inverts [`bucket_index`]: every `v` has
/// `bucket_bounds(bucket_index(v)).0 <= v <= bucket_bounds(bucket_index(v)).1`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HIST_BUCKETS, "bucket index out of range");
    if i < HIST_SUBS {
        return (i as u64, i as u64);
    }
    let shift = (i / HIST_SUBS - 1) as u32;
    let sub = (i % HIST_SUBS) as u64;
    let lo = (HIST_SUBS as u64 + sub) << shift;
    (lo, lo + ((1u64 << shift) - 1))
}

/// A monotonically-increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. in-flight query count).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Increments now, decrements when the returned guard drops — tracks
    /// an in-flight section across every exit path.
    pub fn track(&self) -> GaugeGuard<'_> {
        self.add(1);
        GaugeGuard(self)
    }
}

/// Drop guard from [`Gauge::track`].
#[derive(Debug)]
pub struct GaugeGuard<'a>(&'a Gauge);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// A log-linear-bucket histogram of `u64` samples (see module docs for
/// the bucket scheme). Recording is lock-free; `snapshot` reads the
/// bucket array without stopping writers, so a snapshot taken mid-record
/// may lag by in-flight samples (never torn within one bucket).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Plain-data copy of the current state (sparse: zero buckets are
    /// omitted).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i as u32, c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data histogram state: total sample count, sample sum, and the
/// non-empty `(bucket_index, bucket_count)` pairs in ascending index
/// order. This is what crosses the wire in a `metrics` frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Sparse non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Merges two snapshots (bucket-wise count addition). Associative and
    /// commutative: merging per-shard snapshots equals one histogram fed
    /// every sample.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut map: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *map.entry(i).or_insert(0) += c;
        }
        HistogramSnapshot {
            count: self.count + other.count,
            // Wrapping, to match the lock-free record path: `sum` is a
            // plain `fetch_add` accumulator and wraps at u64::MAX.
            sum: self.sum.wrapping_add(other.sum),
            buckets: map.into_iter().collect(),
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket containing that rank (so the true sample value is never
    /// over-reported by more than the bucket width, ≤ 12.5% of the
    /// value). Returns 0 for an empty snapshot. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_bounds(i as usize).1;
            }
        }
        // Unreachable when bucket counts sum to `count`; fall back to the
        // last non-empty bucket for torn concurrent snapshots.
        self.buckets
            .last()
            .map(|&(i, _)| bucket_bounds(i as usize).1)
            .unwrap_or(0)
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. `counter`/`gauge`/`histogram` are
/// get-or-register: the first call for a name creates the metric, later
/// calls return the same `Arc`. Callers on hot paths should cache the
/// returned handle — the lookup takes the registry lock, recording on
/// the handle does not.
///
/// # Panics
///
/// Registering a name that already exists with a *different* metric kind
/// panics: metric names are static identifiers in this codebase, so a
/// kind clash is a programming error, not an input error.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-register a counter under `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-register a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-register a histogram under `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Plain-data copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Plain-data copy of a [`Registry`]: name-sorted counters, gauges, and
/// histogram snapshots. Mergeable (see [`MetricsSnapshot::merge`]) and
/// wire-encodable by `kr-server`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)`, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)`, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Merges two snapshots: same-name counters and gauges add, same-name
    /// histograms merge bucket-wise. Associative and commutative.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = self.counters.iter().cloned().collect();
        for (name, v) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        let mut gauges: BTreeMap<String, i64> = self.gauges.iter().cloned().collect();
        for (name, v) in &other.gauges {
            *gauges.entry(name.clone()).or_insert(0) += v;
        }
        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.iter().cloned().collect();
        for (name, h) in &other.histograms {
            let merged = match histograms.get(name) {
                Some(existing) => existing.merge(h),
                None => h.clone(),
            };
            histograms.insert(name.clone(), merged);
        }
        MetricsSnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }
}

/// The process-global registry. Library crates (`kr-graph`,
/// `kr-similarity`, `kr-core`) record here under crate-prefixed names;
/// the server merges this into its own registry's snapshot when
/// answering a `metrics` wire request. Being process-global, its values
/// accumulate across every server instance and direct library call in
/// the process — per-instance totals belong in a per-instance
/// [`Registry`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..HIST_SUBS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        // Every bucket's hi + 1 is the next bucket's lo.
        for i in 0..HIST_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi.wrapping_add(1), next_lo, "bucket {i}");
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(HIST_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_relative_width_bounded() {
        for i in HIST_SUBS..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo + 1;
            assert!(width as u128 * 8 <= lo as u128, "bucket {i}: {lo}..{hi}");
        }
    }

    #[test]
    fn quantiles_from_known_distribution() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        let p50 = s.quantile(0.50);
        let p90 = s.quantile(0.90);
        let p99 = s.quantile(0.99);
        // Bucket upper bounds: within 12.5% above the true quantile.
        assert!((50..=57).contains(&p50), "p50={p50}");
        assert!((90..=103).contains(&p90), "p90={p90}");
        assert!((99..=111).contains(&p99), "p99={p99}");
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(s.quantile(0.0), 1, "min sample's bucket");
        assert!(s.mean() > 50.0 && s.mean() < 51.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_equals_single_feed() {
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for v in [0u64, 1, 7, 8, 100, 100, 5_000, u64::MAX] {
            all.record(v);
        }
        for v in [0u64, 7, 100, u64::MAX] {
            a.record(v);
        }
        for v in [1u64, 8, 100, 5_000] {
            b.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), all.snapshot());
    }

    #[test]
    fn registry_get_or_register_and_snapshot() {
        let reg = Registry::new();
        let c1 = reg.counter("x.count");
        let c2 = reg.counter("x.count");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same underlying counter");
        let g = reg.gauge("x.active");
        {
            let _guard = g.track();
            assert_eq!(g.get(), 1);
        }
        assert_eq!(g.get(), 0, "guard decrements on drop");
        reg.histogram("x.lat").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("x.count".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("x.active".to_string(), 0)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("clash");
        reg.histogram("clash");
    }

    #[test]
    fn snapshot_merge_sums_and_concatenates() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("shared").add(2);
        b.counter("shared").add(3);
        a.counter("only_a").inc();
        b.gauge("g").set(-4);
        a.histogram("h").record(10);
        b.histogram("h").record(20);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(
            m.counters,
            vec![("only_a".to_string(), 1), ("shared".to_string(), 5)]
        );
        assert_eq!(m.gauges, vec![("g".to_string(), -4)]);
        assert_eq!(m.histograms.len(), 1);
        assert_eq!(m.histograms[0].1.count, 2);
        assert_eq!(m.histograms[0].1.sum, 30);
    }
}
