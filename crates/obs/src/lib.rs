//! # kr-obs
//!
//! Std-only observability substrate for the (k,r)-core serving stack.
//! Two halves:
//!
//! * [`metrics`] — a registry of atomic [`Counter`]s, [`Gauge`]s, and
//!   log-linear-bucket [`Histogram`]s. The record path is lock-free
//!   (plain relaxed atomics on `Arc`'d metrics); the registry lock is
//!   only taken at registration and snapshot time. Snapshots are plain
//!   data, mergeable across registries (the server merges its
//!   per-instance registry with the process-global one before answering
//!   a `metrics` wire request), with exact-bucket p50/p90/p99
//!   extraction.
//! * [`trace`] — structured spans: a per-query `trace_id`, a
//!   [`PhaseTimer`] that emits one JSON-lines event per finished phase,
//!   and a [`TraceSink`] that writes those events to a file or stderr
//!   (`krcore-cli serve --log <path|->`). The same sink carries the
//!   slow-query log.
//!
//! Library crates record into the process-global registry ([`global`])
//! under a crate-prefixed name (`graph.*`, `similarity.*`, `engine.*`);
//! the server owns its own [`Registry`] instance for `server.*` metrics
//! so that concurrently-running server instances (e.g. in one test
//! process) keep independent query-latency totals.
//!
//! ```
//! use kr_obs::{Registry, TraceSink};
//!
//! let reg = Registry::new();
//! let lat = reg.histogram("server.query_latency_us");
//! lat.record(250);
//! lat.record(8_000);
//! let snap = reg.snapshot();
//! let (_, hist) = &snap.histograms[0];
//! assert_eq!(hist.count, 2);
//! assert!(hist.quantile(0.99) >= hist.quantile(0.50));
//!
//! let sink = TraceSink::disabled();
//! let trace = kr_obs::next_trace_id();
//! let t = kr_obs::PhaseTimer::start(&sink, &trace, "preprocess");
//! let _dur_us = t.finish(); // would emit one JSON line if the sink were enabled
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_bounds, bucket_index, global, Counter, Gauge, GaugeGuard, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry, HIST_BUCKETS, HIST_SUBS,
};
pub use trace::{next_trace_id, Field, PhaseTimer, TraceSink};
