//! Property-based tests for the histogram bucket math and snapshot
//! merge algebra.

use kr_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, Registry, HIST_BUCKETS};
use proptest::prelude::*;

/// Strategy: samples spanning every magnitude, not just the small range
/// a uniform `u64` draw would almost always hit.
fn arb_sample() -> impl Strategy<Value = u64> {
    (0u32..64, 0u64..=u64::MAX).prop_map(|(shift, raw)| raw >> shift)
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn bucket_contains_its_value(v in arb_sample()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "v={v} bucket {i} = {lo}..{hi}");
    }

    #[test]
    fn bucket_index_monotone(a in arb_sample(), b in arb_sample()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn snapshot_totals_match(values in proptest::collection::vec(arb_sample(), 0..50)) {
        let s = snapshot_of(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        let bucket_total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v)));
        // Sparse representation: ascending indexes, no zero counts.
        for w in s.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(s.buckets.iter().all(|&(_, c)| c > 0));
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(arb_sample(), 0..30),
        b in proptest::collection::vec(arb_sample(), 0..30),
        c in proptest::collection::vec(arb_sample(), 0..30),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        // Merging shards equals one histogram fed every sample.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(sa.merge(&sb), snapshot_of(&all));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(arb_sample(), 1..50),
    ) {
        let s = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let (p50, p90, p99) = (s.quantile(0.50), s.quantile(0.90), s.quantile(0.99));
        prop_assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");
        // Each reported quantile is the upper bound of the bucket holding
        // the true rank-statistic, so it is >= the true value and <= that
        // bucket's hi.
        for (q, reported) in [(0.50, p50), (0.90, p90), (0.99, p99)] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = sorted[rank - 1];
            let (lo, hi) = bucket_bounds(bucket_index(truth));
            prop_assert!(reported >= truth, "q={q}: {reported} < true {truth}");
            prop_assert!(reported <= hi, "q={q}: {reported} above bucket {lo}..{hi}");
        }
        prop_assert!(s.quantile(1.0) >= *sorted.last().unwrap() || {
            let (_, hi) = bucket_bounds(bucket_index(*sorted.last().unwrap()));
            s.quantile(1.0) == hi
        });
    }

    #[test]
    fn registry_merge_matches_single_registry(
        a in proptest::collection::vec(arb_sample(), 0..20),
        b in proptest::collection::vec(arb_sample(), 0..20),
    ) {
        let ra = Registry::new();
        let rb = Registry::new();
        let rall = Registry::new();
        for &v in &a {
            ra.histogram("lat").record(v);
            ra.counter("n").inc();
            rall.histogram("lat").record(v);
            rall.counter("n").inc();
        }
        for &v in &b {
            rb.histogram("lat").record(v);
            rb.counter("n").inc();
            rall.histogram("lat").record(v);
            rall.counter("n").inc();
        }
        prop_assert_eq!(ra.snapshot().merge(&rb.snapshot()), rall.snapshot());
    }
}
