//! Pins the PR 4 candidate-index acceptance criteria on the real preset
//! datasets:
//!
//! 1. indexed preprocessing is **byte-identical** to the brute-force
//!    reference — same dissimilarity CSR rows, same `num_pairs` — on
//!    every preset family;
//! 2. on the gowalla-like geo preset (the bench-smoke point:
//!    k = 3, r = 12 km) the indexed build spends at least **5× fewer**
//!    metric evaluations than brute force, measured in the same run.

use kr_bench::BenchDataset;
use kr_datagen::DatasetPreset;
use kr_similarity::{build_dissimilarity_lists_brute, DissimilarityView};

/// Indexed components vs the brute-force dissimilarity reference over the
/// same member sets; returns (indexed evals, brute evals).
fn check_preset(preset: DatasetPreset, scale: f64, k: u32, r: f64) -> (u64, u64) {
    let ds = BenchDataset::new(preset, scale);
    let p = ds.instance(k, r);
    let comps = p.preprocess();
    assert!(
        !comps.is_empty(),
        "{} k={k} r={r} must produce components for the comparison to mean anything",
        preset.name()
    );
    let mut indexed_evals = 0u64;
    let mut brute_evals = 0u64;
    for comp in &comps {
        let brute = build_dissimilarity_lists_brute(p.oracle(), &comp.local_to_global);
        assert_eq!(comp.num_dissimilar_pairs, brute.num_pairs);
        indexed_evals += comp.oracle_evals;
        brute_evals += brute.oracle_evals;
        // Semantic equality: identical per-row partner sequences whether the
        // component kept the eager CSR or went lazy (the view's PartialEq
        // streams cross-representation rows).
        assert_eq!(
            comp.dissimilarity(),
            &DissimilarityView::Eager(brute),
            "{} component of {} vertices: indexed dissimilarity must match brute force",
            preset.name(),
            comp.len()
        );
    }
    (indexed_evals, brute_evals)
}

#[test]
fn gowalla_geo_preset_drops_oracle_evals_at_least_5x() {
    // Same parameters as the bench-smoke geo trajectory point.
    let (indexed, brute) = check_preset(DatasetPreset::GowallaLike, 1.0, 3, 12.0);
    assert!(
        brute >= 5 * indexed,
        "grid index must cut metric evaluations >= 5x on the geo preset: \
         indexed {indexed} vs brute {brute} ({:.1}x)",
        brute as f64 / indexed.max(1) as f64
    );
}

#[test]
fn brightkite_geo_preset_matches_brute_force() {
    let (indexed, brute) = check_preset(DatasetPreset::BrightkiteLike, 0.5, 3, 8.0);
    assert!(indexed <= brute);
}

#[test]
fn dblp_keyword_preset_matches_brute_force() {
    // Keyword preset at reduced scale (weighted-Jaccard pairs are ~30x
    // costlier than Euclidean, and `cargo test` runs unoptimized).
    let (indexed, brute) = check_preset(DatasetPreset::DblpLike, 0.35, 3, 10.0);
    assert!(
        indexed < brute,
        "inverted index must prune at least some pairs: {indexed} vs {brute}"
    );
}

#[test]
fn pokec_keyword_preset_matches_brute_force() {
    let (indexed, brute) = check_preset(DatasetPreset::PokecLike, 0.35, 3, 10.0);
    assert!(indexed <= brute);
}
