//! Bench-side dataset wrapper: preset data + threshold construction.
//!
//! The paper's `r` axis differs per dataset family: kilometers for the
//! geo-social graphs, top-x‰ similarity quantiles for the keyword graphs.
//! [`RAxis`] abstracts both so every experiment sweeps a uniform axis.

use kr_core::ProblemInstance;
use kr_datagen::{DatasetPreset, SyntheticDataset};
use kr_similarity::{top_permille_threshold, Metric, TableOracle, Threshold};

/// How the sweepable `r` axis maps to a [`Threshold`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RAxis {
    /// `r` is a distance in kilometers (Gowalla / Brightkite style).
    Kilometers,
    /// `r` is a top-x‰ quantile of the pairwise similarity distribution
    /// (DBLP / Pokec style); larger x = lower threshold = more similar
    /// pairs.
    TopPermille,
}

/// A generated dataset plus cached threshold calibration.
pub struct BenchDataset {
    /// The generated data.
    pub data: SyntheticDataset,
    /// Which r-axis the dataset uses.
    pub axis: RAxis,
}

impl BenchDataset {
    /// Generates a preset at the given scale.
    pub fn new(preset: DatasetPreset, scale: f64) -> Self {
        let data = preset.generate_scaled(scale);
        let axis = match data.metric {
            Metric::Euclidean => RAxis::Kilometers,
            _ => RAxis::TopPermille,
        };
        BenchDataset { data, axis }
    }

    /// Default bench scale (1.0 = preset size).
    pub fn preset(preset: DatasetPreset) -> Self {
        BenchDataset::new(preset, 1.0)
    }

    /// Resolves an r-axis value into a [`Threshold`].
    pub fn threshold(&self, r: f64) -> Threshold {
        match self.axis {
            RAxis::Kilometers => Threshold::MaxDistance(r),
            RAxis::TopPermille => {
                let oracle = TableOracle::new(
                    self.data.attributes.clone(),
                    self.data.metric,
                    Threshold::MinSimilarity(0.0),
                );
                let v = top_permille_threshold(
                    &oracle,
                    self.data.graph.num_vertices(),
                    r,
                    3000,
                    0x5EED,
                );
                Threshold::MinSimilarity(v)
            }
        }
    }

    /// Builds a [`ProblemInstance`] for `(k, r)`.
    pub fn instance(&self, k: u32, r: f64) -> ProblemInstance {
        ProblemInstance::new(
            self.data.graph.clone(),
            self.data.attributes.clone(),
            self.data.metric,
            self.threshold(r),
            k,
        )
    }

    /// Default interesting `r` sweep for the dataset family (the "messy
    /// middle" where cores exist but are not whole components).
    pub fn default_r_sweep(&self) -> Vec<f64> {
        match self.axis {
            RAxis::Kilometers => vec![2.0, 5.0, 8.0, 12.0, 16.0],
            RAxis::TopPermille => vec![1.0, 3.0, 5.0, 10.0, 15.0],
        }
    }

    /// Units label for printed tables.
    pub fn r_unit(&self) -> &'static str {
        match self.axis {
            RAxis::Kilometers => "km",
            RAxis::TopPermille => "top-permille",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_match_presets() {
        assert_eq!(
            BenchDataset::new(DatasetPreset::GowallaLike, 0.1).axis,
            RAxis::Kilometers
        );
        assert_eq!(
            BenchDataset::new(DatasetPreset::DblpLike, 0.1).axis,
            RAxis::TopPermille
        );
    }

    #[test]
    fn threshold_resolution() {
        let d = BenchDataset::new(DatasetPreset::GowallaLike, 0.1);
        assert_eq!(d.threshold(10.0), Threshold::MaxDistance(10.0));
        let d = BenchDataset::new(DatasetPreset::DblpLike, 0.1);
        match d.threshold(3.0) {
            Threshold::MinSimilarity(v) => assert!(v > 0.0 && v <= 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_builds() {
        let d = BenchDataset::new(DatasetPreset::BrightkiteLike, 0.1);
        let p = d.instance(3, 5.0);
        assert_eq!(p.k(), 3);
        assert_eq!(p.graph().num_vertices(), d.data.graph.num_vertices());
    }
}
