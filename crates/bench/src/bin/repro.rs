//! Regenerates the paper's tables and figures on the synthetic presets.
//!
//! ```text
//! repro                 # run everything
//! repro fig9a fig10b    # run selected experiments
//! repro --scale 0.5 --time-limit-ms 3000 all
//! repro --list
//! ```

use kr_bench::experiments::{run_experiment, ExpOptions, ALL_EXPERIMENTS};

fn main() {
    let mut opts = ExpOptions::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a float");
            }
            "--time-limit-ms" => {
                opts.time_limit_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--time-limit-ms needs an integer");
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other if ALL_EXPERIMENTS.contains(&other) => ids.push(other.to_string()),
            other => {
                eprintln!("unknown experiment or flag {other:?}; try --list");
                std::process::exit(2);
            }
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    println!(
        "# (k,r)-core reproduction | scale={} | per-run budget={} ms (exceeded => INF)\n",
        opts.scale, opts.time_limit_ms
    );
    for id in ids {
        let t0 = std::time::Instant::now();
        for table in run_experiment(&id, &opts) {
            println!("{table}");
        }
        println!("[{id} finished in {:.1?}]\n", t0.elapsed());
    }
}
