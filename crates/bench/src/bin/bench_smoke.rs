//! CI bench-smoke gate: quick-mode enumeration benchmarks on two presets,
//! recorded as one JSON trajectory point and compared against the
//! checked-in baseline (`BENCH_pr6.json`; `BENCH_pr3.json` / `BENCH_pr4.json`
//! are earlier points of the same trajectory).
//!
//! ```text
//! bench_smoke check <baseline.json>   # run, compare, exit 1 on regression
//! bench_smoke write <baseline.json>   # run, (re)write the baseline
//! ```
//!
//! Wall-clock on a CI runner is not comparable to wall-clock on the
//! machine that recorded the baseline, so every run also times a fixed
//! CPU-bound calibration loop and the gate compares *normalized* times
//! (`wall_ms / calib_ms`). A point regresses when its normalized time
//! exceeds the baseline's by more than `BENCH_SMOKE_MAX_REGRESSION_PCT`
//! percent (default 25). A missing baseline is not an error — the gate
//! arms itself once the first baseline is committed.
//!
//! Schema 2 (PR 4) adds two fields per point, both gated:
//!
//! * `preprocess_ms` — wall time of `ProblemInstance::preprocess`
//!   (informational; folded into the same noise-tolerant wall gate is
//!   pointless since enumeration dominates, so it is recorded but not
//!   gated on its own);
//! * `oracle_evals` — similarity-metric evaluations preprocessing spent.
//!   This is **deterministic** (seeded datasets, deterministic candidate
//!   indexes), so the gate fails on any regression beyond 10% with no
//!   wall-clock noise allowance. Schema-1 baselines without the field
//!   skip this check (backward-compatible gate).
//!
//! Schema 3 (PR 6) adds the decomposition-index miss path per point:
//!
//! * `index_build_ms` — one-off cost of `DecompositionIndex::build_default`
//!   (informational: paid once per dataset, amortized over every query);
//! * `indexed_preprocess_ms` — `preprocess_with_candidates` over the
//!   index-resolved candidate set, i.e. what a server cache miss pays.
//!   `check` asserts in-run (same machine, same samples — no calibration
//!   needed) that the indexed path beats full preprocessing on the
//!   DblpLike point by at least [`MIN_INDEX_SPEEDUP`]×.
//!
//! Schema 4 (PR 7) adds per-point latency quantiles, informational only
//! (never gated — `SAMPLES` runs are too few for stable tails, but the
//! spread vs `wall_ms` flags noisy runs at a glance):
//!
//! * `p50_us` / `p99_us` — the enumeration samples fed through the same
//!   `kr_obs` log-linear histogram the server uses for
//!   `server.query_latency_us`, so bucket rounding matches production
//!   metrics. Absent in older baselines; `check` never reads them.
//!
//! Schema 5 (PR 9) adds the lazy-dissimilarity story:
//!
//! * a third built-in point, `geo-corridor` — a 26-cluster corridor of
//!   circulant rings (1040 vertices, one giant component, ~1M dissimilar
//!   pairs) sized past the auto-lazy floor, measured with the *maximum*
//!   search (`AlgoConfig::adv_max`) rather than enumeration: the
//!   incumbent + (k,k')-core bound collapse the tree after the first
//!   descent, which is exactly the access pattern the lazy view is for
//!   (enumeration visits every row by construction and would erase the
//!   effect);
//! * `lazy_rows_materialized` / `dissim_pairs_avoided` per point — rows
//!   the lazy view actually built, and directed complement entries it
//!   never had to (both 0 on eager points);
//! * an in-run gate (same-process, deterministic, no baseline needed):
//!   on the corridor point the lazy view must materialize at most
//!   [`MAX_LAZY_MATERIALIZED_FRAC`] of the directed entries an eager
//!   build would allocate.
//!
//! Schema 6 (PR 10) adds the write path, measured end to end through an
//! in-process server (two top-level fields, informational — wall-clock
//! across a socket is too noisy to gate):
//!
//! * `updates_per_sec` — effective applied updates per client-observed
//!   wall second over a stream of single-edge mutation batches against
//!   a warm cache (each batch pays apply + incremental coreness
//!   maintenance + the cache repair pass + the wire round trip);
//! * `repair_ms` — mean client-observed wall per batch of that stream;
//! * an in-run mechanism gate: every batch toggles an edge that is
//!   dissimilar at the cached entry's `r`, so the invalidate-and-repair
//!   pass must *repair* (keep) the warm entry on every single batch —
//!   one invalidation fails the run.

use kr_bench::BenchDataset;
use kr_core::{enumerate_maximal_prepared, find_maximum_prepared, AlgoConfig};
use kr_datagen::DatasetPreset;
use kr_graph::{Graph, VertexId};
use kr_server::{Client, QuerySpec, Server, ServerConfig};
use kr_similarity::{AttributeTable, Metric, Threshold};
use std::hint::black_box;
use std::time::Instant;

/// Timed samples per benchmark point; the minimum is reported (least
/// scheduler noise).
const SAMPLES: usize = 5;

/// Default regression gate, percent over baseline normalized time.
const DEFAULT_MAX_REGRESSION_PCT: f64 = 25.0;

/// Gate on the deterministic oracle-evaluation counter: preprocessing
/// may not spend more than this many percent extra metric evaluations
/// over the baseline (no noise to tolerate — any bigger jump means the
/// candidate indexes lost leverage).
const MAX_ORACLE_EVALS_REGRESSION_PCT: f64 = 10.0;

/// In-run gate on the decomposition-index miss path: on the DblpLike
/// point, `preprocess_with_candidates` over the index-resolved candidates
/// must be at least this many times faster than full preprocessing. Both
/// sides are best-of-3 on the same machine in the same process, so the
/// ratio is stable. The metric-aware candidate indexes (PR 4) already
/// made full preprocessing cheap on this point, so the decomposition
/// index's remaining win is modest — measured ~1.2× locally — and the
/// gate guards that it stays a win at all, not a fictional margin.
const MIN_INDEX_SPEEDUP: f64 = 1.05;

/// In-run gate on the lazy dissimilarity view: on the `geo-corridor`
/// point the bound-pruned maximum search must leave at least 70% of the
/// eager complement unbuilt. Fully deterministic (fixed instance, fixed
/// search), so there is no noise allowance; measured ~0.2% locally, the
/// gate guards the mechanism, not the margin.
const MAX_LAZY_MATERIALIZED_FRAC: f64 = 0.30;

struct Point {
    preset: String,
    scale: f64,
    k: u32,
    r: f64,
    wall_ms: f64,
    preprocess_ms: f64,
    index_build_ms: f64,
    indexed_preprocess_ms: f64,
    oracle_evals: u64,
    p50_us: u64,
    p99_us: u64,
    peak_component_bytes: usize,
    /// Rows the lazy dissimilarity view materialized during the measured
    /// searches (0 on points whose components stayed eager).
    lazy_rows_materialized: u64,
    /// Directed complement entries the lazy view never built: the eager
    /// footprint minus what actually materialized (0 on eager points).
    dissim_pairs_avoided: u64,
}

/// Sums the lazy-view counters over `comps`: (rows materialized, directed
/// entries materialized, directed entries an eager build would hold).
/// Eager components contribute nothing — the fields report what laziness
/// did, not what eagerness costs.
fn lazy_tally(comps: &[kr_core::LocalComponent]) -> (u64, u64, u64) {
    comps.iter().filter(|c| c.is_dissimilarity_lazy()).fold(
        (0, 0, 0),
        |(rows, entries, eager), c| {
            (
                rows + c.dissimilarity().materialized_rows() as u64,
                entries + c.dissimilarity().materialized_entries() as u64,
                eager + 2 * c.num_dissimilar_pairs as u64,
            )
        },
    )
}

fn quick_cases() -> Vec<(DatasetPreset, f64, u32, f64)> {
    vec![
        // One geo preset, one keyword preset; parameters chosen so the
        // enumeration does real search work (tens to hundreds of ms) but
        // stays far from the pathological blow-up region.
        (DatasetPreset::GowallaLike, 1.0, 3, 12.0),
        (DatasetPreset::DblpLike, 1.0, 3, 10.0),
    ]
}

/// Fixed CPU-bound workload used to normalize wall-clock across machines.
fn calibration_ms() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        black_box(acc);
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Optional snapshot-backed point: when `BENCH_SMOKE_SNAPSHOT` names a
/// `.krb` file, its dataset is measured alongside the synthetic presets
/// (`BENCH_SMOKE_SNAPSHOT_K` / `BENCH_SMOKE_SNAPSHOT_R` override the
/// default parameters; `r` defaults by metric direction). The point is
/// written into the trajectory JSON like any other; `check` gates it
/// only once a baseline recorded it, so machines without the file — CI
/// included — are unaffected. This is how the perf trajectory moves onto
/// real Table 3 data once the SNAP originals are ingested.
fn snapshot_case() -> Option<(String, kr_core::ProblemInstance, u32, f64)> {
    let path = std::env::var("BENCH_SMOKE_SNAPSHOT").ok()?;
    let ds = match kr_similarity::read_snapshot_file(&path) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("BENCH_SMOKE_SNAPSHOT {path}: {e}");
            std::process::exit(2);
        }
    };
    let env_num = |key: &str| std::env::var(key).ok().and_then(|v| v.parse().ok());
    let k: u32 = env_num("BENCH_SMOKE_SNAPSHOT_K").unwrap_or(3.0) as u32;
    let r: f64 = env_num("BENCH_SMOKE_SNAPSHOT_R").unwrap_or(if ds.metric.is_distance() {
        10.0
    } else {
        0.3
    });
    let threshold = if ds.metric.is_distance() {
        kr_similarity::Threshold::MaxDistance(r)
    } else {
        kr_similarity::Threshold::MinSimilarity(r)
    };
    let name = std::path::Path::new(&path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    let problem = kr_core::ProblemInstance::new(ds.graph, ds.attributes, ds.metric, threshold, k);
    Some((format!("snapshot:{name}"), problem, k, r))
}

fn measure_instance(
    name: String,
    scale: f64,
    k: u32,
    r: f64,
    p: &kr_core::ProblemInstance,
) -> Point {
    let mut preprocess_ms = f64::INFINITY;
    let mut comps = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        comps = p.preprocess();
        preprocess_ms = preprocess_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    // The decomposition-index miss path: build once (amortized per
    // dataset in the server), then preprocess only the index-resolved
    // candidates.
    let t = Instant::now();
    let index = kr_core::DecompositionIndex::build_default(p.graph(), p.oracle());
    let index_build_ms = t.elapsed().as_secs_f64() * 1e3;
    let candidates = index.candidates(k, p.oracle().threshold());
    let mut indexed_preprocess_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let indexed_comps = black_box(p.preprocess_with_candidates(&candidates.vertices));
        indexed_preprocess_ms = indexed_preprocess_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            indexed_comps.len(),
            comps.len(),
            "indexed preprocessing must reproduce the component split"
        );
    }
    let oracle_evals = comps.iter().map(|c| c.oracle_evals).sum();
    let peak_component_bytes = comps.iter().map(|c| c.memory_bytes()).max().unwrap_or(0);
    let cfg = AlgoConfig::adv_enum();
    let mut best = f64::INFINITY;
    // The same log-linear histogram the server feeds for
    // `server.query_latency_us`, so the reported quantiles carry
    // production bucket rounding.
    let hist = kr_obs::Histogram::default();
    for _ in 0..SAMPLES {
        let t = Instant::now();
        black_box(enumerate_maximal_prepared(&comps, &cfg).cores.len());
        let elapsed = t.elapsed();
        hist.record_duration(elapsed);
        best = best.min(elapsed.as_secs_f64() * 1e3);
    }
    let snap = hist.snapshot();
    let (lazy_rows, lazy_entries, eager_entries) = lazy_tally(&comps);
    Point {
        preset: name,
        scale,
        k,
        r,
        wall_ms: best,
        preprocess_ms,
        index_build_ms,
        indexed_preprocess_ms,
        oracle_evals,
        p50_us: snap.quantile(0.5),
        p99_us: snap.quantile(0.99),
        peak_component_bytes,
        lazy_rows_materialized: lazy_rows,
        dissim_pairs_avoided: eager_entries - lazy_entries,
    }
}

/// The `geo-corridor` instance: `clusters` circulant rings of `size`
/// vertices (each vertex wired to its 3 nearest ring successors), laid
/// out on a line 6.0 apart with 4 bridge edges between consecutive
/// rings, points on a unit circle per ring. With `MaxDistance(7.0)` only
/// adjacent rings stay similar, so the single giant component carries
/// ~1M dissimilar pairs — past the auto-lazy floor, with a complement
/// too large to want eagerly.
fn corridor_instance(clusters: usize, size: usize, k: u32, r: f64) -> kr_core::ProblemInstance {
    let n = clusters * size;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut pts = Vec::new();
    for c in 0..clusters {
        let base = (c * size) as VertexId;
        for i in 0..size as VertexId {
            for d in 1..=3u32 {
                edges.push((base + i, base + (i + d) % size as VertexId));
            }
        }
        if c + 1 < clusters {
            let next = ((c + 1) * size) as VertexId;
            for i in 0..4u32 {
                edges.push((base + i, next + i));
            }
        }
        for i in 0..size {
            let ang = i as f64 / size as f64 * std::f64::consts::TAU;
            pts.push((c as f64 * 6.0 + ang.cos(), ang.sin()));
        }
    }
    kr_core::ProblemInstance::new(
        Graph::from_edges(n, &edges),
        AttributeTable::points(pts),
        Metric::Euclidean,
        Threshold::MaxDistance(r),
        k,
    )
}

/// Measures the corridor point: maximum search (not enumeration — see
/// the module doc), best-of-3 at ~1.5 s a sample. The decomposition-index
/// fields stay 0: the miss-path story is told by the DblpLike point and
/// repeating it here would double the corridor's wall for no new signal.
/// Returns the point plus the gate inputs (materialized directed entries,
/// eager directed entries).
fn measure_corridor() -> (Point, (u64, u64)) {
    const CLUSTERS: usize = 26;
    const SIZE: usize = 40;
    const K: u32 = 3;
    const R: f64 = 7.0;
    let p = corridor_instance(CLUSTERS, SIZE, K, R);
    let mut preprocess_ms = f64::INFINITY;
    let mut comps = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        comps = p.preprocess();
        preprocess_ms = preprocess_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let oracle_evals = comps.iter().map(|c| c.oracle_evals).sum();
    let cfg = AlgoConfig::adv_max();
    let hist = kr_obs::Histogram::default();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let res = black_box(find_maximum_prepared(&comps, &cfg));
        assert!(res.completed, "corridor maximum search must complete");
        let elapsed = t.elapsed();
        hist.record_duration(elapsed);
        best = best.min(elapsed.as_secs_f64() * 1e3);
    }
    // Tallied after the samples: rows memoize across runs on the same
    // components, so this is the steady-state footprint of the workload.
    let (lazy_rows, lazy_entries, eager_entries) = lazy_tally(&comps);
    let peak_component_bytes = comps.iter().map(|c| c.memory_bytes()).max().unwrap_or(0);
    let snap = hist.snapshot();
    let point = Point {
        preset: "geo-corridor".to_string(),
        scale: 1.0,
        k: K,
        r: R,
        wall_ms: best,
        preprocess_ms,
        index_build_ms: 0.0,
        indexed_preprocess_ms: 0.0,
        oracle_evals,
        p50_us: snap.quantile(0.5),
        p99_us: snap.quantile(0.99),
        peak_component_bytes,
        lazy_rows_materialized: lazy_rows,
        dissim_pairs_avoided: eager_entries - lazy_entries,
    };
    (point, (lazy_entries, eager_entries))
}

/// Measures the write path end to end (schema 6): an in-process server
/// with one warm cache entry takes [`MUTATION_BATCHES`] single-edge
/// mutation batches, each toggling a non-edge whose endpoints are far
/// beyond the cached entry's `r` — provably filtered by preprocessing,
/// so the repair pass must keep the entry every time (asserted; one
/// invalidation aborts the run). Returns `(updates_per_sec, repair_ms)`.
fn measure_mutation() -> (f64, f64) {
    const DATASET: &str = "gowalla-like";
    const K: u32 = 3;
    const R: f64 = 12.0;
    let handle = Server::bind(ServerConfig::default())
        .expect("bind ephemeral port")
        .spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut spec = QuerySpec::new(DATASET, K, R);
    spec.scale = 1.0;
    let warm = client.enumerate(spec).expect("warm query");
    assert!(!warm.cores.is_empty(), "warm instance must be non-trivial");

    // A non-adjacent pair far beyond R: its edge never survives the
    // dissimilar-edge filter at this r, so toggling it cannot change the
    // cached component set.
    let dataset = handle
        .state()
        .datasets
        .get(DATASET, 1.0)
        .expect("dataset resident after the warm query");
    let view = dataset.view();
    let AttributeTable::Points(rows) = view.attributes.as_ref() else {
        panic!("gowalla-like carries points");
    };
    let n = view.graph.num_vertices() as VertexId;
    let far = |u: VertexId, v: VertexId| {
        let (a, b) = (rows[u as usize], rows[v as usize]);
        ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt() > 2.0 * R
    };
    let (u, v) = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .find(|&(u, v)| !view.graph.has_edge(u, v) && far(u, v))
        .expect("a dissimilar non-edge exists");

    let t = Instant::now();
    let mut applied = 0u64;
    for i in 0..MUTATION_BATCHES {
        let res = if i % 2 == 0 {
            client.add_edges(DATASET, 1.0, vec![(u, v)])
        } else {
            client.remove_edges(DATASET, 1.0, vec![(u, v)])
        }
        .expect("mutation batch");
        assert_eq!((res.applied, res.ignored), (1, 0), "toggle is effective");
        assert!(
            res.repairs >= 1 && res.invalidations == 0,
            "a dissimilar-edge toggle must repair the warm entry, not \
             invalidate it: {res:?}"
        );
        applied += res.applied;
    }
    let wall_s = t.elapsed().as_secs_f64();
    handle.shutdown_and_join().expect("clean shutdown");
    (
        applied as f64 / wall_s,
        wall_s * 1e3 / MUTATION_BATCHES as f64,
    )
}

/// Mutation batches in the schema-6 write-path measurement.
const MUTATION_BATCHES: usize = 200;

fn render(calib_ms: f64, updates_per_sec: f64, repair_ms: f64, points: &[Point]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 6,\n");
    out.push_str(&format!("  \"calib_ms\": {calib_ms:.3},\n"));
    out.push_str(&format!(
        "  \"updates_per_sec\": {updates_per_sec:.1},\n  \"repair_ms\": {repair_ms:.4},\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"scale\": {}, \"k\": {}, \"r\": {}, \
             \"wall_ms\": {:.3}, \"preprocess_ms\": {:.3}, \"index_build_ms\": {:.3}, \
             \"indexed_preprocess_ms\": {:.3}, \"oracle_evals\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \
             \"peak_component_bytes\": {}, \
             \"lazy_rows_materialized\": {}, \"dissim_pairs_avoided\": {}}}{comma}\n",
            p.preset,
            p.scale,
            p.k,
            p.r,
            p.wall_ms,
            p.preprocess_ms,
            p.index_build_ms,
            p.indexed_preprocess_ms,
            p.oracle_evals,
            p.p50_us,
            p.p99_us,
            p.peak_component_bytes,
            p.lazy_rows_materialized,
            p.dissim_pairs_avoided
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal scanner for the flat schema this binary itself writes: finds
/// `"key": <number>` after `from` and returns the number. Not a general
/// JSON parser — both reader and writer live in this file.
fn scan_num(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let off = at + (text[at..].len() - rest.len());
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(|v| (v, off + end))
}

fn scan_str(text: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let needle = format!("\"{key}\": \"");
    let at = text[from..].find(&needle)? + from + needle.len();
    let end = text[at..].find('"')? + at;
    Some((text[at..end].to_string(), end))
}

struct BaselinePoint {
    preset: String,
    scale: f64,
    k: f64,
    r: f64,
    wall_ms: f64,
    /// Absent in schema-1 baselines (pre-PR4): the evals gate is skipped.
    oracle_evals: Option<f64>,
}

fn parse_baseline(text: &str) -> Option<(f64, Vec<BaselinePoint>)> {
    let (calib_ms, mut pos) = scan_num(text, "calib_ms", 0)?;
    let mut points = Vec::new();
    while let Some((preset, next)) = scan_str(text, "preset", pos) {
        let (scale, next) = scan_num(text, "scale", next)?;
        let (k, next) = scan_num(text, "k", next)?;
        let (r, next) = scan_num(text, "r", next)?;
        let (wall_ms, next) = scan_num(text, "wall_ms", next)?;
        // Only accept an `oracle_evals` that belongs to *this* point: it
        // must appear before the next point's `preset` key (a schema-1
        // point must not steal the field from its successor).
        let point_end = scan_str(text, "preset", next).map_or(text.len(), |(_, e)| e);
        let oracle_evals = scan_num(text, "oracle_evals", next)
            .filter(|&(_, end)| end <= point_end)
            .map(|(v, _)| v);
        points.push(BaselinePoint {
            preset,
            scale,
            k,
            r,
            wall_ms,
            oracle_evals,
        });
        pos = next;
    }
    Some((calib_ms, points))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "check" || mode == "write" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: bench_smoke <check|write> <baseline.json>");
            std::process::exit(2);
        }
    };

    let calib_ms = calibration_ms();
    println!("calibration: {calib_ms:.3} ms");
    // One instance lives at a time: each dataset is built, measured, and
    // dropped before the next — peak memory is the largest single case,
    // not the sum (the snapshot case is meant for real Table 3 data).
    let report = |p: &Point| {
        println!(
            "{:<16} scale {:<5} k {} r {:<5} wall {:>9.3} ms  (normalized {:.4})  \
             preprocess {:>8.3} ms  indexed {:>8.3} ms (build {:.3} ms)  \
             {} oracle evals  p50/p99 {}/{} us  peak component {} bytes  \
             lazy rows {} / pairs avoided {}",
            p.preset,
            p.scale,
            p.k,
            p.r,
            p.wall_ms,
            p.wall_ms / calib_ms,
            p.preprocess_ms,
            p.indexed_preprocess_ms,
            p.index_build_ms,
            p.oracle_evals,
            p.p50_us,
            p.p99_us,
            p.peak_component_bytes,
            p.lazy_rows_materialized,
            p.dissim_pairs_avoided
        );
    };
    let mut points: Vec<Point> = quick_cases()
        .into_iter()
        .map(|(preset, scale, k, r)| {
            let ds = BenchDataset::new(preset, scale);
            let instance = ds.instance(k, r);
            let p = measure_instance(preset.name().to_string(), scale, k, r, &instance);
            report(&p);
            p
        })
        .collect();
    let (corridor_point, corridor_gate) = measure_corridor();
    report(&corridor_point);
    points.push(corridor_point);
    if let Some((name, problem, k, r)) = snapshot_case() {
        // Snapshot points carry scale 1 by convention: the file pins the
        // dataset, there is nothing to scale.
        let p = measure_instance(name, 1.0, k, r, &problem);
        report(&p);
        points.push(p);
    }
    // The write path: informational numbers, but the repair-not-invalidate
    // mechanism is asserted inside — a wrongly-invalidating cache fails
    // both `check` and `write` here.
    let (updates_per_sec, repair_ms) = measure_mutation();
    println!(
        "{:<16} {updates_per_sec:>9.1} updates/s  {repair_ms:.4} ms/batch \
         (warm-cache repair stream, {MUTATION_BATCHES} batches)",
        "mutation"
    );

    if mode == "write" {
        std::fs::write(path, render(calib_ms, updates_per_sec, repair_ms, &points))
            .expect("write baseline");
        println!("baseline written to {path}");
        return;
    }

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            println!("no baseline at {path}; gate inactive (commit one with `bench_smoke write`)");
            return;
        }
    };
    let Some((base_calib, base_points)) = parse_baseline(&text) else {
        eprintln!("baseline {path} is unreadable");
        std::process::exit(2);
    };
    let max_pct: f64 = std::env::var("BENCH_SMOKE_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION_PCT);

    let mut failed = false;
    // In-run index gate: both sides measured in this process on this
    // machine, so no baseline or calibration is involved. DblpLike is the
    // gated point (keyword metric, the heavier preprocessing of the two).
    for p in points.iter().filter(|p| p.preset == "dblp-like") {
        let speedup = p.preprocess_ms / p.indexed_preprocess_ms.max(1e-6);
        let verdict = if speedup < MIN_INDEX_SPEEDUP {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{:<16} indexed miss path {:.3} ms vs full preprocess {:.3} ms  \
             ({speedup:.2}x, gate {MIN_INDEX_SPEEDUP}x)  {verdict}",
            p.preset, p.indexed_preprocess_ms, p.preprocess_ms
        );
    }
    // In-run lazy gate: deterministic counters from this process, no
    // baseline involved. `eager_entries == 0` means the corridor stopped
    // resolving to a lazy view at all — that is itself a regression (the
    // auto-mode heuristic or the instance drifted).
    {
        let (materialized, eager_entries) = corridor_gate;
        let frac = materialized as f64 / (eager_entries as f64).max(1.0);
        let verdict = if eager_entries == 0 || frac > MAX_LAZY_MATERIALIZED_FRAC {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{:<16} lazy view materialized {materialized} of {eager_entries} directed \
             entries  ({:.2}%, gate {:.0}%)  {verdict}",
            "geo-corridor",
            frac * 100.0,
            MAX_LAZY_MATERIALIZED_FRAC * 100.0
        );
    }
    for p in &points {
        // Match on the full workload identity, not just the preset name:
        // comparing against a baseline recorded for different (scale, k,
        // r) would gate incomparable numbers.
        let Some(base) = base_points.iter().find(|b| {
            b.preset == p.preset && b.scale == p.scale && b.k == f64::from(p.k) && b.r == p.r
        }) else {
            println!(
                "{:<16} no baseline point for scale {} k {} r {}; skipping \
                 (rewrite the baseline after retuning quick_cases)",
                p.preset, p.scale, p.k, p.r
            );
            continue;
        };
        let now = p.wall_ms / calib_ms;
        let then = base.wall_ms / base_calib;
        let delta_pct = (now / then - 1.0) * 100.0;
        let verdict = if delta_pct > max_pct {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{:<16} normalized {now:.4} vs baseline {then:.4}  ({delta_pct:+.1}%, gate {max_pct}%)  {verdict}",
            p.preset
        );
        if let Some(base_evals) = base.oracle_evals {
            // Deterministic counter: no calibration, tight gate.
            let delta_pct = (p.oracle_evals as f64 / base_evals - 1.0) * 100.0;
            let verdict = if delta_pct > MAX_ORACLE_EVALS_REGRESSION_PCT {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "{:<16} oracle evals {} vs baseline {base_evals:.0}  ({delta_pct:+.1}%, gate {MAX_ORACLE_EVALS_REGRESSION_PCT}%)  {verdict}",
                p.preset, p.oracle_evals
            );
        } else {
            println!(
                "{:<16} baseline has no oracle_evals (schema 1); evals gate skipped",
                p.preset
            );
        }
    }
    if failed {
        eprintln!(
            "bench-smoke gate failed: wall time regressed > {max_pct}%, oracle evals \
             regressed > {MAX_ORACLE_EVALS_REGRESSION_PCT}%, the index miss path lost \
             its speedup, or the lazy view materialized > {:.0}% of the corridor \
             complement",
            MAX_LAZY_MATERIALIZED_FRAC * 100.0
        );
        std::process::exit(1);
    }
}
