//! CI load gate: concurrent mixed workloads against in-process servers,
//! with **exact** rejection/abort accounting and a throughput trajectory
//! point (`BENCH_pr8.json`).
//!
//! ```text
//! bench_load check <baseline.json>   # run, compare, exit 1 on regression
//! bench_load write <baseline.json>   # run, (re)write the baseline
//! ```
//!
//! Four phases, each against its own [`kr_server::Server`] so every
//! per-instance counter is attributable:
//!
//! 1. **load** — `BENCH_LOAD_CLIENTS` concurrent clients (default 4) each
//!    run `BENCH_LOAD_QUERIES` queries (default 6) drawn from a mixed
//!    hit/miss/sweep/maximum workload. Reports throughput and p50/p99
//!    from the server's own `server.query_latency_us` histogram, so the
//!    quantiles carry production bucket rounding.
//! 2. **cap** — a server with `max_connections = 2` holds two live
//!    sessions; every overflow connect must be answered with a `busy`
//!    frame, and a slot freed by a disconnect must become connectable
//!    again.
//! 3. **abort** — a client hangs up mid-stream on a heavy enumeration;
//!    the server must classify the query as a client abort (counted in
//!    `server.client_aborts`, never `server.query_errors`) and drain it.
//! 4. **admission** — a server with `max_queries_per_dataset = 1` must
//!    answer a second in-flight query on the same dataset with a `busy`
//!    error while the first is still streaming.
//!
//! The **accounting gate** runs in both modes and is exact, not
//! noise-tolerant: every issued query must be answered (a latency
//! sample — one per delivered `done` frame), rejected (admission), or
//! aborted (client hangup), with zero server-side query errors; and
//! every overflow connect must be a busy rejection. Any imbalance —
//! a dropped query, a double count, a misclassified disconnect — fails
//! the run regardless of baseline.
//!
//! The **throughput gate** (`check` mode) follows the `bench_smoke`
//! convention: wall-clock is normalized by a fixed CPU-bound calibration
//! loop, and the normalized load-phase throughput may not regress by more
//! than `BENCH_LOAD_MAX_REGRESSION_PCT` percent (default 40 — thread
//! scheduling makes concurrent throughput noisier than single-thread
//! enumeration). The gate only arms when the baseline was recorded with
//! the same client/query counts; a missing baseline is not an error.

use kr_server::{
    Client, ClientError, ErrorCode, Frame, QuerySpec, Request, Server, ServerConfig, ServerHandle,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default concurrent clients in the load phase (`BENCH_LOAD_CLIENTS`).
const DEFAULT_CLIENTS: usize = 4;

/// Default queries per client in the load phase (`BENCH_LOAD_QUERIES`).
const DEFAULT_QUERIES: usize = 6;

/// Default throughput regression gate, percent under baseline normalized
/// throughput (`BENCH_LOAD_MAX_REGRESSION_PCT`).
const DEFAULT_MAX_REGRESSION_PCT: f64 = 40.0;

/// Retries for the race-prone phases (abort, admission): each attempt
/// synchronizes on the victim query's first streamed frame, but the
/// query can still finish before the contender acts. Every attempt stays
/// inside the accounting identity either way.
const MAX_ATTEMPTS: usize = 10;

/// How long to wait for one server's counters to settle into the
/// accounting identity after the last client action.
const SETTLE: Duration = Duration::from_secs(10);

/// Per-server tally read straight off the instance registry (not over
/// the wire: the wire snapshot merges the process-global registry, and
/// this binary runs several servers whose books must stay separate).
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    queries: u64,
    answered: u64,
    admission_rejections: u64,
    client_aborts: u64,
    query_errors: u64,
    busy_rejections: u64,
}

fn tally(handle: &ServerHandle) -> Tally {
    let m = &handle.state().metrics;
    Tally {
        queries: m.queries.get(),
        answered: m.query_latency_us.snapshot().count,
        admission_rejections: m.admission_rejections.get(),
        client_aborts: m.client_aborts.get(),
        query_errors: m.query_errors.get(),
        busy_rejections: m.busy_rejections.get(),
    }
}

impl Tally {
    /// The identity every server must settle into: each accepted query
    /// resolved exactly one way.
    fn balanced(&self) -> bool {
        self.queries
            == self.answered + self.admission_rejections + self.client_aborts + self.query_errors
    }

    fn add(&self, other: &Tally) -> Tally {
        Tally {
            queries: self.queries + other.queries,
            answered: self.answered + other.answered,
            admission_rejections: self.admission_rejections + other.admission_rejections,
            client_aborts: self.client_aborts + other.client_aborts,
            query_errors: self.query_errors + other.query_errors,
            busy_rejections: self.busy_rejections + other.busy_rejections,
        }
    }
}

/// Polls until the server's books balance (in-flight queries resolved).
fn settle(handle: &ServerHandle) -> Tally {
    let deadline = Instant::now() + SETTLE;
    loop {
        let t = tally(handle);
        if t.balanced() {
            return t;
        }
        if Instant::now() > deadline {
            panic!("accounting did not settle within {SETTLE:?}: {t:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn env_num<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fixed CPU-bound workload used to normalize wall-clock across machines
/// (same loop as `bench_smoke`, so the two trajectories share units).
fn calibration_ms() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        black_box(acc);
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The heavy streaming query the abort/admission phases hold in flight:
/// big enough (scale 1, wide `r`) that the sweep streams several frames
/// with real compute between them.
fn heavy_spec() -> QuerySpec {
    QuerySpec {
        scale: 1.0,
        ..QuerySpec::new("gowalla-like", 3, 12.0)
    }
}

/// The load-phase mix for client `ci`, query `j`: repeated hits, a
/// rotating band of distinct `(k, r)` keys (cold misses that warm into
/// hits), streaming sweeps, and every fourth query a `maximum`.
fn load_spec(ci: usize, j: usize) -> (bool, QuerySpec) {
    let base = QuerySpec {
        scale: 0.25,
        ..QuerySpec::new("gowalla-like", 3, 8.0)
    };
    let maximum = j % 4 == 3;
    let spec = match (ci + j) % 3 {
        0 => base, // hot key: a hit for everyone after the first miss
        1 => QuerySpec {
            k: 3 + ((ci + j) % 3) as u32,
            r: 8.0 + ((ci * 7 + j) % 4) as f64,
            ..base
        },
        _ => QuerySpec {
            k: 2,
            r: 12.0,
            ..base
        }, // sweep: streams the most cores
    };
    (maximum, spec)
}

struct LoadResult {
    issued: u64,
    wall_s: f64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    tally: Tally,
}

/// Phase 1: N concurrent clients, mixed workload, throughput + quantiles.
fn phase_load(clients: usize, queries: usize) -> LoadResult {
    let handle = Server::bind(ServerConfig::default()).expect("bind").spawn();
    let addr = handle.addr();
    let issued = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|ci| {
            let issued = issued.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for j in 0..queries {
                    let (maximum, spec) = load_spec(ci, j);
                    issued.fetch_add(1, Ordering::Relaxed);
                    let res = if maximum {
                        client.maximum(spec)
                    } else {
                        client.enumerate(spec)
                    };
                    res.unwrap_or_else(|e| panic!("client {ci} query {j} failed: {e}"));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("load worker panicked");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let lat = handle.state().metrics.query_latency_us.snapshot();
    let tally = settle(&handle);
    handle.shutdown_and_join().expect("shutdown");
    let issued = issued.load(Ordering::Relaxed);
    LoadResult {
        issued,
        wall_s,
        qps: issued as f64 / wall_s,
        p50_us: lat.quantile(0.5),
        p99_us: lat.quantile(0.99),
        tally,
    }
}

/// Phase 2: connection cap. Returns the number of connects the server
/// answered with a `busy` frame (counted client-side, so the gate can
/// demand the server's counter matches exactly) and the phase tally.
fn phase_cap() -> (u64, Tally) {
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let handle = Server::bind(config).expect("bind").spawn();
    let addr = handle.addr();
    let held_a = Client::connect(addr).expect("first connect");
    let held_b = Client::connect(addr).expect("second connect");
    let mut rejected_connects = 0u64;
    for i in 0..3 {
        match Client::connect(addr) {
            Err(ClientError::Busy {
                max_connections, ..
            }) => {
                assert_eq!(max_connections, 2, "busy frame must echo the cap");
                rejected_connects += 1;
            }
            Ok(_) => panic!("overflow connect {i} was admitted past the cap"),
            Err(e) => panic!("overflow connect {i} was not rejected busy: {e}"),
        }
    }
    // A freed slot must become connectable again: drop one held session
    // and poll until the server notices the EOF (its read-poll interval
    // is 150 ms) and admits a fresh client. Each poll that still bounces
    // is one more busy rejection on the server's book.
    drop(held_a);
    let deadline = Instant::now() + Duration::from_secs(5);
    let recycled = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(ClientError::Busy { .. }) if Instant::now() < deadline => {
                rejected_connects += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("freed slot never became connectable: {e}"),
        }
    };
    drop(recycled);
    drop(held_b);
    // Let the dropped sessions drain before shutdown, so the shutdown
    // handshake's own connect is not busy-bounced off the cap.
    let deadline = Instant::now() + SETTLE;
    while handle.state().active_sessions() > 0 {
        assert!(Instant::now() < deadline, "sessions never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    let tally = settle(&handle);
    handle.shutdown_and_join().expect("shutdown");
    (rejected_connects, tally)
}

/// How an attempt to hold a streaming query in flight resolved.
enum Started {
    /// First frame was a `core`: the query is mid-stream right now.
    Streaming(Client),
    /// First frame was `done`: the query finished before we could act
    /// (it was answered; the attempt just retries).
    Finished,
    /// First frame was a `busy` error: admission control bounced the
    /// query (possible when the previous attempt's in-flight slot has
    /// not been released yet — one more exactly-accounted rejection).
    Rejected,
}

/// Sends `spec` as a raw enumerate and blocks until its first frame, so
/// the caller knows how the query stands before acting on it.
fn start_streaming(addr: std::net::SocketAddr, spec: QuerySpec) -> Started {
    let mut client = Client::connect(addr).expect("connect");
    client
        .send(&Request::Enumerate {
            id: "q1".to_string(),
            spec,
        })
        .expect("send");
    match client.read_frame().expect("first frame") {
        Frame::Core { .. } => Started::Streaming(client),
        Frame::Done { .. } => Started::Finished,
        Frame::Error {
            code: ErrorCode::Busy,
            ..
        } => Started::Rejected,
        other => panic!("unexpected first frame: {other:?}"),
    }
}

/// Phase 3: client hangup mid-stream. Returns `(issued, tally)`.
fn phase_abort() -> (u64, Tally) {
    let handle = Server::bind(ServerConfig::default()).expect("bind").spawn();
    let addr = handle.addr();
    let mut issued = 0u64;
    // Warm the component cache so every attempt goes straight to the
    // streaming sweep instead of repaying preprocessing.
    let mut warm = Client::connect(addr).expect("connect");
    warm.enumerate(heavy_spec()).expect("warm query");
    issued += 1;
    for _ in 0..MAX_ATTEMPTS {
        let started = start_streaming(addr, heavy_spec());
        issued += 1;
        match started {
            Started::Streaming(client) => {
                // Hang up mid-stream: the abort probe (or the next frame
                // write) must notice, cancel the sweep, and book a
                // client abort.
                drop(client);
                if settle(&handle).client_aborts > 0 {
                    break;
                }
            }
            Started::Finished => {} // done beat the hangup; answered
            Started::Rejected => panic!("admission rejection on an unlimited server"),
        }
    }
    let tally = settle(&handle);
    assert!(
        tally.client_aborts > 0,
        "no mid-stream hangup was classified as a client abort in {MAX_ATTEMPTS} attempts: {tally:?}"
    );
    handle.shutdown_and_join().expect("shutdown");
    (issued, tally)
}

/// Phase 4: per-dataset admission limit. Returns `(issued, tally)`.
fn phase_admission() -> (u64, Tally) {
    let config = ServerConfig {
        max_queries_per_dataset: Some(1),
        ..ServerConfig::default()
    };
    let handle = Server::bind(config).expect("bind").spawn();
    let addr = handle.addr();
    let mut issued = 0u64;
    let mut warm = Client::connect(addr).expect("connect");
    warm.enumerate(heavy_spec()).expect("warm query");
    issued += 1;
    for _ in 0..MAX_ATTEMPTS {
        let mut rejected = false;
        match start_streaming(addr, heavy_spec()) {
            Started::Streaming(mut holder) => {
                issued += 1;
                // The holder's admission slot is live until its `done`
                // goes out; a second query on the same dataset must
                // bounce with a `busy` error on a still-usable
                // connection.
                let mut contender = Client::connect(addr).expect("connect");
                issued += 1;
                match contender.enumerate(heavy_spec()) {
                    Err(ClientError::Server {
                        code: ErrorCode::Busy,
                        ..
                    }) => rejected = true,
                    Ok(_) => {} // holder finished first; answered is fine
                    Err(e) => panic!("contender failed unexpectedly: {e}"),
                }
                // Drain the holder to its `done` so the attempt is
                // answered.
                loop {
                    match holder.read_frame().expect("drain holder") {
                        Frame::Done { .. } => break,
                        Frame::Core { .. } => {}
                        other => panic!("unexpected frame draining holder: {other:?}"),
                    }
                }
            }
            Started::Finished => issued += 1, // answered; retry
            Started::Rejected => {
                // The previous holder's slot was still live: this *is*
                // an admission rejection, booked exactly.
                issued += 1;
                rejected = true;
            }
        }
        if rejected {
            break;
        }
    }
    let tally = settle(&handle);
    assert!(
        tally.admission_rejections > 0,
        "no concurrent same-dataset query was admission-rejected in {MAX_ATTEMPTS} attempts: {tally:?}"
    );
    handle.shutdown_and_join().expect("shutdown");
    (issued, tally)
}

fn render(
    calib_ms: f64,
    clients: usize,
    queries: usize,
    load: &LoadResult,
    total: &Tally,
    issued: u64,
) -> String {
    format!(
        "{{\n  \"schema\": 1,\n  \"calib_ms\": {calib_ms:.3},\n  \"clients\": {clients},\n  \
         \"queries_per_client\": {queries},\n  \"throughput_qps\": {qps:.3},\n  \
         \"qps_normalized\": {norm:.3},\n  \"p50_us\": {p50},\n  \"p99_us\": {p99},\n  \
         \"issued\": {issued},\n  \"answered\": {answered},\n  \
         \"busy_rejections\": {busy},\n  \"admission_rejections\": {adm},\n  \
         \"client_aborts\": {aborts},\n  \"query_errors\": {errors}\n}}\n",
        qps = load.qps,
        norm = load.qps * calib_ms,
        p50 = load.p50_us,
        p99 = load.p99_us,
        answered = total.answered,
        busy = total.busy_rejections,
        adm = total.admission_rejections,
        aborts = total.client_aborts,
        errors = total.query_errors,
    )
}

/// Minimal scanner for the flat schema this binary itself writes (same
/// convention as `bench_smoke`): finds `"key": <number>` after `from`.
fn scan_num(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let off = at + (text[at..].len() - rest.len());
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(|v| (v, off + end))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "check" || mode == "write" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: bench_load <check|write> <baseline.json>");
            std::process::exit(2);
        }
    };
    let clients = env_num("BENCH_LOAD_CLIENTS", DEFAULT_CLIENTS).max(1);
    let queries = env_num("BENCH_LOAD_QUERIES", DEFAULT_QUERIES).max(1);

    let calib_ms = calibration_ms();
    println!("calibration: {calib_ms:.3} ms");

    let load = phase_load(clients, queries);
    println!(
        "load: {} clients x {} queries  {:.2} s wall  {:.1} q/s  p50/p99 {}/{} us  {:?}",
        clients, queries, load.wall_s, load.qps, load.p50_us, load.p99_us, load.tally
    );
    let (rejected_connects, cap_tally) = phase_cap();
    println!("cap: {rejected_connects} busy-rejected connects  {cap_tally:?}");
    let (abort_issued, abort_tally) = phase_abort();
    println!("abort: {abort_issued} issued  {abort_tally:?}");
    let (adm_issued, adm_tally) = phase_admission();
    println!("admission: {adm_issued} issued  {adm_tally:?}");

    // The exact accounting gate, across every server this run started.
    let issued = load.issued + abort_issued + adm_issued;
    let total = load.tally.add(&cap_tally).add(&abort_tally).add(&adm_tally);
    assert_eq!(
        total.queries, issued,
        "server books must record every issued query exactly once"
    );
    assert_eq!(
        issued,
        total.answered + total.admission_rejections + total.client_aborts,
        "every issued query must be answered, rejected, or aborted: {total:?}"
    );
    assert_eq!(total.query_errors, 0, "no query may error: {total:?}");
    assert_eq!(
        total.busy_rejections, rejected_connects,
        "every busy-rejected connect must be booked exactly once"
    );
    println!(
        "accounting: issued {issued} = answered {} + rejected {} + aborted {}  \
         (busy connects {}; query errors 0)  ok",
        total.answered, total.admission_rejections, total.client_aborts, total.busy_rejections
    );

    if mode == "write" {
        let text = render(calib_ms, clients, queries, &load, &total, issued);
        std::fs::write(path, text).expect("write baseline");
        println!("baseline written to {path}");
        return;
    }

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            println!("no baseline at {path}; gate inactive (commit one with `bench_load write`)");
            return;
        }
    };
    let parse = |key| scan_num(&text, key, 0).map(|(v, _)| v);
    let (Some(base_calib), Some(base_clients), Some(base_queries), Some(base_qps)) = (
        parse("calib_ms"),
        parse("clients"),
        parse("queries_per_client"),
        parse("throughput_qps"),
    ) else {
        eprintln!("baseline {path} is unreadable");
        std::process::exit(2);
    };
    if base_clients != clients as f64 || base_queries != queries as f64 {
        println!(
            "baseline recorded {base_clients}x{base_queries}, this run is {clients}x{queries}; \
             throughput gate skipped (accounting gate already passed)"
        );
        return;
    }
    let max_pct: f64 = env_num("BENCH_LOAD_MAX_REGRESSION_PCT", DEFAULT_MAX_REGRESSION_PCT);
    // Normalized throughput: queries per calibration-unit of CPU. Higher
    // is better, so the gate is a floor.
    let now = load.qps * calib_ms;
    let then = base_qps * base_calib;
    let delta_pct = (now / then - 1.0) * 100.0;
    let floor = then * (1.0 - max_pct / 100.0);
    let verdict = if now < floor { "REGRESSION" } else { "ok" };
    println!(
        "throughput normalized {now:.1} vs baseline {then:.1}  ({delta_pct:+.1}%, gate -{max_pct}%)  {verdict}"
    );
    if now < floor {
        eprintln!("bench-load gate failed: normalized throughput regressed > {max_pct}%");
        std::process::exit(1);
    }
}
