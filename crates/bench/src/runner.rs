//! Timing runner with the paper's INF convention.
//!
//! The paper sets an algorithm's cost to INF when it exceeds one hour; we
//! emulate that with a search-node budget plus wall-clock measurement, so
//! pathological configurations (NaiveEnum on anything real) terminate.

use std::time::{Duration, Instant};

/// Outcome of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOutcome {
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Whether the run finished inside the budget.
    pub completed: bool,
}

impl MeasureOutcome {
    /// Seconds, or `f64::INFINITY` when the budget was exceeded (the
    /// paper's INF bars).
    pub fn secs_or_inf(&self) -> f64 {
        if self.completed {
            self.elapsed.as_secs_f64()
        } else {
            f64::INFINITY
        }
    }

    /// Render like the paper's plots: seconds with 3 significant digits or
    /// "INF".
    pub fn display(&self) -> String {
        if self.completed {
            format_secs(self.elapsed.as_secs_f64())
        } else {
            "INF".to_string()
        }
    }
}

/// Formats seconds compactly (`1.23e-3` style for small values).
pub fn format_secs(s: f64) -> String {
    if s == f64::INFINITY {
        "INF".into()
    } else if s >= 0.1 {
        format!("{s:.2}")
    } else {
        format!("{s:.2e}")
    }
}

/// Times `f`; `completed` is the boolean the closure returns (wire it to
/// the algorithm's own `completed` flag).
pub fn measure(f: impl FnOnce() -> bool) -> MeasureOutcome {
    let t = Instant::now();
    let completed = f();
    MeasureOutcome {
        elapsed: t.elapsed(),
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_flags() {
        let ok = measure(|| true);
        assert!(ok.completed);
        assert!(ok.secs_or_inf() < 1.0);
        let bad = measure(|| false);
        assert_eq!(bad.secs_or_inf(), f64::INFINITY);
        assert_eq!(bad.display(), "INF");
    }

    #[test]
    fn formatting() {
        assert_eq!(format_secs(1.234), "1.23");
        assert_eq!(format_secs(f64::INFINITY), "INF");
        assert!(format_secs(0.000123).contains('e'));
    }
}
