//! Minimal fixed-width table printer for the repro binary.

/// A printable table: header + rows.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string (also what `Display` prints).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("333"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
