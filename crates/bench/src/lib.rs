//! # kr-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 8) on the synthetic preset datasets. The `repro`
//! binary prints the same rows/series the paper reports; Criterion benches
//! under `benches/` cover the same code paths with statistical rigor.
//!
//! The paper's absolute numbers come from million-vertex SNAP graphs on a
//! Xeon with a one-hour INF cutoff; the presets are ~500x smaller, so we
//! compare *shapes*: which algorithm/bound/order wins, by what factor, and
//! how costs move with `k` and `r`. `EXPERIMENTS.md` records the
//! paper-vs-measured correspondence per figure.

pub mod datasets;
pub mod experiments;
pub mod runner;
pub mod table;

pub use datasets::{BenchDataset, RAxis};
pub use runner::{measure, MeasureOutcome};
pub use table::Table;
