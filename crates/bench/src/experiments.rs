//! One function per table/figure of the paper's evaluation (Section 8).
//!
//! Each experiment returns printable [`Table`]s with the same rows/series
//! the paper plots. Axes are rescaled to the synthetic presets (documented
//! per experiment and in `EXPERIMENTS.md`): the geo `r` axis runs in
//! low-kilometer neighborhood ranges instead of 10–500 km because the
//! preset cities are ~3 km wide, and `k` sweeps run 3–7 instead of 5–18
//! because preset sub-groups are ~16 strong.

use crate::datasets::BenchDataset;
use crate::runner::measure;
use crate::table::Table;
use kr_core::{
    clique_based_maximal_budgeted, enumerate_maximal, find_maximum, AlgoConfig, BoundKind,
    BranchPolicy, CheckOrder, SearchOrder,
};
use kr_datagen::DatasetPreset;

/// Shared experiment options.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Dataset scale factor (1.0 = preset defaults).
    pub scale: f64,
    /// Per-run wall-clock budget in ms (exceeded => INF, like the paper's
    /// one-hour cutoff).
    pub time_limit_ms: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 1.0,
            time_limit_ms: 10_000,
        }
    }
}

/// All experiment ids, in paper order, plus two extensions (`x*`) that go
/// beyond the paper's figures: `xscale` (cost vs dataset size) and
/// `xbounds` (upper-bound tightness at search roots).
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table3", "fig5", "fig6", "fig7a", "fig7b", "fig8a", "fig8b", "fig9a", "fig9b", "fig10a",
    "fig10b", "fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f", "fig12a", "fig12b",
    "fig13a", "fig13b", "fig14a", "fig14b", "xscale", "xbounds",
];

/// Runs an experiment by id.
///
/// # Panics
/// Panics on an unknown id (the `repro` binary validates first).
pub fn run_experiment(id: &str, opts: &ExpOptions) -> Vec<Table> {
    match id {
        "table3" => table3(opts),
        "fig5" => fig5(opts),
        "fig6" => fig6(opts),
        "fig7a" => fig7a(opts),
        "fig7b" => fig7b(opts),
        "fig8a" => fig8a(opts),
        "fig8b" => fig8b(opts),
        "fig9a" => fig9a(opts),
        "fig9b" => fig9b(opts),
        "fig10a" => fig10a(opts),
        "fig10b" => fig10b(opts),
        "fig11a" => fig11a(opts),
        "fig11b" => fig11b(opts),
        "fig11c" => fig11c(opts),
        "fig11d" => fig11d(opts),
        "fig11e" => fig11e(opts),
        "fig11f" => fig11f(opts),
        "fig12a" => fig12a(opts),
        "fig12b" => fig12b(opts),
        "fig13a" => fig13a(opts),
        "fig13b" => fig13b(opts),
        "fig14a" => fig14a(opts),
        "fig14b" => fig14b(opts),
        "xscale" => xscale(opts),
        "xbounds" => xbounds(opts),
        other => panic!("unknown experiment id {other:?}"),
    }
}

fn limited(cfg: AlgoConfig, opts: &ExpOptions) -> AlgoConfig {
    cfg.with_time_limit_ms(opts.time_limit_ms)
}

/// Times one enumeration run; INF when the budget is exceeded.
fn time_enum(ds: &BenchDataset, k: u32, r: f64, cfg: &AlgoConfig, opts: &ExpOptions) -> String {
    let p = ds.instance(k, r);
    let cfg = limited(cfg.clone(), opts);
    let out = measure(|| enumerate_maximal(&p, &cfg).completed);
    out.display()
}

/// Times one maximum run.
fn time_max(ds: &BenchDataset, k: u32, r: f64, cfg: &AlgoConfig, opts: &ExpOptions) -> String {
    let p = ds.instance(k, r);
    let cfg = limited(cfg.clone(), opts);
    let out = measure(|| find_maximum(&p, &cfg).completed);
    out.display()
}

// --------------------------------------------------------------------
// Table 3: dataset statistics.
// --------------------------------------------------------------------

fn table3(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new(
        "Table 3: statistics of datasets (synthetic presets)",
        &["Dataset", "Nodes", "Edges", "d_avg", "d_max"],
    );
    for preset in DatasetPreset::all() {
        let d = preset.generate_scaled(opts.scale);
        let (n, m, da, dm) = d.statistics();
        t.row(vec![
            d.name.clone(),
            n.to_string(),
            m.to_string(),
            format!("{da:.1}"),
            dm.to_string(),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------------
// Figures 5 & 6: case studies.
// --------------------------------------------------------------------

/// DBLP case study: inside one k-core, the similarity constraint splits
/// two research groups that share boundary authors; the maximum core is a
/// project-team-like cluster.
fn fig5(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let k = 5;
    let r = 5.0; // top-5 permille
    let p = ds.instance(k, r);
    let res = enumerate_maximal(&p, &limited(AlgoConfig::adv_enum(), opts));
    let mut t = Table::new(
        format!(
            "Figure 5(a): overlapping maximal (k,r)-cores, dblp-like, k={k}, r=top {r} permille"
        ),
        &["Core A", "Core B", "Shared", "A subgroups", "B subgroups"],
    );
    // Report overlapping core pairs (the Steven P. Wilder effect).
    let subgroups = |core: &kr_core::KrCore| {
        let mut sg: Vec<u32> = core
            .vertices
            .iter()
            .map(|&v| ds.data.subgroup[v as usize])
            .collect();
        sg.sort_unstable();
        sg.dedup();
        format!("{sg:?}")
    };
    let mut reported = 0;
    'outer: for i in 0..res.cores.len() {
        for j in (i + 1)..res.cores.len() {
            let a = &res.cores[i];
            let b = &res.cores[j];
            let shared = a
                .vertices
                .iter()
                .filter(|v| b.vertices.binary_search(v).is_ok())
                .count();
            if shared > 0 {
                t.row(vec![
                    format!("{} authors", a.len()),
                    format!("{} authors", b.len()),
                    shared.to_string(),
                    subgroups(a),
                    subgroups(b),
                ]);
                reported += 1;
                if reported >= 8 {
                    break 'outer;
                }
            }
        }
    }
    let max = find_maximum(&p, &limited(AlgoConfig::adv_max(), opts));
    let mut t2 = Table::new(
        "Figure 5(b): maximum (k,r)-core (project-team analog)",
        &["Size", "Subgroups", "Communities"],
    );
    if let Some(core) = max.core {
        let mut sg: Vec<u32> = core
            .vertices
            .iter()
            .map(|&v| ds.data.subgroup[v as usize])
            .collect();
        sg.sort_unstable();
        sg.dedup();
        let mut cm: Vec<u32> = core
            .vertices
            .iter()
            .map(|&v| ds.data.community[v as usize])
            .collect();
        cm.sort_unstable();
        cm.dedup();
        t2.row(vec![
            core.len().to_string(),
            format!("{sg:?}"),
            format!("{cm:?}"),
        ]);
    }
    vec![t, t2]
}

/// Gowalla case study: one k-core splits into geo groups; with the hub
/// city, the maximum core gravitates to the headquarters.
fn fig6(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let k = 4;
    let r = 8.0; // km
    let p = ds.instance(k, r);
    let res = enumerate_maximal(&p, &limited(AlgoConfig::adv_enum(), opts));
    let pts = match &ds.data.attributes {
        kr_similarity::AttributeTable::Points(p) => p.clone(),
        _ => unreachable!("gowalla preset is geo"),
    };
    let mut t = Table::new(
        format!("Figure 6: maximal (k,r)-cores as geo groups, gowalla-like, k={k}, r={r} km"),
        &[
            "Core size",
            "Centroid x (km)",
            "Centroid y (km)",
            "Spread (km)",
        ],
    );
    let mut cores = res.cores.clone();
    cores.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for core in cores.iter().take(10) {
        let (mut cx, mut cy) = (0.0, 0.0);
        for &v in &core.vertices {
            cx += pts[v as usize].0;
            cy += pts[v as usize].1;
        }
        let n = core.len() as f64;
        cx /= n;
        cy /= n;
        let spread = core
            .vertices
            .iter()
            .map(|&v| ((pts[v as usize].0 - cx).powi(2) + (pts[v as usize].1 - cy).powi(2)).sqrt())
            .fold(0.0f64, f64::max);
        t.row(vec![
            core.len().to_string(),
            format!("{cx:.0}"),
            format!("{cy:.0}"),
            format!("{spread:.1}"),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------------
// Figure 7: (k,r)-core statistics.
// --------------------------------------------------------------------

fn core_stats_sweep(
    title: String,
    ds: &BenchDataset,
    points: &[(u32, f64)],
    axis_label: &str,
    opts: &ExpOptions,
) -> Table {
    let mut t = Table::new(title, &[axis_label, "#(k,r)-cores", "Max size", "Avg size"]);
    for &(k, r) in points {
        let p = ds.instance(k, r);
        let res = enumerate_maximal(&p, &limited(AlgoConfig::adv_enum(), opts));
        let (count, max, avg) = res.size_summary();
        let label = if axis_label.starts_with('k') {
            k.to_string()
        } else {
            format!("{r}")
        };
        t.row(vec![
            label,
            count.to_string(),
            max.to_string(),
            format!("{avg:.1}"),
        ]);
    }
    t
}

fn fig7a(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let points: Vec<(u32, f64)> = ds.default_r_sweep().iter().map(|&r| (4, r)).collect();
    vec![core_stats_sweep(
        format!(
            "Figure 7(a): core statistics vs r, gowalla-like, k=4 ({})",
            ds.r_unit()
        ),
        &ds,
        &points,
        "r",
        opts,
    )]
}

fn fig7b(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let points: Vec<(u32, f64)> = [3u32, 4, 5, 6, 7].iter().map(|&k| (k, 3.0)).collect();
    vec![core_stats_sweep(
        "Figure 7(b): core statistics vs k, dblp-like, r=top 3 permille".to_string(),
        &ds,
        &points,
        "k",
        opts,
    )]
}

// --------------------------------------------------------------------
// Figure 8: Clique+ vs BasicEnum.
// --------------------------------------------------------------------

fn clique_vs_basic(
    title: String,
    ds: &BenchDataset,
    points: &[(u32, f64)],
    axis_is_k: bool,
    opts: &ExpOptions,
) -> Table {
    let mut t = Table::new(
        title,
        &[if axis_is_k { "k" } else { "r" }, "Clique+", "BasicEnum"],
    );
    for &(k, r) in points {
        let p = ds.instance(k, r);
        let cq = measure(|| clique_based_maximal_budgeted(&p, Some(opts.time_limit_ms)).1);
        let be = time_enum(ds, k, r, &AlgoConfig::basic_enum(), opts);
        t.row(vec![
            if axis_is_k {
                k.to_string()
            } else {
                format!("{r}")
            },
            cq.display(),
            be,
        ]);
    }
    t
}

fn fig8a(opts: &ExpOptions) -> Vec<Table> {
    // 2.5x scale: the clique-based method's exponential blow-up needs
    // components large enough for the similarity graph to get interesting.
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale * 2.5);
    let points: Vec<(u32, f64)> = [2.0, 6.0, 10.0, 14.0, 18.0]
        .iter()
        .map(|&r| (4, r))
        .collect();
    vec![clique_vs_basic(
        "Figure 8(a): Clique+ vs BasicEnum vs r, gowalla-like x2.5, k=4 (km)".into(),
        &ds,
        &points,
        false,
        opts,
    )]
}

fn fig8b(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale * 2.5);
    let points: Vec<(u32, f64)> = [7u32, 6, 5, 4, 3].iter().map(|&k| (k, 10.0)).collect();
    vec![clique_vs_basic(
        "Figure 8(b): Clique+ vs BasicEnum vs k, dblp-like x2.5, r=top 10 permille".into(),
        &ds,
        &points,
        true,
        opts,
    )]
}

// --------------------------------------------------------------------
// Figure 9: pruning-technique ablation.
// --------------------------------------------------------------------

fn enum_ablation(
    title: String,
    ds: &BenchDataset,
    points: &[(u32, f64)],
    axis_is_k: bool,
    opts: &ExpOptions,
) -> Table {
    let configs = [
        ("BasicEnum", AlgoConfig::basic_enum()),
        ("BE+CR", AlgoConfig::be_cr()),
        ("BE+CR+ET", AlgoConfig::be_cr_et()),
        ("AdvEnum", AlgoConfig::adv_enum()),
    ];
    let mut t = Table::new(
        title,
        &[
            if axis_is_k { "k" } else { "r" },
            "BasicEnum",
            "BE+CR",
            "BE+CR+ET",
            "AdvEnum",
        ],
    );
    for &(k, r) in points {
        let mut row = vec![if axis_is_k {
            k.to_string()
        } else {
            format!("{r}")
        }];
        for (_, cfg) in &configs {
            row.push(time_enum(ds, k, r, cfg, opts));
        }
        t.row(row);
    }
    t
}

fn fig9a(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let points: Vec<(u32, f64)> = ds.default_r_sweep().iter().map(|&r| (4, r)).collect();
    vec![enum_ablation(
        "Figure 9(a): pruning ablation vs r, gowalla-like, k=4 (km)".into(),
        &ds,
        &points,
        false,
        opts,
    )]
}

fn fig9b(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let points: Vec<(u32, f64)> = [3u32, 4, 5, 6, 7].iter().map(|&k| (k, 10.0)).collect();
    vec![enum_ablation(
        "Figure 9(b): pruning ablation vs k, dblp-like, r=top 10 permille".into(),
        &ds,
        &points,
        true,
        opts,
    )]
}

// --------------------------------------------------------------------
// Figure 10: upper bounds.
// --------------------------------------------------------------------

fn bound_ablation(
    title: String,
    ds: &BenchDataset,
    points: &[(u32, f64)],
    axis_is_k: bool,
    opts: &ExpOptions,
) -> Table {
    let configs = [
        (
            "|M|+|C|",
            AlgoConfig::adv_max().with_bound(BoundKind::Naive),
        ),
        (
            "Color+Kcore",
            AlgoConfig::adv_max().with_bound(BoundKind::ColorKCore),
        ),
        (
            "DoubleKcore",
            AlgoConfig::adv_max().with_bound(BoundKind::DoubleKCore),
        ),
    ];
    let mut t = Table::new(
        title,
        &[
            if axis_is_k { "k" } else { "r" },
            "|M|+|C|",
            "Color+Kcore",
            "DoubleKcore",
        ],
    );
    for &(k, r) in points {
        let mut row = vec![if axis_is_k {
            k.to_string()
        } else {
            format!("{r}")
        }];
        for (_, cfg) in &configs {
            row.push(time_max(ds, k, r, cfg, opts));
        }
        t.row(row);
    }
    t
}

fn fig10a(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let points: Vec<(u32, f64)> = [3.0, 5.0, 8.0, 12.0, 15.0]
        .iter()
        .map(|&r| (4, r))
        .collect();
    vec![bound_ablation(
        "Figure 10(a): size upper bounds vs r, dblp-like, k=4 (top permille)".into(),
        &ds,
        &points,
        false,
        opts,
    )]
}

fn fig10b(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let points: Vec<(u32, f64)> = [3u32, 4, 5, 6, 7].iter().map(|&k| (k, 10.0)).collect();
    vec![bound_ablation(
        "Figure 10(b): size upper bounds vs k, dblp-like, r=top 10 permille".into(),
        &ds,
        &points,
        true,
        opts,
    )]
}

// --------------------------------------------------------------------
// Figure 11: search orders.
// --------------------------------------------------------------------

fn fig11a(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 11(a): lambda tuning for AdvMax",
        &[
            "lambda",
            "dblp-like k=4 r=10permille",
            "gowalla-like k=4 r=12km",
        ],
    );
    let dblp = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let gow = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    for lambda in [2.0, 4.0, 5.0, 6.0, 8.0, 10.0] {
        let cfg = AlgoConfig::adv_max().with_lambda(lambda);
        t.row(vec![
            format!("{lambda}"),
            time_max(&dblp, 4, 10.0, &cfg, opts),
            time_max(&gow, 4, 12.0, &cfg, opts),
        ]);
    }
    vec![t]
}

fn fig11b(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let mut t = Table::new(
        "Figure 11(b): branch policies for AdvMax vs k, dblp-like, r=top 10 permille",
        &["k", "Expand", "Shrink", "AdvMax(adaptive)"],
    );
    for k in [3u32, 4, 5, 6, 7] {
        t.row(vec![
            k.to_string(),
            time_max(
                &ds,
                k,
                10.0,
                &AlgoConfig::adv_max().with_branch(BranchPolicy::AlwaysExpand),
                opts,
            ),
            time_max(
                &ds,
                k,
                10.0,
                &AlgoConfig::adv_max().with_branch(BranchPolicy::AlwaysShrink),
                opts,
            ),
            time_max(&ds, k, 10.0, &AlgoConfig::adv_max(), opts),
        ]);
    }
    vec![t]
}

fn fig11c(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let orders = [
        ("Random", SearchOrder::Random),
        ("Degree", SearchOrder::Degree),
        ("D2", SearchOrder::Delta2),
        ("D1", SearchOrder::Delta1),
        ("D1-then-D2", SearchOrder::Delta1ThenDelta2),
        ("lD1-D2", SearchOrder::LambdaDelta),
    ];
    let mut header = vec!["k"];
    header.extend(orders.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Figure 11(c): vertex orders for AdvMax vs k, dblp-like, r=top 10 permille",
        &header,
    );
    for k in [3u32, 4, 5, 6, 7] {
        let mut row = vec![k.to_string()];
        for (_, o) in &orders {
            row.push(time_max(
                &ds,
                k,
                10.0,
                &AlgoConfig::adv_max().with_order(*o),
                opts,
            ));
        }
        t.row(row);
    }
    vec![t]
}

fn fig11d(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let mut t = Table::new(
        "Figure 11(d): orders for AdvEnum vs r, gowalla-like, k=4 (km)",
        &["r", "Random", "Degree", "D1-then-D2"],
    );
    for r in [2.0, 4.0, 6.0, 8.0, 10.0] {
        t.row(vec![
            format!("{r}"),
            time_enum(
                &ds,
                4,
                r,
                &AlgoConfig::adv_enum().with_order(SearchOrder::Random),
                opts,
            ),
            time_enum(
                &ds,
                4,
                r,
                &AlgoConfig::adv_enum().with_order(SearchOrder::Degree),
                opts,
            ),
            time_enum(&ds, 4, r, &AlgoConfig::adv_enum(), opts),
        ]);
    }
    vec![t]
}

fn fig11e(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let mut t = Table::new(
        "Figure 11(e): orders for AdvEnum vs r, gowalla-like, k=4 (km)",
        &["r", "D1", "lD1-D2", "D1-then-D2"],
    );
    for r in ds.default_r_sweep() {
        t.row(vec![
            format!("{r}"),
            time_enum(
                &ds,
                4,
                r,
                &AlgoConfig::adv_enum().with_order(SearchOrder::Delta1),
                opts,
            ),
            time_enum(
                &ds,
                4,
                r,
                &AlgoConfig::adv_enum().with_order(SearchOrder::LambdaDelta),
                opts,
            ),
            time_enum(&ds, 4, r, &AlgoConfig::adv_enum(), opts),
        ]);
    }
    vec![t]
}

fn fig11f(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let mut t = Table::new(
        "Figure 11(f): orders for CheckMaximal vs r, gowalla-like, k=4 (km)",
        &["r", "lD1-D2", "D1-then-D2", "Degree"],
    );
    for r in ds.default_r_sweep() {
        t.row(vec![
            format!("{r}"),
            time_enum(
                &ds,
                4,
                r,
                &AlgoConfig::adv_enum().with_check_order(CheckOrder::LambdaDelta),
                opts,
            ),
            time_enum(
                &ds,
                4,
                r,
                &AlgoConfig::adv_enum().with_check_order(CheckOrder::Delta1ThenDelta2),
                opts,
            ),
            time_enum(
                &ds,
                4,
                r,
                &AlgoConfig::adv_enum().with_check_order(CheckOrder::Degree),
                opts,
            ),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------------
// Figure 12: all datasets.
// --------------------------------------------------------------------

/// Per-dataset `(k, r)` used by Figures 12(a)/(b); the paper fixes k = 10
/// and one r per dataset — we use the preset-scale equivalents.
fn fig12_points(scale: f64) -> Vec<(BenchDataset, u32, f64)> {
    vec![
        (
            BenchDataset::new(DatasetPreset::BrightkiteLike, scale),
            4,
            10.0,
        ),
        (BenchDataset::new(DatasetPreset::GowallaLike, scale), 4, 8.0),
        (BenchDataset::new(DatasetPreset::DblpLike, scale), 4, 3.0),
        (BenchDataset::new(DatasetPreset::PokecLike, scale), 4, 5.0),
    ]
}

fn fig12a(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 12(a): enumeration on four datasets (k=4)",
        &["Dataset", "AdvEnum-O", "AdvEnum-P", "AdvEnum"],
    );
    for (ds, k, r) in fig12_points(opts.scale) {
        t.row(vec![
            ds.data.name.clone(),
            time_enum(&ds, k, r, &AlgoConfig::adv_enum_no_order(), opts),
            time_enum(&ds, k, r, &AlgoConfig::adv_enum_no_pruning(), opts),
            time_enum(&ds, k, r, &AlgoConfig::adv_enum(), opts),
        ]);
    }
    vec![t]
}

fn fig12b(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 12(b): maximum on four datasets (k=4)",
        &["Dataset", "AdvMax-O", "AdvMax-UB", "AdvMax"],
    );
    for (ds, k, r) in fig12_points(opts.scale) {
        t.row(vec![
            ds.data.name.clone(),
            time_max(&ds, k, r, &AlgoConfig::adv_max_no_order(), opts),
            time_max(&ds, k, r, &AlgoConfig::adv_max_no_bound(), opts),
            time_max(&ds, k, r, &AlgoConfig::adv_max(), opts),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------------
// Figures 13 & 14: effect of k and r.
// --------------------------------------------------------------------

fn fig13a(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let mut t = Table::new(
        "Figure 13(a): enumeration vs k, gowalla-like, r=10 km",
        &["k", "AdvEnum-O", "AdvEnum-P", "AdvEnum"],
    );
    for k in [3u32, 4, 5, 6, 7] {
        t.row(vec![
            k.to_string(),
            time_enum(&ds, k, 10.0, &AlgoConfig::adv_enum_no_order(), opts),
            time_enum(&ds, k, 10.0, &AlgoConfig::adv_enum_no_pruning(), opts),
            time_enum(&ds, k, 10.0, &AlgoConfig::adv_enum(), opts),
        ]);
    }
    vec![t]
}

fn fig13b(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let mut t = Table::new(
        "Figure 13(b): enumeration vs r, dblp-like, k=5 (top permille)",
        &["r", "AdvEnum-O", "AdvEnum-P", "AdvEnum"],
    );
    for r in [1.0, 3.0, 5.0, 10.0, 15.0] {
        t.row(vec![
            format!("{r}"),
            time_enum(&ds, 5, r, &AlgoConfig::adv_enum_no_order(), opts),
            time_enum(&ds, 5, r, &AlgoConfig::adv_enum_no_pruning(), opts),
            time_enum(&ds, 5, r, &AlgoConfig::adv_enum(), opts),
        ]);
    }
    vec![t]
}

fn fig14a(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale);
    let mut t = Table::new(
        "Figure 14(a): maximum vs k, gowalla-like, r=10 km",
        &["k", "AdvMax-O", "AdvMax-UB", "AdvMax"],
    );
    for k in [3u32, 4, 5, 6, 7] {
        t.row(vec![
            k.to_string(),
            time_max(&ds, k, 10.0, &AlgoConfig::adv_max_no_order(), opts),
            time_max(&ds, k, 10.0, &AlgoConfig::adv_max_no_bound(), opts),
            time_max(&ds, k, 10.0, &AlgoConfig::adv_max(), opts),
        ]);
    }
    vec![t]
}

fn fig14b(opts: &ExpOptions) -> Vec<Table> {
    let ds = BenchDataset::new(DatasetPreset::DblpLike, opts.scale);
    let mut t = Table::new(
        "Figure 14(b): maximum vs r, dblp-like, k=5 (top permille)",
        &["r", "AdvMax-O", "AdvMax-UB", "AdvMax"],
    );
    for r in [1.0, 3.0, 5.0, 10.0, 15.0] {
        t.row(vec![
            format!("{r}"),
            time_max(&ds, 5, r, &AlgoConfig::adv_max_no_order(), opts),
            time_max(&ds, 5, r, &AlgoConfig::adv_max_no_bound(), opts),
            time_max(&ds, 5, r, &AlgoConfig::adv_max(), opts),
        ]);
    }
    vec![t]
}

// --------------------------------------------------------------------
// Extensions beyond the paper.
// --------------------------------------------------------------------

/// Extension: wall-clock scaling of the advanced algorithms with dataset
/// size (the paper evaluates one size per dataset; this sweeps the
/// generator scale on fixed (k, r)).
fn xscale(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new(
        "Extension: AdvEnum / AdvMax scaling vs dataset size (gowalla-like, k=4, r=10 km)",
        &["scale", "vertices", "AdvEnum", "AdvMax"],
    );
    for mult in [0.5, 1.0, 2.0, 4.0] {
        let ds = BenchDataset::new(DatasetPreset::GowallaLike, opts.scale * mult);
        t.row(vec![
            format!("{mult}x"),
            ds.data.graph.num_vertices().to_string(),
            time_enum(&ds, 4, 10.0, &AlgoConfig::adv_enum(), opts),
            time_max(&ds, 4, 10.0, &AlgoConfig::adv_max(), opts),
        ]);
    }
    vec![t]
}

/// Extension: tightness of each size upper bound at component roots,
/// against the true maximum core size (the mechanism behind Figure 10).
fn xbounds(opts: &ExpOptions) -> Vec<Table> {
    use kr_core::bounds::size_upper_bound;
    use kr_core::search::SearchState;
    let mut t = Table::new(
        "Extension: root upper-bound tightness (component hosting the maximum core)",
        &[
            "Dataset",
            "n",
            "true max",
            "|M|+|C|",
            "Color",
            "KCore",
            "ColorKcore",
            "DoubleKcore",
        ],
    );
    for (ds, k, r) in fig12_points(opts.scale) {
        let p = ds.instance(k, r);
        let comps = p.preprocess();
        let Some(max_core) = find_maximum(&p, &limited(AlgoConfig::adv_max(), opts)).core else {
            continue;
        };
        // Compare bounds on the component that actually hosts the maximum
        // core, so "true max" and the bounds talk about the same subgraph.
        let Some(comp) = comps.iter().find(|c| {
            c.local_to_global
                .binary_search(&max_core.vertices[0])
                .is_ok()
        }) else {
            continue;
        };
        let mut st = SearchState::new(comp);
        if !st.prune_root() {
            continue;
        }
        let truth = max_core.len();
        let mut row = vec![
            ds.data.name.clone(),
            comp.len().to_string(),
            truth.to_string(),
        ];
        for bound in [
            BoundKind::Naive,
            BoundKind::Color,
            BoundKind::KCore,
            BoundKind::ColorKCore,
            BoundKind::DoubleKCore,
        ] {
            row.push(size_upper_bound(&st, bound).to_string());
        }
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            scale: 0.12,
            time_limit_ms: 1200,
        }
    }

    #[test]
    fn table3_has_four_rows() {
        let t = run_experiment("table3", &quick());
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].len(), 4);
    }

    #[test]
    fn every_experiment_runs_at_tiny_scale() {
        for id in ALL_EXPERIMENTS {
            let tables = run_experiment(id, &quick());
            assert!(!tables.is_empty(), "{id} returned no tables");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_experiment_panics() {
        run_experiment("fig99", &quick());
    }
}
