//! Substrate micro-bench: maximal clique enumeration — the expensive heart
//! of the Clique+ baseline (Figure 8's loser).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kr_bench::BenchDataset;
use kr_clique::maximal_cliques_visit;
use kr_datagen::DatasetPreset;
use kr_similarity::build_similarity_graph;
use std::hint::black_box;

fn bench_clique(c: &mut Criterion) {
    let mut g = c.benchmark_group("clique");
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, 0.5);
    // The similarity graph of the largest preprocessed component: what
    // Clique+ actually enumerates over.
    let p = ds.instance(4, 8.0);
    let comps = p.preprocess();
    if let Some(comp) = comps.first() {
        let simgraph = build_similarity_graph(p.oracle(), &comp.local_to_global);
        g.bench_with_input(
            BenchmarkId::new("bron_kerbosch", format!("n={}", simgraph.num_vertices())),
            &simgraph,
            |b, sg| {
                b.iter(|| {
                    let mut count = 0u64;
                    maximal_cliques_visit(sg, |_| count += 1);
                    black_box(count)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
