//! Criterion counterpart of Figure 10's mechanism: the cost and tightness
//! of each size upper bound evaluated on real root states.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kr_bench::BenchDataset;
use kr_core::bounds::size_upper_bound;
use kr_core::search::SearchState;
use kr_core::BoundKind;
use kr_datagen::DatasetPreset;
use std::hint::black_box;

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("bounds");
    let ds = BenchDataset::new(DatasetPreset::DblpLike, 0.5);
    let p = ds.instance(4, 10.0);
    let comps = p.preprocess();
    let Some(comp) = comps.first() else { return };
    for bound in [
        BoundKind::Naive,
        BoundKind::Color,
        BoundKind::KCore,
        BoundKind::ColorKCore,
        BoundKind::DoubleKCore,
    ] {
        g.bench_with_input(
            BenchmarkId::new(format!("{bound:?}"), format!("component_n={}", comp.len())),
            comp,
            |b, comp| {
                b.iter(|| {
                    let mut st = SearchState::new(comp);
                    assert!(st.prune_root());
                    black_box(size_upper_bound(&st, bound))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
