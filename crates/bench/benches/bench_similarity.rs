//! Substrate micro-bench: similarity metrics and threshold calibration
//! (the per-pair cost behind every `DP` counter in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use kr_datagen::DatasetPreset;
use kr_similarity::{
    build_dissimilarity_lists, build_dissimilarity_lists_brute, top_permille_threshold, Metric,
    SimilarityOracle, TableOracle, Threshold,
};
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    let dblp = DatasetPreset::DblpLike.generate_scaled(0.5);
    let oracle = TableOracle::new(
        dblp.attributes.clone(),
        Metric::WeightedJaccard,
        Threshold::MinSimilarity(0.4),
    );
    let n = dblp.graph.num_vertices() as u32;
    g.bench_function("weighted_jaccard_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for u in (0..n).step_by(37) {
                for v in (1..n).step_by(41) {
                    if u != v && oracle.is_similar(u, v) {
                        acc += 1;
                    }
                }
            }
            black_box(acc)
        })
    });
    let gow = DatasetPreset::GowallaLike.generate_scaled(0.5);
    let geo = TableOracle::new(
        gow.attributes.clone(),
        Metric::Euclidean,
        Threshold::MaxDistance(8.0),
    );
    let ng = gow.graph.num_vertices() as u32;
    g.bench_function("euclidean_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for u in (0..ng).step_by(37) {
                for v in (1..ng).step_by(41) {
                    if u != v && geo.is_similar(u, v) {
                        acc += 1;
                    }
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("top_permille_calibration", |b| {
        b.iter(|| {
            black_box(top_permille_threshold(
                &oracle,
                dblp.graph.num_vertices(),
                3.0,
                600,
                7,
            ))
        })
    });
    // Candidate-indexed vs brute-force dissimilarity materialization over
    // one vertex block — the PR 4 preprocessing hot path.
    let kw_members: Vec<u32> = (0..dblp.graph.num_vertices().min(400) as u32).collect();
    g.bench_function("dissimilarity_indexed_keywords", |b| {
        b.iter(|| black_box(build_dissimilarity_lists(&oracle, &kw_members).num_pairs))
    });
    g.bench_function("dissimilarity_brute_keywords", |b| {
        b.iter(|| black_box(build_dissimilarity_lists_brute(&oracle, &kw_members).num_pairs))
    });
    let geo_members: Vec<u32> = (0..gow.graph.num_vertices().min(400) as u32).collect();
    g.bench_function("dissimilarity_indexed_geo", |b| {
        b.iter(|| black_box(build_dissimilarity_lists(&geo, &geo_members).num_pairs))
    });
    g.bench_function("dissimilarity_brute_geo", |b| {
        b.iter(|| black_box(build_dissimilarity_lists_brute(&geo, &geo_members).num_pairs))
    });
    g.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
