//! Substrate micro-bench: core decomposition and k-core extraction
//! (supports Table 3 preprocessing and every structure-pruning step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kr_datagen::DatasetPreset;
use kr_graph::{core_decomposition, k_core};
use std::hint::black_box;

fn bench_kcore(c: &mut Criterion) {
    let mut g = c.benchmark_group("kcore");
    for preset in [DatasetPreset::GowallaLike, DatasetPreset::DblpLike] {
        let d = preset.generate_scaled(0.5);
        g.bench_with_input(
            BenchmarkId::new("decomposition", d.name.clone()),
            &d.graph,
            |b, graph| b.iter(|| black_box(core_decomposition(graph).max_core)),
        );
        g.bench_with_input(
            BenchmarkId::new("k_core_k4", d.name.clone()),
            &d.graph,
            |b, graph| b.iter(|| black_box(k_core(graph, 4).len())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kcore);
criterion_main!(benches);
