//! Criterion counterpart of Figures 10, 11(a–c), 12(b), 14: maximum
//! (k,r)-core search across bounds, orders, and branch policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kr_bench::BenchDataset;
use kr_core::{find_maximum, AlgoConfig, BoundKind, BranchPolicy, SearchOrder};
use kr_datagen::DatasetPreset;
use std::hint::black_box;

fn bench_maximum(c: &mut Criterion) {
    let mut g = c.benchmark_group("maximum");
    g.sample_size(10);
    let ds = BenchDataset::new(DatasetPreset::DblpLike, 0.5);
    let p = ds.instance(4, 5.0);
    let configs = [
        ("BasicMax", AlgoConfig::basic_max()),
        ("AdvMax", AlgoConfig::adv_max()),
        (
            "AdvMax-Color",
            AlgoConfig::adv_max().with_bound(BoundKind::ColorKCore),
        ),
        ("AdvMax-Degree", AlgoConfig::adv_max_no_order()),
        (
            "AdvMax-Shrink",
            AlgoConfig::adv_max().with_branch(BranchPolicy::AlwaysShrink),
        ),
        (
            "AdvMax-Random",
            AlgoConfig::adv_max().with_order(SearchOrder::Random),
        ),
    ];
    for (name, cfg) in configs {
        let cfg = cfg.with_time_limit_ms(2_000);
        g.bench_with_input(BenchmarkId::new(name, "dblp_k4_top5"), &p, |b, p| {
            b.iter(|| black_box(find_maximum(p, &cfg).core.map_or(0, |c| c.len())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_maximum);
criterion_main!(benches);
