//! Criterion counterpart of Figures 8, 9, 11(d–f), 12(a), 13: maximal
//! (k,r)-core enumeration across algorithm configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kr_bench::BenchDataset;
use kr_core::{clique_based_maximal, enumerate_maximal, AlgoConfig};
use kr_datagen::DatasetPreset;
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumeration");
    g.sample_size(10);
    let ds = BenchDataset::new(DatasetPreset::GowallaLike, 0.5);
    let p = ds.instance(4, 8.0);
    // Budget keeps pathological configs bounded; AdvEnum never hits it.
    let configs = [
        ("BasicEnum", AlgoConfig::basic_enum()),
        ("BE+CR", AlgoConfig::be_cr()),
        ("BE+CR+ET", AlgoConfig::be_cr_et()),
        ("AdvEnum", AlgoConfig::adv_enum()),
        ("AdvEnum-O", AlgoConfig::adv_enum_no_order()),
    ];
    for (name, cfg) in configs {
        let cfg = cfg.with_time_limit_ms(2_000);
        g.bench_with_input(BenchmarkId::new(name, "gowalla_k4_r8"), &p, |b, p| {
            b.iter(|| black_box(enumerate_maximal(p, &cfg).cores.len()))
        });
    }
    g.bench_with_input(
        BenchmarkId::new("CliquePlus", "gowalla_k4_r8"),
        &p,
        |b, p| b.iter(|| black_box(clique_based_maximal(p).len())),
    );

    let dblp = BenchDataset::new(DatasetPreset::DblpLike, 0.5);
    let p2 = dblp.instance(4, 5.0);
    g.bench_with_input(BenchmarkId::new("AdvEnum", "dblp_k4_top5"), &p2, |b, p| {
        b.iter(|| black_box(enumerate_maximal(p, &AlgoConfig::adv_enum()).cores.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
