//! Parallel engine vs sequential engine: AdvMax and AdvEnum on the
//! largest presets, across worker counts. The acceptance bar for the
//! engine is ≥1.5× over sequential AdvMax at 4 threads on the largest
//! preset (see README "Building & running").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kr_bench::BenchDataset;
use kr_core::{enumerate_maximal, find_maximum, AlgoConfig};
use kr_datagen::DatasetPreset;
use std::hint::black_box;

fn bench_parallel_max(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_max");
    g.sample_size(10);
    let ds = BenchDataset::new(DatasetPreset::PokecLike, 1.0);
    let p = ds.instance(4, 5.0);
    g.bench_with_input(BenchmarkId::new("AdvMax", "pokec_seq"), &p, |b, p| {
        b.iter(|| {
            black_box(
                find_maximum(p, &AlgoConfig::adv_max())
                    .core
                    .map_or(0, |c| c.len()),
            )
        })
    });
    for threads in [2, 4, 8] {
        let cfg = AlgoConfig::adv_max_parallel().with_threads(threads);
        g.bench_with_input(
            BenchmarkId::new("AdvMax", format!("pokec_par{threads}")),
            &p,
            |b, p| b.iter(|| black_box(find_maximum(p, &cfg).core.map_or(0, |c| c.len()))),
        );
    }
    g.finish();
}

fn bench_parallel_enum(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_enum");
    g.sample_size(10);
    let ds = BenchDataset::new(DatasetPreset::DblpLike, 1.0);
    let p = ds.instance(4, 5.0);
    g.bench_with_input(BenchmarkId::new("AdvEnum", "dblp_seq"), &p, |b, p| {
        b.iter(|| black_box(enumerate_maximal(p, &AlgoConfig::adv_enum()).cores.len()))
    });
    for threads in [2, 4, 8] {
        let cfg = AlgoConfig::adv_enum_parallel().with_threads(threads);
        g.bench_with_input(
            BenchmarkId::new("AdvEnum", format!("dblp_par{threads}")),
            &p,
            |b, p| b.iter(|| black_box(enumerate_maximal(p, &cfg).cores.len())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_max, bench_parallel_enum);
criterion_main!(benches);
