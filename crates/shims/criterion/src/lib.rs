//! Offline stand-in for `criterion`: a wall-clock sampling harness with the
//! API subset the bench targets use (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `sample_size`). No statistical analysis, HTML reports, or baseline
//! comparison — each benchmark prints one line with mean/min/max over the
//! configured samples. A positional CLI argument filters benchmarks by
//! substring, mirroring `cargo bench -- <filter>`.
//!
//! See `crates/shims/README.md` for the shim policy.

use std::time::{Duration, Instant};

/// Re-export so bench files can use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies `cargo bench -- <args>`: the first non-flag argument is a
    /// substring filter; flags (e.g. `--bench`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a closure under `id` (ungrouped).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&self.filter, &id, 20, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_benchmark(&None, &full, self.sample_size, f);
        }
        self
    }

    /// Benchmarks a closure that receives `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_benchmark(&None, &full, self.sample_size, |b| f(b, input));
        }
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifier composed of a function name and a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` timed samples. Fast
    /// closures (< ~50µs) are batched so a sample stays measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
                        // Calibrate a batch size targeting ≥ 50µs per sample.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        let batch = if once < Duration::from_micros(50) {
            (Duration::from_micros(50).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
                as usize
        } else {
            1
        };
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    filter: &Option<String>,
    id: &str,
    sample_size: usize,
    mut f: F,
) {
    if let Some(flt) = filter {
        if !id.contains(flt.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    println!(
        "{id:<60} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
                std::thread::sleep(Duration::from_micros(60));
            })
        });
        g.finish();
        assert!(ran >= 4); // warm-up + probe + 3 samples
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
