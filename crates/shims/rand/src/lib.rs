//! Offline stand-in for the `rand` crate (0.9-style API subset).
//!
//! Provides [`rngs::StdRng`] — a seeded xoshiro256++ generator — together
//! with the [`Rng`] and [`SeedableRng`] traits and uniform range sampling
//! for the integer and float types this workspace draws. Determinism is the
//! load-bearing property: identical seeds yield identical streams, which
//! the dataset generator and the `SearchOrder::Random` ablation rely on.
//! Integer range sampling uses a 128-bit widening multiply (Lemire
//! reduction without the rejection loop); the residual bias is below
//! 2^-32 for every span the workspace uses, which is irrelevant for
//! synthetic-data and ordering purposes.
//!
//! See `crates/shims/README.md` for the shim policy.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience path is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// `u64` in `[0, span)` by widening multiply.
#[inline]
fn bounded(rng_word: u64, span: u64) -> u64 {
    ((rng_word as u128 * span as u128) >> 64) as u64
}

/// `f64` in `[0, 1)` from the high 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Offsets are applied in i128 so signed ranges whose span
                // exceeds the type's positive max (e.g. i8::MIN..i8::MAX)
                // cannot overflow the addition.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding can land exactly on `end`; clamp back
                // into the half-open interval.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Seeded xoshiro256++ generator (the stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn unit_range_covers_buckets() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn bool_probabilities_extreme() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn signed_full_width_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(i8::MIN..i8::MAX);
            assert!((i8::MIN..i8::MAX).contains(&v));
            let w = rng.random_range(-100i32..=100);
            assert!((-100..=100).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(5usize..5);
    }
}
