//! Offline stand-in for `rayon`: a scoped, work-stealing thread pool on
//! plain `std`.
//!
//! The subset provided is what the (k,r)-core parallel engine needs:
//!
//! * [`ThreadPoolBuilder`] → [`ThreadPool`] with a `num_threads` knob;
//! * [`ThreadPool::scope`] / free-standing [`scope`] — structured
//!   parallelism: every task spawned on the [`Scope`] completes before the
//!   call returns, and tasks may spawn further tasks;
//! * [`join`] and [`current_num_threads`].
//!
//! Scheduling is genuine work-stealing: each worker owns a deque, pushes
//! its spawns on the back (LIFO, cache-friendly for branch-and-bound
//! splits), pops its own back, and steals from other workers' fronts
//! (FIFO, grabbing the oldest — typically largest — subtask). Workers are
//! spawned per `scope` call via `std::thread::scope` rather than kept hot
//! in a global pool; for the coarse-grained search tasks this engine
//! schedules, thread start-up is noise. Panics in tasks are captured and
//! re-thrown from the scope call after all workers stop, mirroring rayon's
//! behavior.
//!
//! See `crates/shims/README.md` for the shim policy.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

type Job<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

thread_local! {
    /// Index of the worker the current thread plays in the active scope
    /// (`usize::MAX` when the thread is not a scope worker).
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (building cannot actually
/// fail in the shim; the `Result` keeps call sites source-compatible).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Fresh builder (thread count defaults to the machine parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (0 = machine parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle carrying a thread-count; workers are spawned per [`scope`]
/// call (see module docs).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Number of worker threads scopes on this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` (on the calling thread; pool context is implicit in the
    /// shim since scopes carry their own workers).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Structured fork-join region with `self.num_threads` workers.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R + Send) -> R
    where
        R: Send,
    {
        run_scope(self.num_threads, f)
    }
}

/// Machine parallelism (what a default-built pool uses).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Structured fork-join region on a default-sized worker set.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R + Send) -> R
where
    R: Send,
{
    run_scope(current_num_threads(), f)
}

/// Runs both closures, returning both results. The shim runs them on the
/// calling thread (sufficient for the call sites in this workspace, which
/// use `join` for two-way splits of already-parallel regions).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Spawn surface handed to scope closures and tasks.
pub struct Scope<'scope> {
    /// One deque per worker slot (workers 0..n; slot n is the injector the
    /// scope-owning thread pushes to before it starts helping).
    deques: Vec<Mutex<VecDeque<Job<'scope>>>>,
    /// Tasks spawned and not yet finished.
    pending: AtomicUsize,
    /// Tasks sitting in a deque (spawned, not yet picked up). Idle
    /// workers consult this — not `pending` — before sleeping: when every
    /// outstanding task is already *running*, re-scanning the deques is a
    /// busy-spin that starves the working threads (catastrophically so on
    /// single-core hosts).
    queued: AtomicUsize,
    /// Set once the scope closure has returned and `pending` hit zero.
    shutdown: AtomicBool,
    /// Sleep/wake machinery for idle workers.
    idle: Mutex<()>,
    idle_cv: Condvar,
    /// First panic payload captured from a task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Round-robin cursor for spawns from non-worker threads.
    external_cursor: AtomicUsize,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task; it runs before the enclosing scope call returns and
    /// may itself spawn onto the same scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_add(1, Ordering::SeqCst);
        let slot = WORKER_INDEX.with(|w| w.get());
        let slot = if slot < self.deques.len() {
            slot
        } else {
            self.external_cursor.fetch_add(1, Ordering::Relaxed) % self.deques.len()
        };
        self.deques[slot]
            .lock()
            .expect("deque poisoned")
            .push_back(Box::new(f));
        self.idle_cv.notify_one();
    }

    /// Pops from the back of `slot`'s own deque, else steals from the
    /// front of another deque.
    fn find_job(&self, slot: usize) -> Option<Job<'scope>> {
        if let Some(job) = self.deques[slot].lock().expect("deque poisoned").pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (slot + off) % n;
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Runs one job, capturing panics so the counter always decrements.
    fn run_job(&self, job: Job<'scope>) {
        let result = catch_unwind(AssertUnwindSafe(|| job(self)));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().expect("panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last task done: wake everyone so workers can observe shutdown
            // and the owner can stop helping.
            let _guard = self.idle.lock().expect("idle lock poisoned");
            self.idle_cv.notify_all();
        }
    }

    /// Worker loop: run/steal until shutdown.
    fn work(&self, slot: usize) {
        WORKER_INDEX.with(|w| w.set(slot));
        loop {
            if let Some(job) = self.find_job(slot) {
                self.run_job(job);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let guard = self.idle.lock().expect("idle lock poisoned");
            // Re-scan only when a task is actually queued (spawn bumps
            // `queued` before notifying, so this check under the lock
            // cannot miss one); otherwise sleep until woken or timeout.
            if self.shutdown.load(Ordering::SeqCst) || self.queued.load(Ordering::SeqCst) > 0 {
                continue;
            }
            let _ = self
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("idle lock poisoned");
        }
        WORKER_INDEX.with(|w| w.set(usize::MAX));
    }
}

fn run_scope<'scope, R>(num_threads: usize, f: impl FnOnce(&Scope<'scope>) -> R + Send) -> R
where
    R: Send,
{
    let n = num_threads.max(1);
    let scope = Scope {
        deques: (0..n + 1).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(0),
        queued: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        idle: Mutex::new(()),
        idle_cv: Condvar::new(),
        panic: Mutex::new(None),
        external_cursor: AtomicUsize::new(0),
    };
    // If the scope closure itself panics (as opposed to a spawned task,
    // whose panics are caught in `run_job`), the unwind leaves
    // `std::thread::scope` joining workers that would otherwise loop
    // forever waiting for a shutdown nobody will signal. The drop guard
    // turns that deadlock back into rayon's behavior: workers stop, the
    // panic propagates.
    struct ShutdownGuard<'g, 's>(&'g Scope<'s>);
    impl Drop for ShutdownGuard<'_, '_> {
        fn drop(&mut self) {
            self.0.shutdown.store(true, Ordering::SeqCst);
            let _guard = self.0.idle.lock().expect("idle lock poisoned");
            self.0.idle_cv.notify_all();
        }
    }

    let result = std::thread::scope(|ts| {
        let guard = ShutdownGuard(&scope);
        for slot in 0..n {
            let scope_ref = &scope;
            ts.spawn(move || scope_ref.work(slot));
        }
        // The owning thread runs the closure, then helps drain the queues
        // (its deque slot is `n`, the injector).
        WORKER_INDEX.with(|w| w.set(n));
        let result = f(&scope);
        while self_pending(&scope) {
            if let Some(job) = scope.find_job(n) {
                scope.run_job(job);
            } else {
                let guard = scope.idle.lock().expect("idle lock poisoned");
                if scope.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                if scope.queued.load(Ordering::SeqCst) > 0 {
                    continue;
                }
                let _ = scope
                    .idle_cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("idle lock poisoned");
            }
        }
        WORKER_INDEX.with(|w| w.set(usize::MAX));
        drop(guard); // normal path: same shutdown broadcast as the panic path
        result
    });
    if let Some(payload) = scope.panic.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }
    result
}

fn self_pending(scope: &Scope<'_>) -> bool {
    scope.pending.load(Ordering::SeqCst) > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_tasks() {
        let sum = AtomicU64::new(0);
        scope(|s| {
            for i in 1..=100u64 {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn nested_spawns_complete() {
        let count = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.scope(|s| {
            for _ in 0..8 {
                let count = &count;
                s.spawn(move |s| {
                    for _ in 0..8 {
                        s.spawn(move |_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn borrows_outlive_scope() {
        let data = [1u64, 2, 3, 4];
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("boom"));
                s.spawn(|_| {}); // sibling task still completes
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn closure_panic_propagates_without_hanging() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| {});
                panic!("closure boom");
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                let hits = &hits;
                s.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
