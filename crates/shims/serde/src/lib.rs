//! Offline stand-in for `serde`: marker traits plus re-exported no-op derive
//! macros, enough for `#[derive(Serialize, Deserialize)]` annotations to
//! compile. No serialization format ships in this environment, so nothing
//! consumes the impls. See `crates/shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
