//! Offline stand-in for `serde_derive`: the derive macros expand to nothing,
//! so `#[derive(Serialize, Deserialize)]` annotations compile without
//! generating any impls. See `crates/shims/README.md`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
