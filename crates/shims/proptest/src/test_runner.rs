//! Case runner: deterministic seeds, reject accounting, failure reporting.

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Give up after this many rejects (via `prop_assume!`).
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl Config {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// Discard — the generated inputs don't satisfy an assumption.
    Reject(String),
}

impl TestCaseError {
    /// Assertion-failure constructor.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Discard constructor.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias matching real proptest.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one property over many generated cases.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Builds a runner.
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Runs `case` until `config.cases` accepted cases pass, panicking on
    /// the first failure with replay information.
    ///
    /// The per-case RNG seed is `base ⊕ f(case index)`, where `base` comes
    /// from the `PROPTEST_SEED` env var (default: a hash of `name`), so
    /// failures are reproducible.
    pub fn run_named(
        &mut self,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => fnv1a(name.as_bytes()),
        };
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u64;
        while accepted < self.config.cases {
            let seed = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "property {name}: too many rejects ({rejected}) after {accepted} \
                             accepted cases"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property {name} failed at case {index} (base seed {base}, case seed \
                         {seed}; replay with PROPTEST_SEED={base}):\n{msg}"
                    );
                }
            }
            index += 1;
        }
    }
}

/// FNV-1a, for deriving a stable per-test base seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut runner = TestRunner::new(Config::with_cases(10));
        let mut n = 0;
        runner.run_named("count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejects_do_not_count() {
        let mut runner = TestRunner::new(Config::with_cases(5));
        let mut accepted = 0;
        let mut tick = 0u32;
        runner.run_named("rejects", |_| {
            tick += 1;
            if tick.is_multiple_of(2) {
                return Err(TestCaseError::reject("odd".to_string()));
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 5);
    }

    #[test]
    #[should_panic(expected = "property boom failed")]
    fn failure_panics_with_replay_info() {
        let mut runner = TestRunner::new(Config::with_cases(5));
        runner.run_named("boom", |_| Err(TestCaseError::fail("nope".to_string())));
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(Config::with_cases(5));
            runner.run_named("det", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
