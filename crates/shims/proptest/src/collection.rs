//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Admissible length specifications for [`vec()`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_in_range() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u32..10, 2..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_length() {
        let mut rng = TestRng::from_seed(6);
        let s = vec(0.0f64..1.0, 7usize);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }
}
