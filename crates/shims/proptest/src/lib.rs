//! Offline stand-in for `proptest`: deterministic random property testing
//! with the macro/strategy subset this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its case index and seed so
//!   it can be replayed (`PROPTEST_SEED=<seed>`), but is not minimized;
//! * strategies are generators only (`generate` from a seeded RNG);
//! * the supported surface is exactly: range strategies over primitive
//!   ints/floats, tuples, [`strategy::Just`], `prop_oneof!`,
//!   [`collection::vec`], `prop_map` / `prop_flat_map` / `prop_filter`,
//!   the [`proptest!`] macro with an optional
//!   `#![proptest_config(..)]` header, and the `prop_assert*` /
//!   `prop_assume!` macros.
//!
//! Determinism: every test function derives its per-case seeds from a
//! fixed base (overridable via the `PROPTEST_SEED` env var), so CI runs
//! are reproducible. See `crates/shims/README.md` for the shim policy.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test files import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(stringify!($name), |__krprop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __krprop_rng);)+
                    let __krprop_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __krprop_case()
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__krprop_l, __krprop_r) => {
                if !(*__krprop_l == *__krprop_r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), __krprop_l, __krprop_r,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__krprop_l, __krprop_r) => {
                if !(*__krprop_l == *__krprop_r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+), __krprop_l, __krprop_r,
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__krprop_l, __krprop_r) => {
                if *__krprop_l == *__krprop_r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{}` != `{}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __krprop_l,
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case (does not count toward the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
