//! Value-generation strategies (no shrinking; see the crate docs).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value.
    ///
    /// # Panics
    /// Panics after 1000 consecutive rejections (the shim has no global
    /// reject budget to charge them to).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `bool` strategy: fair coin.
impl Strategy for Range<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (5u32..=7).generate(&mut rng);
            assert!((5..=7).contains(&w));
            let f = (0.0f64..2.0).generate(&mut rng);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (1usize..5).prop_flat_map(|n| (0usize..n, Just(n)).prop_map(|(a, n)| (a, n)));
        for _ in 0..100 {
            let (a, n) = s.generate(&mut rng);
            assert!(a < n && n < 5);
        }
    }

    #[test]
    fn union_hits_all_options() {
        let mut rng = TestRng::from_seed(3);
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::from_seed(4);
        let s = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert!(s.generate(&mut rng).is_multiple_of(2));
        }
    }
}
