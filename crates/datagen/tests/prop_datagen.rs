//! Property tests for the synthetic dataset generator.

use kr_datagen::attributes::AttributeKind;
use kr_datagen::generator::{GeneratorParams, SyntheticDataset};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        60usize..300,
        1usize..10,
        1usize..4,
        0usize..3,
        (2usize..4, 4usize..8),
        prop_oneof![
            Just(AttributeKind::Geo {
                world_size: 2000.0,
                city_sigma: 3.0,
                hub_fraction: 0.05,
            }),
            Just(AttributeKind::Keywords {
                vocabulary: 300,
                topic_words: 10,
                words_per_vertex: 20,
                zipf_exponent: 1.1,
            }),
        ],
        0u64..1000,
        0usize..30,
    )
        .prop_map(
            |(n, communities, m_intra, m_inter, (lo, hi), attribute_kind, seed, subgroup_size)| {
                GeneratorParams {
                    n,
                    communities,
                    community_exponent: 2.0,
                    m_intra,
                    m_inter,
                    event_size: (lo, hi),
                    subgroup_size,
                    overlap_fraction: 0.05,
                    attribute_kind,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generation_is_total_and_consistent(params in arb_params()) {
        let d = SyntheticDataset::generate("prop", params.clone());
        prop_assert_eq!(d.graph.num_vertices(), params.n);
        prop_assert_eq!(d.community.len(), params.n);
        prop_assert_eq!(d.subgroup.len(), params.n);
        prop_assert_eq!(d.attributes.len(), params.n);
        // Communities in range.
        prop_assert!(d.community.iter().all(|&c| (c as usize) < params.communities.max(1)));
        // Sub-groups nest inside communities: two vertices in the same
        // sub-group must share a community.
        let mut sg_comm: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for v in 0..params.n {
            let entry = sg_comm.entry(d.subgroup[v]).or_insert(d.community[v]);
            prop_assert_eq!(*entry, d.community[v], "sub-group spans communities");
        }
        // Overlaps reference other communities.
        for &(v, c) in &d.overlaps {
            prop_assert!((v as usize) < params.n);
            prop_assert!(d.community[v as usize] != c);
        }
    }

    #[test]
    fn determinism(params in arb_params()) {
        let a = SyntheticDataset::generate("a", params.clone());
        let b = SyntheticDataset::generate("b", params);
        prop_assert_eq!(a.graph, b.graph);
        prop_assert_eq!(a.attributes, b.attributes);
        prop_assert_eq!(a.subgroup, b.subgroup);
    }

    #[test]
    fn no_self_loops_or_duplicates(params in arb_params()) {
        let d = SyntheticDataset::generate("p", params);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in d.graph.edges() {
            prop_assert!(u != v);
            prop_assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
    }

    #[test]
    fn edge_budget_respected(params in arb_params()) {
        // The generator targets ~ n*m_intra intra edges + <= n*m_inter
        // inter edges; allow generous slack (one event can overshoot).
        let d = SyntheticDataset::generate("p", params.clone());
        let upper = params.n * (params.m_intra + params.m_inter)
            + params.event_size.1 * params.event_size.1 * params.communities.max(1)
            + params.n;
        prop_assert!(
            d.graph.num_edges() <= upper,
            "edges {} exceed budget {upper}",
            d.graph.num_edges()
        );
    }
}
