//! Community-correlated attribute synthesis.
//!
//! * `Geo` — each community is anchored at a city center; member locations
//!   are Gaussian around the center. An optional `hub_fraction` relocates
//!   some vertices of *every* community to city 0, mimicking Gowalla's
//!   headquarters effect (the paper observes the maximum (k,r)-core sits in
//!   Austin for k >= 6).
//! * `Keywords` — a Zipf vocabulary; each community owns a topic (a subset
//!   of preferred words); vertices sample weighted keyword counts mostly
//!   from their community topic plus background noise. Overlapping vertices
//!   mix two topics, like the dual-affiliation author of Figure 5.

use kr_graph::VertexId;
use kr_similarity::{AttributeTable, Metric};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which attribute family to synthesize.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AttributeKind {
    /// 2-D geo points clustered by community.
    Geo {
        /// Spread of city centers (the "country size", in km).
        world_size: f64,
        /// Standard deviation of member locations around their city (km).
        city_sigma: f64,
        /// Fraction of all vertices relocated to city 0 (headquarters).
        hub_fraction: f64,
    },
    /// Weighted keyword multisets drawn from per-community topics.
    Keywords {
        /// Vocabulary size.
        vocabulary: usize,
        /// Words per community topic.
        topic_words: usize,
        /// Keyword draws per vertex (with multiplicity -> weights).
        words_per_vertex: usize,
        /// Zipf exponent of the background word distribution.
        zipf_exponent: f64,
    },
}

/// Generates attributes for the given community + sub-group assignment.
/// Returns the table plus the natural metric for it.
///
/// Sub-groups refine communities: geo points cluster around per-sub-group
/// *neighborhood* centers inside the community's city, and keyword lists
/// mix the community topic with a sub-group sub-topic. This correlates
/// similarity with the sub-group-aligned edge density produced by the
/// generator's clique events, which is what lets similarity thresholds cut
/// k-cores into meaningful (k,r)-cores.
pub fn generate(
    kind: &AttributeKind,
    community: &[u32],
    subgroup: &[u32],
    overlaps: &[(VertexId, u32)],
    rng: &mut StdRng,
) -> (AttributeTable, Metric) {
    match *kind {
        AttributeKind::Geo {
            world_size,
            city_sigma,
            hub_fraction,
        } => {
            let ncomm = community
                .iter()
                .copied()
                .max()
                .map_or(1, |c| c as usize + 1);
            let nsub = subgroup.iter().copied().max().map_or(1, |s| s as usize + 1);
            let centers: Vec<(f64, f64)> = (0..ncomm)
                .map(|_| {
                    (
                        rng.random_range(0.0..world_size),
                        rng.random_range(0.0..world_size),
                    )
                })
                .collect();
            // Neighborhood centers: offset from the owning city by ~2 sigma
            // so that a distance threshold around sigma separates
            // neighborhoods while one around 4-5 sigma merges the city.
            let mut nb_centers: Vec<Option<(f64, f64)>> = vec![None; nsub];
            for (v, &sg) in subgroup.iter().enumerate() {
                if nb_centers[sg as usize].is_none() {
                    let (cx, cy) = centers[community[v] as usize];
                    nb_centers[sg as usize] = Some((
                        cx + gaussian(rng) * 2.0 * city_sigma,
                        cy + gaussian(rng) * 2.0 * city_sigma,
                    ));
                }
            }
            let pts = community
                .iter()
                .enumerate()
                .map(|(v, _)| {
                    let center = if rng.random_bool(hub_fraction.clamp(0.0, 1.0)) {
                        centers[0]
                    } else {
                        nb_centers[subgroup[v] as usize].expect("center assigned")
                    };
                    (
                        center.0 + gaussian(rng) * city_sigma * 0.5,
                        center.1 + gaussian(rng) * city_sigma * 0.5,
                    )
                })
                .collect();
            (AttributeTable::points(pts), Metric::Euclidean)
        }
        AttributeKind::Keywords {
            vocabulary,
            topic_words,
            words_per_vertex,
            zipf_exponent,
        } => {
            let ncomm = community
                .iter()
                .copied()
                .max()
                .map_or(1, |c| c as usize + 1);
            let nsub = subgroup.iter().copied().max().map_or(1, |s| s as usize + 1);
            let mut draw_topic = |count: usize| {
                let mut words: Vec<u32> = Vec::with_capacity(count);
                while words.len() < count {
                    let w = zipf_sample(rng, vocabulary, zipf_exponent) as u32;
                    if !words.contains(&w) {
                        words.push(w);
                    }
                }
                words
            };
            // Community topics plus narrower per-sub-group sub-topics.
            let topics: Vec<Vec<u32>> = (0..ncomm).map(|_| draw_topic(topic_words)).collect();
            let subtopics: Vec<Vec<u32>> = (0..nsub)
                .map(|_| draw_topic((topic_words / 2).max(2)))
                .collect();
            // Secondary community lookup for overlapping vertices.
            let mut second: Vec<Option<u32>> = vec![None; community.len()];
            for &(v, c) in overlaps {
                second[v as usize] = Some(c);
            }
            let lists: Vec<Vec<(u32, f64)>> = community
                .iter()
                .enumerate()
                .map(|(v, &c)| {
                    let mut counts: std::collections::HashMap<u32, f64> =
                        std::collections::HashMap::new();
                    for _ in 0..words_per_vertex {
                        let topic = match second[v] {
                            // Overlapping vertices split draws between the
                            // two community topics.
                            Some(c2) if rng.random_bool(0.5) => &topics[c2 as usize],
                            // Most draws come from the narrow sub-topic
                            // shared with close collaborators; the rest from
                            // the broader community topic.
                            _ if rng.random_bool(0.7) => &subtopics[subgroup[v] as usize],
                            _ => &topics[c as usize],
                        };
                        let w = if rng.random_bool(0.98) {
                            // In-topic word.
                            topic[rng.random_range(0..topic.len())]
                        } else {
                            // Background noise word.
                            zipf_sample(rng, vocabulary, zipf_exponent) as u32
                        };
                        *counts.entry(w).or_insert(0.0) += 1.0;
                    }
                    counts.into_iter().collect()
                })
                .collect();
            (AttributeTable::keywords(lists), Metric::WeightedJaccard)
        }
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Zipf sample over `0..n` by inverse-CDF on precomputable weights.
/// O(log n) would need tables; n is small so linear scan is fine.
fn zipf_sample(rng: &mut StdRng, n: usize, s: f64) -> usize {
    debug_assert!(n >= 1);
    // Normalization constant.
    let h: f64 = (1..=n).map(|i| (i as f64).powf(-s)).sum();
    let target = rng.random_range(0.0..h);
    let mut acc = 0.0;
    for i in 1..=n {
        acc += (i as f64).powf(-s);
        if acc >= target {
            return i - 1;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn geo_attributes_cluster() {
        let mut rng = StdRng::seed_from_u64(1);
        let community: Vec<u32> = (0..200).map(|i| (i % 2) as u32).collect();
        let (table, metric) = generate(
            &AttributeKind::Geo {
                world_size: 1000.0,
                city_sigma: 5.0,
                hub_fraction: 0.0,
            },
            &community,
            &community, // one sub-group per community
            &[],
            &mut rng,
        );
        assert_eq!(metric, Metric::Euclidean);
        let pts = match table {
            AttributeTable::Points(p) => p,
            _ => unreachable!(),
        };
        // Same-community points should be close on average; different far.
        let d = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..50 {
            for j in (i + 1)..50 {
                let dist = d(pts[i], pts[j]);
                if community[i] == community[j] {
                    intra.push(dist);
                } else {
                    inter.push(dist);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&intra) * 3.0 < mean(&inter));
    }

    #[test]
    fn hub_fraction_moves_points_to_city_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let community: Vec<u32> = (0..300).map(|i| (i % 3) as u32).collect();
        let (table, _) = generate(
            &AttributeKind::Geo {
                world_size: 10_000.0,
                city_sigma: 1.0,
                hub_fraction: 0.5,
            },
            &community,
            &community,
            &[],
            &mut rng,
        );
        let pts = match table {
            AttributeTable::Points(p) => p,
            _ => unreachable!(),
        };
        // With sigma tiny vs world size, points form at most 3 + 1 clusters;
        // community-1 vertices split between their own city and city 0.
        let ones: Vec<(f64, f64)> = (0..300)
            .filter(|&i| community[i] == 1)
            .map(|i| pts[i])
            .collect();
        let spread = ones
            .iter()
            .map(|p| ((p.0 - ones[0].0).powi(2) + (p.1 - ones[0].1).powi(2)).sqrt())
            .fold(0.0f64, f64::max);
        assert!(spread > 100.0, "expected split clusters, spread {spread}");
    }

    #[test]
    fn keyword_attributes_cluster() {
        let mut rng = StdRng::seed_from_u64(3);
        let community: Vec<u32> = (0..100).map(|i| (i % 2) as u32).collect();
        let (table, metric) = generate(
            &AttributeKind::Keywords {
                vocabulary: 500,
                topic_words: 20,
                words_per_vertex: 12,
                zipf_exponent: 1.05,
            },
            &community,
            &community,
            &[],
            &mut rng,
        );
        assert_eq!(metric, Metric::WeightedJaccard);
        let lists = match &table {
            AttributeTable::Keywords(l) => l,
            _ => unreachable!(),
        };
        let sim =
            |a: usize, b: usize| kr_similarity::metrics::weighted_jaccard(&lists[a], &lists[b]);
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..40 {
            for j in (i + 1)..40 {
                if community[i] == community[j] {
                    intra.push(sim(i, j));
                } else {
                    inter.push(sim(i, j));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&intra) > 2.0 * mean(&inter) + 0.01);
    }

    #[test]
    fn zipf_sampling_in_range_and_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 20];
        for _ in 0..2000 {
            let s = zipf_sample(&mut rng, 20, 1.2);
            assert!(s < 20);
            counts[s] += 1;
        }
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn overlap_vertices_mix_topics() {
        let mut rng = StdRng::seed_from_u64(5);
        let community = vec![0u32; 50]
            .into_iter()
            .chain(vec![1u32; 50])
            .collect::<Vec<_>>();
        let overlaps = vec![(0 as VertexId, 1u32)];
        let (table, _) = generate(
            &AttributeKind::Keywords {
                vocabulary: 400,
                topic_words: 15,
                words_per_vertex: 20,
                zipf_exponent: 1.1,
            },
            &community,
            &community,
            &overlaps,
            &mut rng,
        );
        let lists = match &table {
            AttributeTable::Keywords(l) => l,
            _ => unreachable!(),
        };
        // Vertex 0 should be at least somewhat similar to both camps.
        let sim =
            |a: usize, b: usize| kr_similarity::metrics::weighted_jaccard(&lists[a], &lists[b]);
        let to_own: f64 = (1..30).map(|j| sim(0, j)).sum::<f64>() / 29.0;
        let to_other: f64 = (50..80).map(|j| sim(0, j)).sum::<f64>() / 30.0;
        assert!(to_own > 0.0);
        assert!(
            to_other > 0.0,
            "overlap vertex should share words with second topic"
        );
    }
}
