//! # kr-datagen
//!
//! Synthetic attributed social networks standing in for the paper's four
//! real datasets (Brightkite, Gowalla, DBLP, Pokec), which are not
//! redistributable/downloadable in this environment.
//!
//! The generator reproduces the *structural and attribute properties that
//! drive the paper's algorithms*:
//!
//! * skewed (power-law-ish) degree distributions via preferential
//!   attachment inside a planted community structure;
//! * community-correlated attributes — geo clusters around per-community
//!   "cities" (Brightkite/Gowalla) or weighted keyword multisets drawn from
//!   per-community topics over a Zipf vocabulary (DBLP/Pokec);
//! * controllable cross-community mixing, which sets the density of
//!   dissimilar pairs inside k-cores — the quantity that makes (k,r)-core
//!   search hard.
//!
//! Presets mirror the shape of Table 3 at laptop scale. Real SNAP data can
//! be substituted through `kr-graph::io` loaders.

pub mod attributes;
pub mod generator;
pub mod presets;

pub use generator::{GeneratorParams, SyntheticDataset};
pub use presets::DatasetPreset;
