//! Community-structured attributed graph generator.
//!
//! Vertices are partitioned into communities whose sizes follow a truncated
//! power law. Edges are added in two phases:
//!
//! 1. **intra-community clique events** — communities accumulate "events"
//!    (papers, meetups): each event selects a handful of members with
//!    preferential bias and cliques them. Repeated events overlap, which
//!    yields both the skewed degree distribution and the dense k-core
//!    backbone that real co-author / check-in graphs exhibit (a lone
//!    preferential-attachment tree has no k-core for k ≥ 2);
//! 2. **cross-community noise** — each vertex adds `m_inter` edges to
//!    uniformly random outsiders, which puts *dissimilar* pairs inside
//!    k-cores and is what makes (k,r)-core search non-trivial.
//!
//! Attributes are produced by `attributes::*` with community-correlated
//! distributions. Everything is seeded and reproducible.

use crate::attributes::{self, AttributeKind};
use kr_graph::{Graph, GraphBuilder, VertexId};
use kr_similarity::{AttributeTable, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorParams {
    /// Number of vertices.
    pub n: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Power-law exponent for community sizes (1.5–3 typical).
    pub community_exponent: f64,
    /// Target intra-community edges per vertex (so the intra average
    /// degree is roughly `2 * m_intra`).
    pub m_intra: usize,
    /// Cross-community edges added per vertex (uniform noise).
    pub m_inter: usize,
    /// `(min, max)` participants of a clique event. Larger events create
    /// deeper k-cores (an event of size `s` alone is an `(s-1)`-core).
    pub event_size: (usize, usize),
    /// Target sub-group size ("research groups" / "neighborhoods").
    /// Communities split into sub-groups of roughly this many members.
    /// Events stay inside one sub-group with high probability and
    /// attributes are sub-group-correlated, so similarity thresholds split
    /// k-cores along sub-group seams — the effect the paper's case studies
    /// highlight (EBI vs Wellcome Trust inside one DBLP k-core, two cities
    /// inside one Gowalla k-core). `0` disables sub-structure.
    pub subgroup_size: usize,
    /// Fraction of vertices assigned a *second* community membership,
    /// creating overlap (the "Steven P. Wilder" effect of Figure 5).
    pub overlap_fraction: f64,
    /// Attribute family to generate.
    pub attribute_kind: AttributeKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            n: 1000,
            communities: 12,
            community_exponent: 2.0,
            m_intra: 4,
            m_inter: 1,
            event_size: (3, 7),
            subgroup_size: 18,
            overlap_fraction: 0.05,
            attribute_kind: AttributeKind::Keywords {
                vocabulary: 200,
                topic_words: 24,
                words_per_vertex: 10,
                zipf_exponent: 1.1,
            },
            seed: 42,
        }
    }
}

/// A generated dataset: graph + attributes + ground-truth communities.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Human-readable name (preset name or "custom").
    pub name: String,
    /// The social graph.
    pub graph: Graph,
    /// Vertex attributes.
    pub attributes: AttributeTable,
    /// The natural metric for the attributes.
    pub metric: Metric,
    /// Ground truth: primary community of each vertex.
    pub community: Vec<u32>,
    /// Ground truth: global sub-group id of each vertex (sub-groups nest
    /// inside communities).
    pub subgroup: Vec<u32>,
    /// Vertices with a secondary membership, as `(vertex, community)`.
    pub overlaps: Vec<(VertexId, u32)>,
    /// Parameters that produced the dataset.
    pub params: GeneratorParams,
}

impl SyntheticDataset {
    /// Generates a dataset from parameters (deterministic per seed).
    pub fn generate(name: impl Into<String>, params: GeneratorParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let community = assign_communities(&params, &mut rng);
        let subgroup = assign_subgroups(&params, &community);
        let overlaps = assign_overlaps(&params, &community, &mut rng);
        let graph = build_graph(&params, &community, &subgroup, &overlaps, &mut rng);
        let (attributes, metric) = attributes::generate(
            &params.attribute_kind,
            &community,
            &subgroup,
            &overlaps,
            &mut rng,
        );
        SyntheticDataset {
            name: name.into(),
            graph,
            attributes,
            metric,
            community,
            subgroup,
            overlaps,
            params,
        }
    }

    /// Table-3-style statistics: `(nodes, edges, avg degree, max degree)`.
    pub fn statistics(&self) -> (usize, usize, f64, usize) {
        (
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.graph.avg_degree(),
            self.graph.max_degree(),
        )
    }
}

/// Community sizes follow a truncated power law; vertices are assigned in
/// blocks.
fn assign_communities(params: &GeneratorParams, rng: &mut StdRng) -> Vec<u32> {
    let c = params.communities.max(1);
    // Draw raw weights w_i = (i+1)^{-alpha} shuffled, normalize to n.
    let mut weights: Vec<f64> = (0..c)
        .map(|i| ((i + 1) as f64).powf(-params.community_exponent))
        .collect();
    // Random tie-break so community 0 is not always the giant one.
    for w in weights.iter_mut() {
        *w *= rng.random_range(0.8..1.2);
    }
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * params.n as f64).round() as usize)
        .collect();
    // Fix rounding drift; every community gets at least 3 vertices.
    for s in sizes.iter_mut() {
        *s = (*s).max(3);
    }
    let mut assigned: usize = sizes.iter().sum();
    while assigned > params.n {
        if let Some(s) = sizes.iter_mut().filter(|s| **s > 3).max_by_key(|s| **s) {
            *s -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }
    let mut i = 0usize;
    while assigned < params.n {
        sizes[i % c] += 1;
        assigned += 1;
        i += 1;
    }
    let mut community = Vec::with_capacity(params.n);
    for (cid, &s) in sizes.iter().enumerate() {
        for _ in 0..s {
            if community.len() < params.n {
                community.push(cid as u32);
            }
        }
    }
    community.truncate(params.n);
    while community.len() < params.n {
        community.push((c - 1) as u32);
    }
    community
}

/// Contiguous sub-group blocks inside each community: a community of size
/// `s` gets `max(1, round(s / subgroup_size))` sub-groups, so tiny
/// communities stay whole and big ones split into many cohesive groups.
fn assign_subgroups(params: &GeneratorParams, community: &[u32]) -> Vec<u32> {
    let c = params.communities.max(1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); c];
    for (v, &cid) in community.iter().enumerate() {
        members[cid as usize].push(v);
    }
    let mut subgroup = vec![0u32; community.len()];
    let mut next = 0u32;
    for group in &members {
        if group.is_empty() {
            continue;
        }
        let per = (group.len() + params.subgroup_size / 2)
            .checked_div(params.subgroup_size)
            .unwrap_or(1)
            .max(1);
        let chunk = group.len().div_ceil(per);
        for (i, &v) in group.iter().enumerate() {
            subgroup[v] = next + (i / chunk) as u32;
        }
        next += per as u32;
    }
    subgroup
}

fn assign_overlaps(
    params: &GeneratorParams,
    community: &[u32],
    rng: &mut StdRng,
) -> Vec<(VertexId, u32)> {
    let c = params.communities.max(1) as u32;
    let mut overlaps = Vec::new();
    if c < 2 {
        return overlaps;
    }
    for (v, &own) in community.iter().enumerate() {
        if rng.random_bool(params.overlap_fraction.clamp(0.0, 1.0)) {
            let mut other = rng.random_range(0..c);
            if other == own {
                other = (other + 1) % c;
            }
            overlaps.push((v as VertexId, other));
        }
    }
    overlaps
}

fn build_graph(
    params: &GeneratorParams,
    community: &[u32],
    subgroup: &[u32],
    overlaps: &[(VertexId, u32)],
    rng: &mut StdRng,
) -> Graph {
    let n = community.len();
    let c = params.communities.max(1);
    // Membership lists (primary + overlap).
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); c];
    for (v, &cid) in community.iter().enumerate() {
        members[cid as usize].push(v as VertexId);
    }
    for &(v, cid) in overlaps {
        members[cid as usize].push(v);
    }

    let mut b = GraphBuilder::with_capacity(n, n * (params.m_intra + params.m_inter));
    // Clique events inside each community: each event recruits around an
    // initiator, mostly from the initiator's sub-group, preferentially by
    // prior participation. Overlapping events build the k-core backbone,
    // hubs, and sub-group-aligned density.
    let (ev_lo, ev_hi) = params.event_size;
    let ev_lo = ev_lo.max(2);
    let ev_hi = ev_hi.max(ev_lo);
    let mut event: Vec<VertexId> = Vec::new();
    for group in &members {
        if group.len() < 2 {
            continue;
        }
        // Participation-weighted endpoint pools: one for the whole
        // community, one per sub-group (seeded with each member once).
        let mut pool: Vec<VertexId> = group.clone();
        let mut sub_pool: std::collections::HashMap<u32, Vec<VertexId>> =
            std::collections::HashMap::new();
        for &v in group {
            sub_pool.entry(subgroup[v as usize]).or_default().push(v);
        }
        let target_edges = group.len() * params.m_intra;
        let mut edges_added = 0usize;
        while edges_added < target_edges {
            let initiator = pool[rng.random_range(0..pool.len())];
            let sg = subgroup[initiator as usize];
            let s = rng.random_range(ev_lo..=ev_hi).min(group.len());
            event.clear();
            event.push(initiator);
            let mut attempts = 0usize;
            while event.len() < s && attempts < 12 * s {
                attempts += 1;
                // 85% of recruits come from the initiator's sub-group.
                let cand = if rng.random_bool(0.85) {
                    let sp = &sub_pool[&sg];
                    sp[rng.random_range(0..sp.len())]
                } else {
                    pool[rng.random_range(0..pool.len())]
                };
                if !event.contains(&cand) {
                    event.push(cand);
                }
            }
            for i in 0..event.len() {
                for j in (i + 1)..event.len() {
                    b.add_edge(event[i], event[j]);
                    edges_added += 1;
                }
            }
            for &u in &event {
                for _ in 0..(event.len() - 1) {
                    pool.push(u);
                    sub_pool.entry(subgroup[u as usize]).or_default().push(u);
                }
            }
        }
    }
    // Cross-community noise.
    if n >= 2 {
        for v in 0..n as VertexId {
            for _ in 0..params.m_inter {
                let u = rng.random_range(0..n as VertexId);
                if u != v && community[u as usize] != community[v as usize] {
                    b.add_edge(v, u);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> GeneratorParams {
        GeneratorParams {
            n: 300,
            communities: 5,
            m_intra: 3,
            m_inter: 1,
            event_size: (3, 6),
            subgroup_size: 15,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticDataset::generate("a", small_params());
        let b = SyntheticDataset::generate("b", small_params());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.community, b.community);
        assert_eq!(a.attributes, b.attributes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::generate("a", small_params());
        let mut p = small_params();
        p.seed = 43;
        let b = SyntheticDataset::generate("b", p);
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn sizes_and_coverage() {
        let d = SyntheticDataset::generate("d", small_params());
        assert_eq!(d.graph.num_vertices(), 300);
        assert_eq!(d.community.len(), 300);
        assert_eq!(d.attributes.len(), 300);
        assert!(d.community.iter().all(|&c| c < 5));
        let (n, m, avg, max) = d.statistics();
        assert_eq!(n, 300);
        assert!(m > 300, "graph too sparse: {m} edges");
        assert!(avg > 2.0);
        assert!(max >= avg as usize);
    }

    #[test]
    fn degree_skew_present() {
        let mut p = small_params();
        p.n = 1000;
        let d = SyntheticDataset::generate("d", p);
        let max = d.graph.max_degree() as f64;
        let avg = d.graph.avg_degree();
        // Preferential attachment should create hubs well above average.
        assert!(max > 2.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn intra_community_edges_dominate() {
        let d = SyntheticDataset::generate("d", small_params());
        let intra = d
            .graph
            .edges()
            .filter(|&(u, v)| d.community[u as usize] == d.community[v as usize])
            .count();
        let total = d.graph.num_edges();
        assert!(
            intra * 2 > total,
            "expected mostly intra-community edges: {intra}/{total}"
        );
    }

    #[test]
    fn single_community_no_inter_edges() {
        let p = GeneratorParams {
            n: 60,
            communities: 1,
            m_inter: 3,
            ..small_params()
        };
        let d = SyntheticDataset::generate("one", p);
        // All edges must be intra (there is only one community).
        assert!(d
            .graph
            .edges()
            .all(|(u, v)| d.community[u as usize] == d.community[v as usize]));
    }

    #[test]
    fn overlaps_reference_other_communities() {
        let mut p = small_params();
        p.overlap_fraction = 0.3;
        let d = SyntheticDataset::generate("d", p);
        assert!(!d.overlaps.is_empty());
        for &(v, c) in &d.overlaps {
            assert_ne!(d.community[v as usize], c);
        }
    }
}
