//! Dataset presets mirroring the paper's Table 3 at laptop scale.
//!
//! | preset          | paper dataset | attributes | metric            |
//! |-----------------|---------------|------------|-------------------|
//! | BrightkiteLike  | Brightkite    | geo points | Euclidean (km)    |
//! | GowallaLike     | Gowalla       | geo points (+ HQ hub) | Euclidean |
//! | DblpLike        | DBLP          | venue keyword counts | weighted Jaccard |
//! | PokecLike       | Pokec         | interest keywords | weighted Jaccard |
//!
//! Sizes are scaled down ~50–500x so that full parameter sweeps finish in
//! seconds; average degrees track Table 3 (6.7 / 4.7 / 8.3 / 10.2). The
//! substitution rationale is documented in `DESIGN.md`.

use crate::attributes::AttributeKind;
use crate::generator::{GeneratorParams, SyntheticDataset};
use serde::{Deserialize, Serialize};

/// Named preset configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// Brightkite-like geo-social network (sparser, no hub).
    BrightkiteLike,
    /// Gowalla-like geo-social network with a headquarters hub city.
    GowallaLike,
    /// DBLP-like co-author network with venue keyword multisets.
    DblpLike,
    /// Pokec-like friendship network with interest keywords (densest).
    PokecLike,
}

impl DatasetPreset {
    /// All four presets in Table 3 order.
    pub fn all() -> [DatasetPreset; 4] {
        [
            DatasetPreset::BrightkiteLike,
            DatasetPreset::GowallaLike,
            DatasetPreset::DblpLike,
            DatasetPreset::PokecLike,
        ]
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::BrightkiteLike => "brightkite-like",
            DatasetPreset::GowallaLike => "gowalla-like",
            DatasetPreset::DblpLike => "dblp-like",
            DatasetPreset::PokecLike => "pokec-like",
        }
    }

    /// Generator parameters at the default (bench) scale.
    pub fn params(self) -> GeneratorParams {
        self.params_scaled(1.0)
    }

    /// Generator parameters with vertex counts multiplied by `scale`
    /// (use < 1 for quick tests, > 1 for stress runs).
    pub fn params_scaled(self, scale: f64) -> GeneratorParams {
        let n = |base: usize| ((base as f64 * scale).round() as usize).max(60);
        match self {
            DatasetPreset::BrightkiteLike => GeneratorParams {
                n: n(1200),
                communities: 24,
                community_exponent: 1.8,
                m_intra: 2, // d_avg ≈ 6.7 in the paper
                m_inter: 1,
                event_size: (3, 6),
                subgroup_size: 16,
                overlap_fraction: 0.03,
                attribute_kind: AttributeKind::Geo {
                    world_size: 4000.0,
                    city_sigma: 3.0,
                    hub_fraction: 0.02,
                },
                seed: 0xB816,
            },
            DatasetPreset::GowallaLike => GeneratorParams {
                n: n(1600),
                communities: 32,
                community_exponent: 1.9,
                m_intra: 1, // d_avg ≈ 4.7, the sparsest
                m_inter: 1,
                event_size: (3, 6),
                subgroup_size: 16,
                overlap_fraction: 0.03,
                attribute_kind: AttributeKind::Geo {
                    world_size: 5000.0,
                    city_sigma: 3.0,
                    hub_fraction: 0.08, // the Austin HQ effect
                },
                seed: 0x60A11A,
            },
            DatasetPreset::DblpLike => GeneratorParams {
                n: n(2000),
                communities: 40,
                community_exponent: 2.0,
                m_intra: 4, // d_avg ≈ 8.3
                m_inter: 1,
                event_size: (3, 8),
                subgroup_size: 16,
                overlap_fraction: 0.05,
                attribute_kind: AttributeKind::Keywords {
                    vocabulary: 600, // "conferences and journals"
                    topic_words: 12,
                    words_per_vertex: 30,
                    zipf_exponent: 1.1,
                },
                seed: 0xDB19,
            },
            DatasetPreset::PokecLike => GeneratorParams {
                n: n(2000),
                communities: 36,
                community_exponent: 2.0,
                m_intra: 4, // d_avg ≈ 10.2, the densest
                m_inter: 1,
                event_size: (4, 9),
                subgroup_size: 16,
                overlap_fraction: 0.04,
                attribute_kind: AttributeKind::Keywords {
                    vocabulary: 400, // "personal interests"
                    topic_words: 14,
                    words_per_vertex: 30,
                    zipf_exponent: 1.05,
                },
                seed: 0x90CEC,
            },
        }
    }

    /// Generates the preset dataset at default scale.
    pub fn generate(self) -> SyntheticDataset {
        SyntheticDataset::generate(self.name(), self.params())
    }

    /// Generates the preset dataset at a given scale factor.
    pub fn generate_scaled(self, scale: f64) -> SyntheticDataset {
        SyntheticDataset::generate(self.name(), self.params_scaled(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_similarity::Metric;

    #[test]
    fn all_presets_generate() {
        for p in DatasetPreset::all() {
            let d = p.generate_scaled(0.25);
            assert!(d.graph.num_vertices() >= 60, "{}", p.name());
            assert!(d.graph.num_edges() > 0, "{}", p.name());
            assert_eq!(d.attributes.len(), d.graph.num_vertices());
        }
    }

    #[test]
    fn metric_families_match_paper() {
        assert_eq!(
            DatasetPreset::BrightkiteLike.generate_scaled(0.1).metric,
            Metric::Euclidean
        );
        assert_eq!(
            DatasetPreset::GowallaLike.generate_scaled(0.1).metric,
            Metric::Euclidean
        );
        assert_eq!(
            DatasetPreset::DblpLike.generate_scaled(0.1).metric,
            Metric::WeightedJaccard
        );
        assert_eq!(
            DatasetPreset::PokecLike.generate_scaled(0.1).metric,
            Metric::WeightedJaccard
        );
    }

    #[test]
    fn density_ordering_tracks_table3() {
        // Pokec densest, Gowalla sparsest (by average degree), per Table 3.
        let avg = |p: DatasetPreset| p.generate_scaled(0.5).graph.avg_degree();
        let gowalla = avg(DatasetPreset::GowallaLike);
        let brightkite = avg(DatasetPreset::BrightkiteLike);
        let pokec = avg(DatasetPreset::PokecLike);
        let dblp = avg(DatasetPreset::DblpLike);
        assert!(
            gowalla < brightkite,
            "gowalla {gowalla} vs brightkite {brightkite}"
        );
        assert!(
            brightkite < pokec,
            "brightkite {brightkite} vs pokec {pokec}"
        );
        assert!(dblp < pokec, "dblp {dblp} vs pokec {pokec}");
    }

    #[test]
    fn names_stable() {
        assert_eq!(DatasetPreset::DblpLike.name(), "dblp-like");
        assert_eq!(DatasetPreset::all().len(), 4);
    }

    #[test]
    fn scaling_changes_size() {
        let small = DatasetPreset::DblpLike.generate_scaled(0.1);
        let big = DatasetPreset::DblpLike.generate_scaled(0.5);
        assert!(small.graph.num_vertices() < big.graph.num_vertices());
    }
}
