//! The accept loop and server lifecycle.
//!
//! One OS thread per connection handles protocol framing and blocks on
//! its client's socket; the *compute* of a query runs on the worker pool
//! the engine builds per query (`kr_core::parallel` — one pool threaded
//! through preprocessing and the subtask phase). Sessions poll their
//! socket with a short read timeout so that a server-wide shutdown flag
//! is observed promptly, which is what makes `shutdown` clean: the accept
//! loop stops, every session thread drains, and `run` returns.

use crate::cache::ComponentCache;
use crate::datasets::DatasetRegistry;
use crate::obs::ServerMetrics;
use crate::protocol::Frame;
use crate::session;
use crate::sync::lock;
use kr_obs::{Field, TraceSink};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Maximum resident preprocessed component sets (LRU beyond that).
    pub cache_capacity: usize,
    /// Ceiling for a query's wall-clock budget. A request asking for more
    /// (or for no limit) is clamped to this; `None` = no ceiling. This is
    /// the server's cancellation mechanism: the engine checks the
    /// deadline at every search node and reports `completed = false`.
    pub max_time_limit_ms: Option<u64>,
    /// Ceiling for a query's search-node budget (`None` = no ceiling).
    pub max_node_limit: Option<u64>,
    /// Largest dataset scale a query may ask the registry to generate.
    pub max_scale: f64,
    /// File-backed datasets to register: `(name, snapshot path)`. Paths
    /// are checked for existence at bind time (fail fast on a typo'd
    /// `--dataset`), but the snapshots themselves open lazily on first
    /// query. A query's `scale` is ignored for these — the file pins the
    /// graph (identity `name@1`).
    pub file_datasets: Vec<(String, String)>,
    /// Where structured trace events (JSON lines) go: `None` disables
    /// tracing, `"-"` writes to stderr, anything else is a file path
    /// opened in append mode at bind time (fail fast on an unwritable
    /// path).
    pub trace_log: Option<String>,
    /// Queries at or above this wall-clock latency emit a `slow_query`
    /// trace event and bump `server.slow_queries`. `0` flags every query
    /// (useful in smoke tests to force an emission).
    pub slow_query_ms: u64,
    /// Connection cap: while this many sessions are live, further
    /// connections are answered with a single `busy` frame and closed
    /// (counted in `server.busy_rejections`) instead of silently queueing
    /// behind a saturated accept loop. `0` = unlimited.
    pub max_connections: usize,
    /// Per-dataset admission limit: at most this many queries in flight
    /// per dataset identity; excess queries get an `error` frame with
    /// code `busy` (counted in `server.admission_rejections`) and the
    /// connection stays usable. `None` = unlimited.
    pub max_queries_per_dataset: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 16,
            max_time_limit_ms: Some(120_000),
            max_node_limit: None,
            max_scale: 2.0,
            file_datasets: Vec::new(),
            trace_log: None,
            slow_query_ms: 1_000,
            max_connections: 256,
            max_queries_per_dataset: None,
        }
    }
}

/// State shared by the accept loop and every session.
pub struct ServerState {
    /// Tunables the server was started with.
    pub config: ServerConfig,
    /// The shared component cache.
    pub cache: ComponentCache,
    /// Resident datasets.
    pub datasets: DatasetRegistry,
    /// This instance's `server.*` metrics (merged with the process-global
    /// registry when answering a `metrics` request).
    pub metrics: ServerMetrics,
    /// Destination for structured trace events (disabled unless
    /// [`ServerConfig::trace_log`] was set).
    pub trace: TraceSink,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    /// Live sessions (incremented before the session thread spawns,
    /// decremented when its [`SessionPermit`] drops) — the connection
    /// cap's book.
    active_sessions: AtomicUsize,
    /// Queries in flight per dataset identity — the admission-control
    /// book. A plain mutex: touched twice per query, never held across
    /// compute.
    admission: Mutex<HashMap<String, usize>>,
}

impl ServerState {
    /// True once a `shutdown` request was accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flags shutdown and pokes the accept loop awake with a throwaway
    /// connection (the listener has no timeout of its own).
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Claims one connection slot (the accept loop has already checked
    /// the cap; the claim itself is unconditional).
    fn claim_session(self: &Arc<Self>) -> SessionPermit {
        self.active_sessions.fetch_add(1, Ordering::SeqCst);
        SessionPermit {
            state: self.clone(),
        }
    }

    /// Admission control: claims one in-flight slot for `dataset_key`, or
    /// reports the configured limit when the dataset is saturated.
    pub(crate) fn try_admit(self: &Arc<Self>, dataset_key: &str) -> Result<AdmissionGuard, usize> {
        let limit = match self.config.max_queries_per_dataset {
            None => {
                // Unlimited: skip the book entirely.
                return Ok(AdmissionGuard {
                    state: self.clone(),
                    key: None,
                });
            }
            Some(limit) => limit.max(1),
        };
        let mut book = lock(&self.admission);
        let in_flight = book.entry(dataset_key.to_string()).or_insert(0);
        if *in_flight >= limit {
            return Err(limit);
        }
        *in_flight += 1;
        Ok(AdmissionGuard {
            state: self.clone(),
            key: Some(dataset_key.to_string()),
        })
    }
}

/// RAII slot in the connection-cap book; dropping it (session thread
/// exit, however it exits) frees the slot.
pub(crate) struct SessionPermit {
    state: Arc<ServerState>,
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.state.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII slot in the per-dataset admission book (`key = None` when
/// admission control is off and nothing was claimed).
pub(crate) struct AdmissionGuard {
    state: Arc<ServerState>,
    key: Option<String>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        if let Some(key) = &self.key {
            let mut book = lock(&self.state.admission);
            if let Some(in_flight) = book.get_mut(key) {
                *in_flight = in_flight.saturating_sub(1);
                if *in_flight == 0 {
                    book.remove(key);
                }
            }
        }
    }
}

/// Writes one `busy` frame and closes the overflow connection. Runs on
/// the accept-loop thread, so the write gets a short timeout: a peer that
/// never drains its receive buffer must not stall accepting.
fn reject_busy(mut stream: TcpStream, max_connections: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut line = Frame::Busy {
        max_connections: max_connections as u64,
        message: format!("server is at its connection cap ({max_connections}); retry later"),
    }
    .to_line();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
    // Dropping the stream closes it.
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and builds the shared state. No connection is
    /// accepted until [`Server::run`] (or [`Server::spawn`]).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let bad_input = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        let mut datasets = DatasetRegistry::new();
        for (name, path) in &config.file_datasets {
            if !std::path::Path::new(path).is_file() {
                return Err(bad_input(format!(
                    "dataset '{name}': snapshot file {path:?} does not exist"
                )));
            }
            datasets.register_file(name, path).map_err(bad_input)?;
        }
        let trace = match config.trace_log.as_deref() {
            None => TraceSink::disabled(),
            Some("-") => TraceSink::stderr(),
            Some(path) => TraceSink::file(path)?,
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            cache: ComponentCache::new(config.cache_capacity),
            datasets,
            metrics: ServerMetrics::new(),
            trace,
            config,
            shutdown: AtomicBool::new(false),
            local_addr,
            active_sessions: AtomicUsize::new(0),
            admission: Mutex::new(HashMap::new()),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Shared state handle (tests read cache stats through this).
    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Serves until a `shutdown` request arrives, then drains all session
    /// threads and returns.
    pub fn run(self) -> std::io::Result<()> {
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.is_shutting_down() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue, // transient accept failure
            };
            // Reap finished sessions so a long-lived server's handle list
            // tracks live connections, not its whole accept history.
            sessions.retain(|h| !h.is_finished());
            let cap = self.state.config.max_connections;
            if cap != 0 && self.state.active_sessions() >= cap {
                self.state.metrics.busy_rejections.inc();
                if self.state.trace.enabled() {
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "unknown".to_string());
                    self.state.trace.event(
                        "",
                        "busy_reject",
                        &[
                            ("peer", Field::S(peer)),
                            ("max_connections", Field::from(cap)),
                        ],
                    );
                }
                reject_busy(stream, cap);
                continue;
            }
            let permit = self.state.claim_session();
            let state = self.state.clone();
            sessions.push(std::thread::spawn(move || {
                session::run_session(stream, state, permit);
            }));
        }
        for handle in sessions {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle with
    /// the resolved address.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = self.state.clone();
        let join = std::thread::spawn(move || self.run());
        ServerHandle { addr, state, join }
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (cache stats etc.).
    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Requests shutdown over the wire and waits for the accept loop and
    /// every session to finish.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        if !self.state.is_shutting_down() {
            match crate::client::Client::connect(self.addr) {
                Ok(mut client) => {
                    let _ = client.shutdown();
                }
                // Listener already gone — flag directly as a fallback.
                Err(_) => self.state.begin_shutdown(),
            }
        }
        self.join.join().expect("server thread panicked")
    }
}
