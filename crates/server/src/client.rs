//! Blocking protocol client.
//!
//! The same client backs `krcore-cli query` and the integration tests
//! (the test driver *is* the shipped client, so the tests exercise the
//! real wire path end to end). One client holds one connection; queries
//! run one at a time with auto-generated correlation ids.

use crate::cache::CacheStats;
use crate::datasets::AttributeValue;
use crate::protocol::{
    CacheOutcome, ErrorCode, Frame, ProtoError, QuerySpec, Request, PROTOCOL_VERSION,
};
use kr_graph::VertexId;
use kr_obs::MetricsSnapshot;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or mid-stream EOF).
    Io(std::io::Error),
    /// The server sent something the protocol layer cannot decode.
    Proto(ProtoError),
    /// The server answered with an `error` frame.
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server refused the connection with a `busy` frame (it is at
    /// its `--max-connections` cap). Back off and retry.
    Busy {
        /// The server's connection cap.
        max_connections: u64,
        /// Human-readable detail.
        message: String,
    },
    /// The server sent a well-formed frame that does not fit the
    /// exchange (wrong id or wrong frame type). Boxed: a `metrics`
    /// frame embeds a full registry snapshot, and the error path
    /// should not inflate every `Result` on the happy path.
    Unexpected(Box<Frame>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{}]: {message}", code.name())
            }
            ClientError::Busy {
                max_connections,
                message,
            } => {
                write!(f, "server busy (cap {max_connections}): {message}")
            }
            ClientError::Unexpected(frame) => write!(f, "unexpected frame: {frame:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Outcome of one enumeration or maximum query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Cores in arrival (streaming) order; 0 or 1 entries for `maximum`.
    pub cores: Vec<Vec<VertexId>>,
    /// False when the server's (or the request's) budget cut the search.
    pub completed: bool,
    /// Whether preprocessing came from the server's component cache.
    pub cache: CacheOutcome,
    /// Server-side wall clock.
    pub elapsed_ms: u64,
    /// Search nodes visited server-side.
    pub nodes: u64,
    /// Server-assigned trace id from the `done` frame (`""` against an
    /// older, untraced server). Grep the server's `--log` output for
    /// this value to see the query's span events.
    pub trace: String,
}

/// Outcome of one mutation batch (`add_edge` / `remove_edge` /
/// `set_attribute`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationResult {
    /// Updates that changed the graph.
    pub applied: u64,
    /// No-op updates (edge already present / already absent / attribute
    /// unchanged) — valid, but skipped.
    pub ignored: u64,
    /// The dataset's version after the batch (unchanged when every
    /// update was a no-op).
    pub version: u64,
    /// Vertices whose coreness changed in some maintained band.
    pub core_updates: u64,
    /// Cached component sets proven still valid and revalidated in
    /// place.
    pub repairs: u64,
    /// Cached component sets the batch could have changed, dropped.
    pub invalidations: u64,
    /// Server-side wall clock for the whole batch.
    pub elapsed_ms: u64,
    /// Server-assigned trace id from the `mutated` frame.
    pub trace: String,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects and validates the server's `hello`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        };
        match client.read_frame()? {
            Frame::Hello { protocol, .. } if protocol == PROTOCOL_VERSION => Ok(client),
            Frame::Hello { protocol, .. } => Err(ClientError::Proto(
                ProtoError::UnsupportedVersion(Some(protocol)),
            )),
            Frame::Busy {
                max_connections,
                message,
            } => Err(ClientError::Busy {
                max_connections,
                message,
            }),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Sends one request line.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Reads one frame (mid-stream EOF is an error).
    pub fn read_frame(&mut self) -> Result<Frame, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(Frame::parse(line.trim_end_matches(['\n', '\r']))?)
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("q{}", self.next_id)
    }

    /// Runs a streamed query to completion: collects `core` frames (in
    /// arrival order) until `done`.
    fn collect(&mut self, id: &str) -> Result<QueryResult, ClientError> {
        let mut cores = Vec::new();
        loop {
            match self.read_frame()? {
                Frame::Core {
                    id: fid, vertices, ..
                } if fid == id => cores.push(vertices),
                Frame::Done {
                    id: fid,
                    trace,
                    completed,
                    cache,
                    elapsed_ms,
                    nodes,
                    count,
                } if fid == id => {
                    if count as usize != cores.len() {
                        return Err(ClientError::Proto(ProtoError::Malformed(format!(
                            "done.count = {count} but {} core frames arrived",
                            cores.len()
                        ))));
                    }
                    return Ok(QueryResult {
                        cores,
                        completed,
                        cache,
                        elapsed_ms,
                        nodes,
                        trace,
                    });
                }
                Frame::Error {
                    id: fid,
                    code,
                    message,
                    ..
                } if fid == id => {
                    return Err(ClientError::Server { code, message });
                }
                other => return Err(ClientError::Unexpected(Box::new(other))),
            }
        }
    }

    /// Enumerates all maximal (k,r)-cores for `spec`.
    pub fn enumerate(&mut self, spec: QuerySpec) -> Result<QueryResult, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Enumerate {
            id: id.clone(),
            spec,
        })?;
        self.collect(&id)
    }

    /// Finds the maximum (k,r)-core for `spec` (`cores` is empty when no
    /// core exists).
    pub fn maximum(&mut self, spec: QuerySpec) -> Result<QueryResult, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Maximum {
            id: id.clone(),
            spec,
        })?;
        self.collect(&id)
    }

    /// Fetches the server's component-cache statistics.
    pub fn stats(&mut self) -> Result<CacheStats, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id: id.clone() })?;
        match self.read_frame()? {
            Frame::Stats { id: fid, stats, .. } if fid == id => Ok(stats),
            Frame::Error {
                id: fid,
                code,
                message,
                ..
            } if fid == id => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Fetches the server's metrics-registry snapshot (counters, gauges,
    /// and latency histograms with full bucket detail).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Metrics { id: id.clone() })?;
        match self.read_frame()? {
            Frame::Metrics {
                id: fid, snapshot, ..
            } if fid == id => Ok(snapshot),
            Frame::Error {
                id: fid,
                code,
                message,
                ..
            } if fid == id => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Waits for the `mutated` ack to a mutation batch.
    fn collect_mutation(&mut self, id: &str) -> Result<MutationResult, ClientError> {
        match self.read_frame()? {
            Frame::Mutated {
                id: fid,
                trace,
                applied,
                ignored,
                version,
                core_updates,
                repairs,
                invalidations,
                elapsed_ms,
            } if fid == id => Ok(MutationResult {
                applied,
                ignored,
                version,
                core_updates,
                repairs,
                invalidations,
                elapsed_ms,
                trace,
            }),
            Frame::Error {
                id: fid,
                code,
                message,
                ..
            } if fid == id => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Inserts a batch of edges into a resident dataset. The whole batch
    /// is validated before any edge is applied; edges already present
    /// count as `ignored`.
    pub fn add_edges(
        &mut self,
        dataset: &str,
        scale: f64,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<MutationResult, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::AddEdges {
            id: id.clone(),
            dataset: dataset.to_string(),
            scale,
            edges,
        })?;
        self.collect_mutation(&id)
    }

    /// Removes a batch of edges from a resident dataset; edges already
    /// absent count as `ignored`.
    pub fn remove_edges(
        &mut self,
        dataset: &str,
        scale: f64,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<MutationResult, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::RemoveEdges {
            id: id.clone(),
            dataset: dataset.to_string(),
            scale,
            edges,
        })?;
        self.collect_mutation(&id)
    }

    /// Replaces vertex attributes on a resident dataset. Every update
    /// must match the dataset's attribute family (points / keywords /
    /// vectors of the right dimension).
    pub fn set_attributes(
        &mut self,
        dataset: &str,
        scale: f64,
        updates: Vec<(VertexId, AttributeValue)>,
    ) -> Result<MutationResult, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::SetAttributes {
            id: id.clone(),
            dataset: dataset.to_string(),
            scale,
            updates,
        })?;
        self.collect_mutation(&id)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Ping { id: id.clone() })?;
        match self.read_frame()? {
            Frame::Pong { id: fid, .. } if fid == id => Ok(()),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Asks the server to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Shutdown { id: id.clone() })?;
        match self.read_frame()? {
            Frame::ShuttingDown { id: fid, .. } if fid == id => Ok(()),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }
}
