//! Server-side observability: the per-instance `server.*` metrics.
//!
//! Each server instance owns its own [`kr_obs::Registry`] so that
//! instance totals are exact — in particular the acceptance invariant
//! that the `server.query_latency_us` bucket counts sum to the number
//! of queries the instance served, which a process-global registry
//! could not guarantee with several servers in one process (tests, or
//! one binary hosting multiple listeners). Library-layer metrics
//! (`graph.*`, `similarity.*`, `engine.*`) accumulate on the
//! process-global registry and are merged in at snapshot time.

use crate::protocol::ProtoError;
use kr_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::sync::Arc;

/// Cached handles to every `server.*` metric (the registry lock is taken
/// once, at construction).
pub struct ServerMetrics {
    /// The instance registry backing the handles below.
    pub registry: Registry,
    /// Connections accepted.
    pub connections: Arc<Counter>,
    /// Enumerate/maximum queries accepted (before validation).
    pub queries: Arc<Counter>,
    /// Queries that ended in an error frame (bad scale, unknown dataset).
    pub query_errors: Arc<Counter>,
    /// Request lines rejected as malformed (bad JSON or schema).
    pub requests_malformed: Arc<Counter>,
    /// Request lines rejected for a protocol-version mismatch.
    pub requests_version_rejected: Arc<Counter>,
    /// Queries whose latency crossed the slow-query threshold.
    pub slow_queries: Arc<Counter>,
    /// `core` frames written.
    pub cores_streamed: Arc<Counter>,
    /// Connections refused with a `busy` frame at the `--max-connections`
    /// cap.
    pub busy_rejections: Arc<Counter>,
    /// Queries refused with a `busy` error by per-dataset admission
    /// control (`--max-queries-per-dataset`).
    pub admission_rejections: Arc<Counter>,
    /// Queries abandoned because the client disconnected mid-flight
    /// (detected between streamed frames or on a peer-disconnect write
    /// error). Distinct from `query_errors`: the server was healthy, the
    /// client hung up.
    pub client_aborts: Arc<Counter>,
    /// Mutation batches accepted (`add_edge` / `remove_edge` /
    /// `set_attribute`). Counted separately from `server.queries` so the
    /// query-accounting identity (latency samples + aborts + rejections
    /// + errors = queries) is undisturbed by write traffic.
    pub mutations: Arc<Counter>,
    /// Mutation batches that ended in an error frame (bad scale, unknown
    /// dataset, rejected batch).
    pub mutation_errors: Arc<Counter>,
    /// Individual updates that changed a dataset (batch `applied` sums).
    pub updates_applied: Arc<Counter>,
    /// Queries currently executing.
    pub active_queries: Arc<Gauge>,
    /// End-to-end latency of successfully answered queries, µs.
    pub query_latency_us: Arc<Histogram>,
    /// Preprocessing time on cache misses, µs.
    pub preprocess_us: Arc<Histogram>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// A fresh instance registry with every metric registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            connections: registry.counter("server.connections"),
            queries: registry.counter("server.queries"),
            query_errors: registry.counter("server.query_errors"),
            requests_malformed: registry.counter("server.requests_malformed"),
            requests_version_rejected: registry.counter("server.requests_version_rejected"),
            slow_queries: registry.counter("server.slow_queries"),
            cores_streamed: registry.counter("server.cores_streamed"),
            busy_rejections: registry.counter("server.busy_rejections"),
            admission_rejections: registry.counter("server.admission_rejections"),
            client_aborts: registry.counter("server.client_aborts"),
            mutations: registry.counter("server.mutations"),
            mutation_errors: registry.counter("server.mutation_errors"),
            updates_applied: registry.counter("server.updates_applied"),
            active_queries: registry.gauge("server.active_queries"),
            query_latency_us: registry.histogram("server.query_latency_us"),
            preprocess_us: registry.histogram("server.preprocess_us"),
            registry,
        }
    }

    /// Classifies and counts a rejected request line: version mismatches
    /// and everything else (bad JSON, schema violations) are tracked
    /// separately — the two have different operational meanings (stale
    /// client fleet vs. buggy/hostile client).
    pub fn record_request_error(&self, e: &ProtoError) {
        match e {
            ProtoError::UnsupportedVersion(_) => self.requests_version_rejected.inc(),
            ProtoError::Json(_) | ProtoError::Malformed(_) => self.requests_malformed.inc(),
        }
    }

    /// What a `metrics` wire request returns: this instance's registry
    /// merged with the process-global one (`graph.*`, `similarity.*`,
    /// `engine.*`).
    pub fn wire_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot().merge(&kr_obs::global().snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonError;

    #[test]
    fn request_errors_classified() {
        let m = ServerMetrics::new();
        m.record_request_error(&ProtoError::Json(JsonError {
            message: "trailing data".into(),
            offset: 3,
        }));
        m.record_request_error(&ProtoError::Malformed("missing 'cmd'".into()));
        m.record_request_error(&ProtoError::UnsupportedVersion(Some(2)));
        m.record_request_error(&ProtoError::UnsupportedVersion(None));
        assert_eq!(m.requests_malformed.get(), 2);
        assert_eq!(m.requests_version_rejected.get(), 2);
        // And both surface in the wire snapshot under their names.
        let snap = m.wire_snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        assert_eq!(get("server.requests_malformed"), Some(2));
        assert_eq!(get("server.requests_version_rejected"), Some(2));
    }

    #[test]
    fn wire_snapshot_includes_global_registry() {
        let m = ServerMetrics::new();
        kr_obs::global().counter("test.obs_merge_marker").inc();
        let snap = m.wire_snapshot();
        assert!(
            snap.counters
                .iter()
                .any(|(n, v)| n == "test.obs_merge_marker" && *v >= 1),
            "global metrics must be merged into the wire snapshot"
        );
        assert!(snap
            .histograms
            .iter()
            .any(|(n, _)| n == "server.query_latency_us"));
    }
}
