//! LRU cache of preprocessed component sets.
//!
//! Preprocessing (drop dissimilar edges → k-core peel → connected
//! components → arena build over the metric-aware candidate indexes)
//! dominates small and medium queries, and its output depends only on
//! `(dataset, k, r)` — not on the algorithm, thread count, or limits. The
//! server therefore shares one [`ComponentCache`] across all connections:
//! enumeration and maximum queries for the same parameters, from any
//! client, reuse the same immutable [`LocalComponent`] set through an
//! `Arc`.
//!
//! Keys quantize `r` onto a fixed grid ([`r_band`]) so that float noise
//! (`0.3` vs `0.30000000000000004`) cannot split one logical threshold
//! into distinct entries, and so the key is hashable at all. The band is
//! far finer than any meaningful threshold difference in the paper's
//! parameter sweeps.

use crate::sync::lock;
use kr_core::LocalComponent;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default shard-count ceiling for [`ComponentCache::new`]. The actual
/// count also respects [`MIN_SHARD_CAPACITY`], so tiny caches stay
/// unsharded.
pub const DEFAULT_SHARDS: usize = 8;

/// [`ComponentCache::new`] never picks a shard count that would leave a
/// shard fewer than this many slots: hash skew across near-empty shards
/// would otherwise evict entries a global LRU of the same total capacity
/// would keep.
const MIN_SHARD_CAPACITY: usize = 4;

/// Width of one r-band: thresholds are quantized to this grid.
pub const R_BAND_WIDTH: f64 = 1e-9;

/// Quantizes a similarity threshold onto the cache's r-band grid.
pub fn r_band(r: f64) -> i64 {
    (r / R_BAND_WIDTH).round() as i64
}

/// Cache key: dataset identity (name + scale, as registered by the
/// dataset registry) plus the query parameters preprocessing depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset identity string (e.g. `"gowalla-like@0.25"`).
    pub dataset: String,
    /// Degree threshold.
    pub k: u32,
    /// Quantized similarity threshold (see [`r_band`]).
    pub r_band: i64,
}

/// Counter snapshot (also a wire type — see `protocol::Frame::Stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to preprocess.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Flat memory footprint of all resident component sets, in bytes.
    /// Exact, not an estimate: the CSR arenas have no per-vertex
    /// allocations, so [`LocalComponent::memory_bytes`] covers every heap
    /// byte an entry owns. Re-sampled from the live entries at snapshot
    /// time rather than ledgered at insert: lazily materialized
    /// dissimilarity rows grow an entry *after* it is cached, and the
    /// snapshot must account for them.
    pub resident_bytes: u64,
    /// Total wall-clock milliseconds spent preprocessing on cache
    /// misses. Together with `misses` this gives operators the average
    /// cold-query preprocessing cost.
    pub preprocess_ms: u64,
    /// Total similarity-metric evaluations spent by cache-miss
    /// preprocessing. The candidate indexes (PR 4) keep this far below
    /// the brute-force `Σ n_c·(n_c-1)/2`; watching it reveals the index
    /// leverage per dataset.
    pub oracle_evals: u64,
    /// Cache misses that were resolved through the dataset's (k,r)-core
    /// decomposition index (PR 6) instead of whole-graph preprocessing.
    pub index_hits: u64,
    /// Total candidate vertices the decomposition index handed to those
    /// miss-path preprocessing runs. `residual_vertices / index_hits`
    /// against the graph size shows how much of the graph the index let
    /// the server skip.
    pub residual_vertices: u64,
    /// Entries a mutation's repair pass proved still valid and kept
    /// (version-bumped in place) instead of recomputing. See
    /// [`ComponentCache::repair_after_mutation`].
    pub repairs: u64,
    /// Entries a mutation's repair pass had to drop because the deltas
    /// could have changed their component sets. `repairs + invalidations`
    /// totals every resident entry each mutation touched — the write-
    /// traffic accounting identity (`docs/OPERATIONS.md`).
    pub invalidations: u64,
}

/// What one [`ComponentCache::get_or_build`] lookup did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Served from a resident entry at the caller's dataset version.
    pub hit: bool,
    /// This caller's build was the one inserted — the unique owner of
    /// the miss's statistics. A caller that built but lost the insert
    /// race (`hit == false, won == false`) must not attribute
    /// preprocessing stats: exactly one miss is counted per logical
    /// build.
    pub won: bool,
}

struct Entry {
    comps: Arc<Vec<LocalComponent>>,
    /// Dataset version the components were preprocessed against. A
    /// lookup at a different version bypasses the entry (stale data is
    /// never served); a mutation's repair pass bumps it in place when
    /// the deltas provably cannot have changed the entry.
    version: u64,
    /// Last-use tick for LRU eviction.
    used: u64,
}

/// Flat footprint of one cached component set **right now**. Not a
/// constant: a component built with a lazy dissimilarity view grows as
/// searches materialize rows, so footprints are re-sampled per snapshot
/// instead of recorded once at insert.
fn entry_bytes(comps: &[LocalComponent]) -> u64 {
    comps.iter().map(|c| c.memory_bytes() as u64).sum()
}

/// One shard: an independent LRU map under its own lock.
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct Shard {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// Thread-safe LRU cache of preprocessed component sets, sharded by key
/// hash so concurrent lookups for different keys contend on different
/// locks (a miss's *build* already ran outside the lock; sharding also
/// unserializes the bookkeeping around it under concurrent load).
///
/// Each shard runs an independent LRU over its slice of the capacity, so
/// eviction is LRU-per-shard, not a single global order: a skewed key
/// distribution can evict from a full shard while another has free slots.
/// The total capacity bound is exact (shard capacities sum to the
/// requested capacity) and all statistics are merged across shards —
/// [`ComponentCache::stats`] reports the same totals a single-lock cache
/// would on any workload that fits in capacity.
pub struct ComponentCache {
    shards: Vec<Shard>,
    preprocess_ms: AtomicU64,
    oracle_evals: AtomicU64,
    index_hits: AtomicU64,
    residual_vertices: AtomicU64,
    repairs: AtomicU64,
    invalidations: AtomicU64,
}

impl ComponentCache {
    /// A cache holding at most `capacity` component sets (≥ 1), sharded
    /// up to [`DEFAULT_SHARDS`] ways while keeping every shard at least
    /// [`MIN_SHARD_CAPACITY`] slots (small caches stay unsharded).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = (capacity / MIN_SHARD_CAPACITY).clamp(1, DEFAULT_SHARDS);
        ComponentCache::with_shards(capacity, shards)
    }

    /// A cache with an explicit shard count (clamped to `[1, capacity]`).
    /// `capacity` is split across shards as evenly as possible; the shard
    /// capacities sum to exactly `capacity`.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let n = shards.clamp(1, capacity);
        let (base, rem) = (capacity / n, capacity % n);
        ComponentCache {
            shards: (0..n)
                .map(|i| Shard {
                    capacity: base + usize::from(i < rem),
                    inner: Mutex::new(Inner {
                        map: HashMap::new(),
                        tick: 0,
                        hits: 0,
                        misses: 0,
                        evictions: 0,
                    }),
                })
                .collect(),
            preprocess_ms: AtomicU64::new(0),
            oracle_evals: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            residual_vertices: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Number of shards this cache was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// Looks up `key` at dataset `version`, running `build` on a miss.
    /// Returns the shared component set and what the lookup did.
    ///
    /// A resident entry counts as a hit only when its recorded dataset
    /// version matches `version`: an entry preprocessed before a
    /// mutation (and not repaired to the new version) is stale and is
    /// rebuilt through `build`, never served.
    ///
    /// Only `key`'s shard is locked, and its lock is **not** held while
    /// `build` runs, so a slow preprocessing pass never blocks queries
    /// for other keys (or cache-hit queries for the same key issued
    /// earlier). Two clients racing on the same cold key may both build;
    /// the first insert wins, the loser adopts the winner's arena, and
    /// **only the winner counts the miss** — cumulative miss statistics
    /// (`misses`, `preprocess_ms`, `oracle_evals`) describe logical
    /// builds, not racers (see [`LookupOutcome::won`]).
    pub fn get_or_build(
        &self,
        key: &CacheKey,
        version: u64,
        build: impl FnOnce() -> Vec<LocalComponent>,
    ) -> (Arc<Vec<LocalComponent>>, LookupOutcome) {
        let shard = self.shard(key);
        {
            let mut inner = lock(&shard.inner);
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(key) {
                if entry.version == version {
                    entry.used = tick;
                    let comps = entry.comps.clone();
                    inner.hits += 1;
                    return (
                        comps,
                        LookupOutcome {
                            hit: true,
                            won: false,
                        },
                    );
                }
                // Stale version: fall through to a rebuild. The entry is
                // left in place so concurrent same-version lookups still
                // hit; the insert below replaces it.
            }
        }
        let comps = Arc::new(build());
        let mut inner = lock(&shard.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let (comps, won) = match inner.map.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let e = slot.get_mut();
                if e.version >= version {
                    // Lost the race (or a fresher build/repair landed
                    // mid-flight): adopt the resident arena, count
                    // nothing — the winner already booked this build.
                    e.used = tick;
                    (e.comps.clone(), false)
                } else {
                    // The resident entry is older than our build:
                    // replace it.
                    *e = Entry {
                        comps: comps.clone(),
                        version,
                        used: tick,
                    };
                    (comps, true)
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Entry {
                    comps: comps.clone(),
                    version,
                    used: tick,
                });
                (comps, true)
            }
        };
        if won {
            inner.misses += 1;
        }
        while inner.map.len() > shard.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            inner.map.remove(&victim).expect("victim present");
            inner.evictions += 1;
        }
        (comps, LookupOutcome { hit: false, won })
    }

    /// Invalidate-and-repair pass after a dataset mutation: every
    /// resident entry belonging to `dataset` is either **repaired** —
    /// `keep` proved the mutation's deltas cannot have changed its
    /// component set, so its version is bumped to `new_version` in place
    /// and the preprocessed arenas keep serving — or **invalidated**
    /// (dropped; the next query rebuilds). Returns `(repairs,
    /// invalidations)`; the totals also accumulate into
    /// [`CacheStats::repairs`] / [`CacheStats::invalidations`].
    ///
    /// `keep` runs outside the shard locks (it may probe similarity
    /// oracles and the decomposition index); an entry that changes under
    /// us while unlocked — replaced by a concurrent insert at a newer
    /// version — is left alone.
    pub fn repair_after_mutation(
        &self,
        dataset: &str,
        new_version: u64,
        mut keep: impl FnMut(&CacheKey, &[LocalComponent]) -> bool,
    ) -> (u64, u64) {
        let mut repairs = 0u64;
        let mut invalidations = 0u64;
        for shard in &self.shards {
            let sampled: Vec<(CacheKey, Arc<Vec<LocalComponent>>, u64)> = {
                let inner = lock(&shard.inner);
                inner
                    .map
                    .iter()
                    .filter(|(k, e)| k.dataset == dataset && e.version < new_version)
                    .map(|(k, e)| (k.clone(), e.comps.clone(), e.version))
                    .collect()
            };
            if sampled.is_empty() {
                continue;
            }
            let verdicts: Vec<(CacheKey, u64, bool)> = sampled
                .into_iter()
                .map(|(k, comps, version)| {
                    let kept = keep(&k, &comps);
                    (k, version, kept)
                })
                .collect();
            let mut inner = lock(&shard.inner);
            for (k, version, kept) in verdicts {
                // Only touch the entry we classified: a concurrent
                // insert may have replaced it while the lock was free.
                let Some(e) = inner.map.get_mut(&k) else {
                    continue;
                };
                if e.version != version {
                    continue;
                }
                if kept {
                    e.version = new_version;
                    repairs += 1;
                } else {
                    inner.map.remove(&k);
                    invalidations += 1;
                }
            }
        }
        self.repairs.fetch_add(repairs, Ordering::Relaxed);
        self.invalidations
            .fetch_add(invalidations, Ordering::Relaxed);
        (repairs, invalidations)
    }

    /// Records the cost of one cache-miss preprocessing pass (wall
    /// milliseconds and similarity-metric evaluations). Called by the
    /// session after `get_or_build` returns a miss, so the counters are
    /// attributed even when a concurrent insert won the race.
    pub fn record_preprocess(&self, elapsed_ms: u64, oracle_evals: u64) {
        self.preprocess_ms.fetch_add(elapsed_ms, Ordering::Relaxed);
        self.oracle_evals.fetch_add(oracle_evals, Ordering::Relaxed);
    }

    /// Records one cache miss resolved through the decomposition index:
    /// the miss-path preprocessing ran over `residual_vertices` index
    /// candidates instead of the whole graph.
    pub fn record_index(&self, residual_vertices: u64) {
        self.index_hits.fetch_add(1, Ordering::Relaxed);
        self.residual_vertices
            .fetch_add(residual_vertices, Ordering::Relaxed);
    }

    /// Counter snapshot, merged across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            preprocess_ms: self.preprocess_ms.load(Ordering::Relaxed),
            oracle_evals: self.oracle_evals.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            residual_vertices: self.residual_vertices.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let inner = lock(&shard.inner);
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.evictions += inner.evictions;
            stats.entries += inner.map.len();
            // Exact at snapshot time: lazy dissimilarity rows materialized
            // since insert are included (see `entry_bytes`).
            stats.resident_bytes += inner
                .map
                .values()
                .map(|e| entry_bytes(&e.comps))
                .sum::<u64>();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dataset: &str, k: u32, r: f64) -> CacheKey {
        CacheKey {
            dataset: dataset.to_string(),
            k,
            r_band: r_band(r),
        }
    }

    fn dummy() -> Vec<LocalComponent> {
        vec![LocalComponent::from_parts(
            vec![vec![1], vec![0]],
            vec![vec![], vec![]],
            1,
        )]
    }

    #[test]
    fn hit_after_miss() {
        let cache = ComponentCache::new(4);
        let k1 = key("d", 3, 0.25);
        let (a, out) = cache.get_or_build(&k1, 0, dummy);
        assert_eq!(
            out,
            LookupOutcome {
                hit: false,
                won: true
            }
        );
        let (b, out) = cache.get_or_build(&k1, 0, || panic!("must not rebuild"));
        assert!(out.hit);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn version_mismatch_is_a_miss_and_replaces_the_stale_entry() {
        let cache = ComponentCache::new(4);
        let k1 = key("d", 3, 0.25);
        cache.get_or_build(&k1, 0, dummy);
        // The dataset mutated (version 1): the resident version-0 entry
        // must not be served.
        let (_, out) = cache.get_or_build(&k1, 1, dummy);
        assert_eq!(
            out,
            LookupOutcome {
                hit: false,
                won: true
            }
        );
        // And the rebuild replaced it: version 1 now hits.
        let (_, out) = cache.get_or_build(&k1, 1, || panic!("must not rebuild"));
        assert!(out.hit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn racing_builders_count_one_miss_total() {
        // The PR 10 double-count pin: two clients race the same cold
        // key; both build, one insert wins, and the merged stats must
        // describe ONE logical build — `misses == 1` and exactly one
        // racer reporting `won` (the one licensed to attribute
        // preprocess stats).
        let cache = Arc::new(ComponentCache::new(4));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let racers: Vec<_> = (0..2)
            .map(|_| {
                let cache = cache.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let k = key("cold", 3, 0.25);
                    let (_, out) = cache.get_or_build(&k, 0, || {
                        barrier.wait(); // both racers are now inside build
                        dummy()
                    });
                    out
                })
            })
            .collect();
        let outcomes: Vec<LookupOutcome> = racers.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(outcomes.iter().all(|o| !o.hit));
        assert_eq!(outcomes.iter().filter(|o| o.won).count(), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one logical build, one miss");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn repair_pass_bumps_kept_entries_and_drops_the_rest() {
        let cache = ComponentCache::new(8);
        cache.get_or_build(&key("d", 2, 0.1), 0, dummy);
        cache.get_or_build(&key("d", 3, 0.1), 0, dummy);
        cache.get_or_build(&key("other", 2, 0.1), 0, dummy);
        // Keep k=2 entries, drop the rest; "other" must be untouched.
        let (repairs, invalidations) = cache.repair_after_mutation("d", 1, |k, _| k.k == 2);
        assert_eq!((repairs, invalidations), (1, 1));
        let stats = cache.stats();
        assert_eq!((stats.repairs, stats.invalidations), (1, 1));
        assert_eq!(stats.entries, 2);
        // The repaired entry serves version 1 without a rebuild...
        let (_, out) = cache.get_or_build(&key("d", 2, 0.1), 1, || panic!("repaired"));
        assert!(out.hit);
        // ...the invalidated one rebuilds...
        let (_, out) = cache.get_or_build(&key("d", 3, 0.1), 1, dummy);
        assert!(!out.hit);
        // ...and the other dataset still hits at its own version.
        let (_, out) = cache.get_or_build(&key("other", 2, 0.1), 0, || panic!("untouched"));
        assert!(out.hit);
    }

    #[test]
    fn panicking_build_leaves_the_shard_usable() {
        // The PR 10 lock-poisoning pin: a session that panics mid-build
        // (engine bug, poisoned downstream lock, anything) must not
        // brick the shard for every later query.
        let cache = Arc::new(ComponentCache::with_shards(4, 1));
        let k1 = key("d", 3, 0.25);
        let cache2 = cache.clone();
        let k = k1.clone();
        let result = std::thread::spawn(move || {
            cache2.get_or_build(&k, 0, || panic!("build blew up"));
        })
        .join();
        assert!(result.is_err(), "the build must have panicked");
        // Same shard (single-shard cache), same key: serving continues.
        let (_, out) = cache.get_or_build(&k1, 0, dummy);
        assert_eq!(
            out,
            LookupOutcome {
                hit: false,
                won: true
            }
        );
        let (_, out) = cache.get_or_build(&k1, 0, || panic!("must not rebuild"));
        assert!(out.hit);
    }

    #[test]
    fn poisoned_shard_lock_recovers_and_counts() {
        // Stronger than the panicking-build pin: poison the shard's
        // actual mutex (a panic while holding it) and verify lookups
        // recover through `sync::lock` instead of propagating the
        // poison, bumping `server.lock_recoveries`.
        let cache = Arc::new(ComponentCache::with_shards(4, 1));
        let before = crate::sync::lock_recoveries().get();
        let cache2 = cache.clone();
        let _ = std::thread::spawn(move || {
            let _guard = cache2.shards[0].inner.lock().unwrap();
            panic!("poison the shard lock");
        })
        .join();
        let (_, out) = cache.get_or_build(&key("d", 3, 0.25), 0, dummy);
        assert_eq!(
            out,
            LookupOutcome {
                hit: false,
                won: true
            }
        );
        let (_, out) = cache.get_or_build(&key("d", 3, 0.25), 0, || panic!("cached"));
        assert!(out.hit);
        assert!(cache.stats().entries == 1);
        assert!(
            crate::sync::lock_recoveries().get() > before,
            "recoveries must be counted"
        );
    }

    #[test]
    fn r_band_absorbs_float_noise() {
        assert_eq!(key("d", 3, 0.3), key("d", 3, 0.3 + 1e-16));
        assert_ne!(key("d", 3, 0.3), key("d", 3, 0.31));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ComponentCache::new(2);
        let (ka, kb, kc) = (key("a", 1, 0.1), key("b", 1, 0.1), key("c", 1, 0.1));
        cache.get_or_build(&ka, 0, dummy);
        cache.get_or_build(&kb, 0, dummy);
        cache.get_or_build(&ka, 0, dummy); // refresh a; b is now LRU
        cache.get_or_build(&kc, 0, dummy); // evicts b
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        let (_, out) = cache.get_or_build(&ka, 0, dummy);
        assert!(out.hit, "a must survive");
        let (_, out) = cache.get_or_build(&kb, 0, dummy);
        assert!(!out.hit, "b was evicted");
    }

    #[test]
    fn resident_bytes_track_inserts_and_evictions() {
        let cache = ComponentCache::new(1);
        let per_entry = entry_bytes(&dummy());
        assert!(per_entry > 0);
        cache.get_or_build(&key("a", 1, 0.1), 0, dummy);
        assert_eq!(cache.stats().resident_bytes, per_entry);
        // Same key again: a hit, no double counting.
        cache.get_or_build(&key("a", 1, 0.1), 0, dummy);
        assert_eq!(cache.stats().resident_bytes, per_entry);
        // New key evicts the old entry: footprint stays one entry's worth.
        cache.get_or_build(&key("b", 1, 0.1), 0, dummy);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.resident_bytes, per_entry);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn resident_bytes_grow_as_lazy_rows_materialize() {
        use kr_core::ProblemInstance;
        use kr_similarity::{AttributeTable, DissimMode, Metric, Threshold};
        // Two bridged 4-cliques with cross-side dissimilar pairs; force
        // the lazy dissimilarity view so rows materialize on first touch.
        let mut edges = vec![];
        for group in [[0u32, 1, 2, 3], [3u32, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((group[i], group[j]));
                }
            }
        }
        let g = kr_graph::Graph::from_edges(7, &edges);
        let pts = vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (5.0, 0.0),
            (10.0, 0.0),
            (11.0, 0.0),
            (10.0, 1.0),
        ];
        let p = ProblemInstance::new(
            g,
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(7.0),
            2,
        )
        .with_dissim_mode(DissimMode::Lazy);
        let cache = ComponentCache::new(2);
        let (comps, out) = cache.get_or_build(&key("lazy", 2, 7.0), 0, || p.preprocess());
        assert!(!out.hit);
        assert!(comps.iter().any(|c| c.is_dissimilarity_lazy()));
        let before = cache.stats().resident_bytes;
        // Touch every dissimilarity row through the slice accessor — the
        // materialization point — and re-snapshot: the entry grew in
        // place, and the stats must see it without a re-insert.
        let mut materialized = 0usize;
        for c in comps.iter() {
            for v in 0..c.len() as u32 {
                materialized += c.dissimilar(v).len();
            }
        }
        assert!(materialized > 0, "instance must have dissimilar pairs");
        let after = cache.stats().resident_bytes;
        assert!(
            after > before,
            "snapshot must grow with materialized rows ({before} -> {after})"
        );
    }

    #[test]
    fn preprocess_counters_accumulate() {
        let cache = ComponentCache::new(4);
        assert_eq!(cache.stats().preprocess_ms, 0);
        assert_eq!(cache.stats().oracle_evals, 0);
        cache.record_preprocess(12, 400);
        cache.record_preprocess(3, 100);
        let stats = cache.stats();
        assert_eq!(stats.preprocess_ms, 15);
        assert_eq!(stats.oracle_evals, 500);
    }

    #[test]
    fn index_counters_accumulate() {
        let cache = ComponentCache::new(4);
        assert_eq!(cache.stats().index_hits, 0);
        assert_eq!(cache.stats().residual_vertices, 0);
        cache.record_index(120);
        cache.record_index(30);
        let stats = cache.stats();
        assert_eq!(stats.index_hits, 2);
        assert_eq!(stats.residual_vertices, 150);
    }

    #[test]
    fn shard_count_respects_capacity_and_min_slots() {
        assert_eq!(ComponentCache::new(1).shard_count(), 1);
        assert_eq!(ComponentCache::new(8).shard_count(), 2);
        assert_eq!(ComponentCache::new(16).shard_count(), 4);
        assert_eq!(ComponentCache::new(1024).shard_count(), DEFAULT_SHARDS);
        // Explicit shard counts are clamped to [1, capacity].
        assert_eq!(ComponentCache::with_shards(2, 8).shard_count(), 2);
        assert_eq!(ComponentCache::with_shards(64, 0).shard_count(), 1);
    }

    #[test]
    fn shard_capacities_sum_to_requested_capacity() {
        // 10 slots over 4 shards: 3+3+2+2. Overfill with distinct keys
        // and check the merged entry count never exceeds the requested
        // capacity (the per-shard bounds sum exactly to it).
        let cache = ComponentCache::with_shards(10, 4);
        for i in 0..50 {
            cache.get_or_build(&key(&format!("d{i}"), 1, 0.1), 0, dummy);
        }
        let stats = cache.stats();
        assert!(stats.entries <= 10, "entries = {}", stats.entries);
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.evictions as usize, 50 - stats.entries);
    }

    #[test]
    fn sharded_stats_match_single_lock_totals() {
        // The PR 8 equivalence check: replay one workload (hits, misses,
        // preprocess/index attributions — no evictions, the capacity is
        // ample) against a single-lock cache and an 8-way sharded one.
        // The merged statistics must be identical.
        let replay = |cache: &ComponentCache| {
            for round in 0..3 {
                for i in 0..16 {
                    let k = key(&format!("d{}", i % 8), 2 + (i % 3) as u32, 0.1 * i as f64);
                    let (_, out) = cache.get_or_build(&k, 0, dummy);
                    if out.won {
                        cache.record_preprocess(5, 100);
                        cache.record_index(40);
                    }
                    let _ = round;
                }
            }
            cache.stats()
        };
        let single = replay(&ComponentCache::with_shards(64, 1));
        let sharded = replay(&ComponentCache::with_shards(64, 8));
        assert_eq!(single, sharded);
        assert!(single.hits > 0 && single.misses > 0);
        assert_eq!(single.evictions, 0);
    }

    #[test]
    fn distinct_params_distinct_entries() {
        let cache = ComponentCache::new(8);
        cache.get_or_build(&key("d", 3, 0.25), 0, dummy);
        let (_, out) = cache.get_or_build(&key("d", 4, 0.25), 0, dummy);
        assert!(!out.hit);
        let (_, out) = cache.get_or_build(&key("d", 3, 0.5), 0, dummy);
        assert!(!out.hit);
        assert_eq!(cache.stats().entries, 3);
    }
}
