//! Datasets hosted by the server.
//!
//! Two families of entries share one registry:
//!
//! * **Presets** — the named synthetic datasets
//!   ([`kr_datagen::DatasetPreset`], the repo's stand-ins for the paper's
//!   Table 3 networks). Generation is deterministic per `(preset,
//!   scale)`, so the identity string `"name@scale"` pins the exact graph.
//! * **File-backed** — `.krb` dataset snapshots registered at `serve`
//!   time (`--dataset name=path.krb`). The file pins the graph, so the
//!   query's `scale` is irrelevant and the identity is always
//!   `dataset_key(name, 1.0)` — every scale a client sends maps to the
//!   same resident dataset and the same component-cache entries. Files
//!   open **lazily**: the snapshot is read and verified on the first
//!   query that names it, then kept resident like a generated preset.
//!
//! In both cases the identity string is the registry key and the dataset
//! half of the component-cache key, and resident data is shared via
//! `Arc`: loaded once per server lifetime, not once per query.
//!
//! ## Mutation
//!
//! A hosted dataset is no longer frozen at load time: `add_edge` /
//! `remove_edge` / `set_attribute` requests flow through
//! [`HostedDataset::apply_batch`]. The graph, attributes, and
//! decomposition index live behind one `RwLock`'d [`DatasetState`] whose
//! **version** increments on every effective batch; queries take an
//! immutable [`DatasetView`] snapshot and the component cache keys its
//! entries by that version, so a query racing a mutation computes against
//! a consistent (graph, attributes, index) triple — merely a slightly
//! stale one. The decomposition index is *maintained*, not rebuilt:
//! each applied update is pushed through the subcore-bounded traversal
//! repair of [`kr_graph::maintain`] (see
//! [`kr_core::DecompositionIndex::apply_insert`]), so the per-update
//! cost is proportional to the coreness that actually changed.

use crate::sync::{lock, read_lock, write_lock};
use kr_core::{DecompositionIndex, ProblemInstance};
use kr_datagen::DatasetPreset;
use kr_graph::{AdjacencyList, Graph, VertexId};
use kr_similarity::{AttributeTable, Metric, TableOracle, Threshold};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

/// One graph update, validated and applied as part of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphUpdate {
    /// Connect two existing, distinct vertices.
    AddEdge(VertexId, VertexId),
    /// Disconnect two existing, distinct vertices.
    RemoveEdge(VertexId, VertexId),
    /// Replace one vertex's attribute value (same family as the table).
    SetAttribute(VertexId, AttributeValue),
}

/// A replacement attribute value, family-matched against the dataset's
/// [`AttributeTable`] variant during validation.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeValue {
    /// For [`AttributeTable::Points`] datasets.
    Point(f64, f64),
    /// For [`AttributeTable::Keywords`] datasets (normalized on apply:
    /// sorted by keyword, duplicate ids merged).
    Keywords(Vec<(u32, f64)>),
    /// For [`AttributeTable::Vectors`] datasets (dimension-checked).
    Vector(Vec<f64>),
}

/// The effective deltas of one applied batch — what the component
/// cache's repair pass classifies entries against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationDelta {
    /// Edges that were actually inserted (normalized `(min, max)`).
    pub inserted: Vec<(VertexId, VertexId)>,
    /// Edges that were actually removed (normalized `(min, max)`).
    pub removed: Vec<(VertexId, VertexId)>,
    /// Vertices whose attribute value actually changed.
    pub attr_changed: Vec<VertexId>,
}

impl MutationDelta {
    /// True when the batch changed nothing (all updates were no-ops).
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty() && self.attr_changed.is_empty()
    }

    /// Every vertex touched by an effective update, deduplicated.
    pub fn touched_vertices(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .inserted
            .iter()
            .chain(self.removed.iter())
            .flat_map(|&(u, v)| [u, v])
            .chain(self.attr_changed.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// What one [`HostedDataset::apply_batch`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    /// Updates that changed the dataset.
    pub applied: u64,
    /// No-op updates (duplicate insert, absent removal, identical
    /// attribute value) — accepted but with nothing to do.
    pub ignored: u64,
    /// `(vertex, layer)` core numbers repaired in the maintained
    /// decomposition index (0 when the index had not been built yet).
    pub core_updates: u64,
    /// Dataset version after the batch (unchanged when `applied == 0`).
    pub version: u64,
    /// The effective deltas, for the cache repair pass.
    pub delta: MutationDelta,
}

/// An immutable snapshot of a dataset's mutable state: everything a
/// query computes against. Cheap to clone (all `Arc`s).
#[derive(Clone)]
pub struct DatasetView {
    /// The social graph.
    pub graph: Arc<Graph>,
    /// Vertex attributes.
    pub attributes: Arc<AttributeTable>,
    /// The decomposition index, when one has been built or loaded.
    pub index: Option<Arc<DecompositionIndex>>,
    /// Version this snapshot was taken at.
    pub version: u64,
}

/// The mutable half of a [`HostedDataset`], swapped atomically under the
/// state lock.
struct DatasetState {
    graph: Arc<Graph>,
    attributes: Arc<AttributeTable>,
    index: Option<Arc<DecompositionIndex>>,
    version: u64,
}

/// One resident dataset.
pub struct HostedDataset {
    /// Identity string (`"gowalla-like@0.25"`).
    key: String,
    /// Natural metric for the attributes (decides how a query's `r` is
    /// interpreted: max distance vs min similarity).
    metric: Metric,
    /// Graph + attributes + index + version, snapshot by every query.
    state: RwLock<DatasetState>,
    /// Serializes mutation batches. Held across the whole
    /// maintain-and-swap, while the state lock is only held for the
    /// final swap — reads never wait on a batch in progress.
    mutate: Mutex<()>,
}

impl std::fmt::Debug for HostedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let view = self.view();
        f.debug_struct("HostedDataset")
            .field("key", &self.key)
            .field("metric", &self.metric)
            .field("vertices", &view.graph.num_vertices())
            .field("edges", &view.graph.num_edges())
            .field("version", &view.version)
            .finish()
    }
}

impl HostedDataset {
    /// A resident dataset with no decomposition index yet (it builds
    /// lazily on first use — see [`HostedDataset::decomposition`]).
    pub fn new(key: String, graph: Graph, attributes: AttributeTable, metric: Metric) -> Self {
        HostedDataset {
            key,
            metric,
            state: RwLock::new(DatasetState {
                graph: Arc::new(graph),
                attributes: Arc::new(attributes),
                index: None,
                version: 0,
            }),
            mutate: Mutex::new(()),
        }
    }

    /// [`HostedDataset::new`] with an index recovered from a snapshot's
    /// optional `DECOMP_INDEX` section, so queries never pay the build.
    pub fn with_index(
        key: String,
        graph: Graph,
        attributes: AttributeTable,
        metric: Metric,
        index: DecompositionIndex,
    ) -> Self {
        let ds = HostedDataset::new(key, graph, attributes, metric);
        write_lock(&ds.state).index = Some(Arc::new(index));
        ds
    }

    /// Identity string (registry key and component-cache key prefix).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The dataset's metric family.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Snapshot of the current graph/attributes/index/version. Queries
    /// take one view and compute entirely against it; a mutation landing
    /// mid-query swaps the state without disturbing the snapshot.
    pub fn view(&self) -> DatasetView {
        let st = read_lock(&self.state);
        DatasetView {
            graph: st.graph.clone(),
            attributes: st.attributes.clone(),
            index: st.index.clone(),
            version: st.version,
        }
    }

    /// Current mutation version (0 = as loaded).
    pub fn version(&self) -> u64 {
        read_lock(&self.state).version
    }

    /// The query threshold for this dataset's metric family.
    pub fn threshold(&self, r: f64) -> Threshold {
        if self.metric.is_distance() {
            Threshold::MaxDistance(r)
        } else {
            Threshold::MinSimilarity(r)
        }
    }

    /// The all-admitting threshold (every pair similar) used when an
    /// oracle is needed only for its attribute table and metric.
    fn neutral_threshold(&self) -> Threshold {
        if self.metric.is_distance() {
            Threshold::MaxDistance(f64::MAX)
        } else {
            Threshold::MinSimilarity(0.0)
        }
    }

    /// Builds the `(k, r)` problem instance for a query on this dataset
    /// (against the current view).
    pub fn problem(&self, k: u32, r: f64) -> ProblemInstance {
        let view = self.view();
        ProblemInstance::new(
            (*view.graph).clone(),
            (*view.attributes).clone(),
            self.metric,
            self.threshold(r),
            k,
        )
    }

    /// The dataset's decomposition index, building it on first call (one
    /// build per dataset version; a mutation landing mid-build discards
    /// the stale build and retries against the new graph).
    pub fn decomposition(&self) -> Arc<DecompositionIndex> {
        loop {
            let view = self.view();
            if let Some(ix) = view.index {
                return ix;
            }
            let oracle = TableOracle::from_shared(
                view.attributes.clone(),
                self.metric,
                self.neutral_threshold(),
            );
            let built = Arc::new(DecompositionIndex::build_default(&view.graph, &oracle));
            let mut st = write_lock(&self.state);
            if st.version == view.version {
                st.index = Some(built.clone());
                return built;
            }
            // A mutation landed while we built: the index describes the
            // old graph. Drop it and rebuild on the new state.
        }
    }

    /// Validates one update against vertex count `n` and the attribute
    /// table's family.
    fn validate(n: usize, attrs: &AttributeTable, up: &GraphUpdate) -> Result<(), String> {
        let check_vertex = |v: VertexId| -> Result<(), String> {
            if (v as usize) < n {
                Ok(())
            } else {
                Err(format!(
                    "vertex {v} out of range (dataset has {n} vertices)"
                ))
            }
        };
        match up {
            GraphUpdate::AddEdge(u, v) | GraphUpdate::RemoveEdge(u, v) => {
                check_vertex(*u)?;
                check_vertex(*v)?;
                if u == v {
                    return Err(format!("self-loop ({u}, {v}) is not a valid edge"));
                }
                Ok(())
            }
            GraphUpdate::SetAttribute(w, value) => {
                check_vertex(*w)?;
                match (attrs, value) {
                    (AttributeTable::Points(_), AttributeValue::Point(x, y)) => {
                        if !x.is_finite() || !y.is_finite() {
                            return Err(format!("non-finite point ({x}, {y})"));
                        }
                    }
                    (AttributeTable::Keywords(_), AttributeValue::Keywords(list)) => {
                        for &(kw, weight) in list {
                            if !weight.is_finite() || weight < 0.0 {
                                return Err(format!(
                                    "keyword {kw} has invalid weight {weight} (must be finite and non-negative)"
                                ));
                            }
                        }
                    }
                    (AttributeTable::Vectors(rows), AttributeValue::Vector(vec)) => {
                        if let Some(first) = rows.first() {
                            if vec.len() != first.len() {
                                return Err(format!(
                                    "vector dimension {} does not match the dataset's {}",
                                    vec.len(),
                                    first.len()
                                ));
                            }
                        }
                        if vec.iter().any(|x| !x.is_finite()) {
                            return Err("non-finite vector component".to_string());
                        }
                    }
                    _ => {
                        return Err(format!(
                            "attribute family mismatch: dataset holds {}, update carries {}",
                            attrs.family_name(),
                            value.family_name()
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Writes `value` into row `w` of `attrs`; returns false when the
    /// row already held exactly that value (a no-op update).
    fn set_attribute(attrs: &mut AttributeTable, w: usize, value: &AttributeValue) -> bool {
        match (attrs, value) {
            (AttributeTable::Points(rows), AttributeValue::Point(x, y)) => {
                if rows[w] == (*x, *y) {
                    return false;
                }
                rows[w] = (*x, *y);
                true
            }
            (AttributeTable::Keywords(rows), AttributeValue::Keywords(list)) => {
                let normalized = match AttributeTable::keywords(vec![list.clone()]) {
                    AttributeTable::Keywords(mut one) => one.pop().expect("one row in, one out"),
                    _ => unreachable!("keywords() builds Keywords"),
                };
                if rows[w] == normalized {
                    return false;
                }
                rows[w] = normalized;
                true
            }
            (AttributeTable::Vectors(rows), AttributeValue::Vector(vec)) => {
                if &rows[w] == vec {
                    return false;
                }
                rows[w] = vec.clone();
                true
            }
            _ => unreachable!("validate() rejected family mismatches"),
        }
    }

    /// Applies one batch of updates atomically: the whole batch is
    /// validated against the pre-batch state first (any invalid update
    /// rejects the batch with nothing applied), then applied one update
    /// at a time — maintaining the decomposition index through each
    /// step when one exists — and finally swapped in under the state
    /// lock with a version bump. No-op updates (duplicate edge, absent
    /// removal, identical attribute) are counted in `ignored` and do not
    /// bump the version on their own.
    ///
    /// Batches serialize on the dataset's mutation lock; queries keep
    /// reading the previous state until the swap.
    pub fn apply_batch(&self, updates: &[GraphUpdate]) -> Result<MutationOutcome, String> {
        let _batch = lock(&self.mutate);
        let start = self.view();
        let n = start.graph.num_vertices();
        for up in updates {
            Self::validate(n, &start.attributes, up)?;
        }

        let mut adj = AdjacencyList::from_graph(&start.graph);
        let mut attrs = start.attributes.clone();
        // Maintain a private copy of the index; if it was never built
        // there is nothing to keep warm (the next query builds fresh).
        let mut index: Option<DecompositionIndex> = start.index.as_deref().cloned();
        let mut delta = MutationDelta::default();
        let mut applied = 0u64;
        let mut ignored = 0u64;
        let mut core_updates = 0u64;

        for up in updates {
            match up {
                GraphUpdate::AddEdge(u, v) => {
                    if adj.insert_edge(*u, *v) {
                        applied += 1;
                        delta.inserted.push((*u.min(v), *u.max(v)));
                        if let Some(ix) = index.as_mut() {
                            let oracle = TableOracle::from_shared(
                                attrs.clone(),
                                self.metric,
                                self.neutral_threshold(),
                            );
                            core_updates += ix.apply_insert(&adj, &oracle, *u, *v);
                        }
                    } else {
                        ignored += 1;
                    }
                }
                GraphUpdate::RemoveEdge(u, v) => {
                    if adj.remove_edge(*u, *v) {
                        applied += 1;
                        delta.removed.push((*u.min(v), *u.max(v)));
                        if let Some(ix) = index.as_mut() {
                            let oracle = TableOracle::from_shared(
                                attrs.clone(),
                                self.metric,
                                self.neutral_threshold(),
                            );
                            core_updates += ix.apply_remove(&adj, &oracle, *u, *v);
                        }
                    } else {
                        ignored += 1;
                    }
                }
                GraphUpdate::SetAttribute(w, value) => {
                    let old_attrs = attrs.clone();
                    let mut table = (*attrs).clone();
                    if Self::set_attribute(&mut table, *w as usize, value) {
                        applied += 1;
                        attrs = Arc::new(table);
                        delta.attr_changed.push(*w);
                        if let Some(ix) = index.as_mut() {
                            let old = TableOracle::from_shared(
                                old_attrs,
                                self.metric,
                                self.neutral_threshold(),
                            );
                            let new = TableOracle::from_shared(
                                attrs.clone(),
                                self.metric,
                                self.neutral_threshold(),
                            );
                            core_updates += ix.apply_attribute(&adj, &old, &new, *w);
                        }
                    } else {
                        ignored += 1;
                    }
                }
            }
        }

        if delta.is_empty() {
            return Ok(MutationOutcome {
                applied,
                ignored,
                core_updates,
                version: start.version,
                delta,
            });
        }

        let graph = if delta.inserted.is_empty() && delta.removed.is_empty() {
            start.graph.clone()
        } else {
            Arc::new(adj.to_graph())
        };
        let mut st = write_lock(&self.state);
        st.graph = graph;
        st.attributes = attrs;
        st.index = index.map(Arc::new);
        st.version += 1;
        let version = st.version;
        drop(st);
        Ok(MutationOutcome {
            applied,
            ignored,
            core_updates,
            version,
            delta,
        })
    }
}

/// Lazily-generated presets plus lazily-opened snapshot files, all
/// permanently resident once touched.
#[derive(Default)]
pub struct DatasetRegistry {
    inner: Mutex<HashMap<String, Arc<HostedDataset>>>,
    /// File-backed registrations: dataset name → snapshot path.
    files: HashMap<String, PathBuf>,
}

/// The identity string for a `(preset name, scale)` pair.
pub fn dataset_key(name: &str, scale: f64) -> String {
    format!("{name}@{scale}")
}

impl DatasetRegistry {
    /// Empty registry (presets only).
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Registers a file-backed dataset under `name`. The snapshot is not
    /// read here — it opens lazily on first query — but the name must
    /// not shadow a preset or an earlier file registration.
    pub fn register_file(
        &mut self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), String> {
        let name = name.into();
        if DatasetPreset::all().iter().any(|p| p.name() == name) {
            return Err(format!("dataset name '{name}' shadows a built-in preset"));
        }
        if self.files.contains_key(&name) {
            return Err(format!("dataset name '{name}' registered twice"));
        }
        self.files.insert(name, path.into());
        Ok(())
    }

    /// True when `name` resolves to a registered snapshot file. The
    /// session uses this to skip scale policy for file-backed datasets —
    /// their graph is pinned by the file, so a query's `scale` is
    /// documentation-free noise rather than a generation request.
    pub fn is_file_backed(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Preset names every registry can serve.
    pub fn known_names() -> Vec<&'static str> {
        DatasetPreset::all().iter().map(|p| p.name()).collect()
    }

    /// All names *this* registry can serve: presets plus registered
    /// files.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = Self::known_names().iter().map(|s| s.to_string()).collect();
        let mut files: Vec<String> = self.files.keys().cloned().collect();
        files.sort();
        names.extend(files);
        names
    }

    /// Returns the dataset for `(name, scale)`, generating a preset or
    /// opening a registered snapshot file on first use. Errors (with the
    /// list of known names) when the name matches neither.
    pub fn get(&self, name: &str, scale: f64) -> Result<Arc<HostedDataset>, String> {
        if let Some(path) = self.files.get(name) {
            return self.get_file(name, path);
        }
        let preset = DatasetPreset::all()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown dataset '{name}' (known: {})",
                    self.names().join(", ")
                )
            })?;
        let key = dataset_key(name, scale);
        if let Some(ds) = lock(&self.inner).get(&key) {
            return Ok(ds.clone());
        }
        // Generate outside the lock; a racing generation of the same key
        // is redundant but harmless (deterministic output, first insert
        // kept).
        let data = preset.generate_scaled(scale);
        let hosted = Arc::new(HostedDataset::new(
            key.clone(),
            data.graph,
            data.attributes,
            data.metric,
        ));
        Ok(lock(&self.inner).entry(key).or_insert(hosted).clone())
    }

    /// File-backed lookup: the snapshot pins the graph, so the identity
    /// (and component-cache key prefix) is `dataset_key(name, 1.0)` no
    /// matter what scale the query carried.
    fn get_file(&self, name: &str, path: &PathBuf) -> Result<Arc<HostedDataset>, String> {
        let key = dataset_key(name, 1.0);
        if let Some(ds) = lock(&self.inner).get(&key) {
            return Ok(ds.clone());
        }
        // Read + verify outside the lock; a racing load of the same file
        // is redundant but harmless (identical bytes, first insert kept).
        // The indexed reader also recovers the optional decomposition
        // section, so pre-indexed snapshots never pay a query-time build.
        let (snap, index) = kr_core::read_indexed_snapshot_file(path)
            .map_err(|e| format!("dataset '{name}' failed to load from {path:?}: {e}"))?;
        let hosted = Arc::new(match index {
            Some(ix) => {
                HostedDataset::with_index(key.clone(), snap.graph, snap.attributes, snap.metric, ix)
            }
            None => HostedDataset::new(key.clone(), snap.graph, snap.attributes, snap.metric),
        });
        Ok(lock(&self.inner).entry(key).or_insert(hosted).clone())
    }
}

impl AttributeValue {
    fn family_name(&self) -> &'static str {
        match self {
            AttributeValue::Point(..) => "point",
            AttributeValue::Keywords(_) => "keywords",
            AttributeValue::Vector(_) => "vector",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_once_and_shares() {
        let reg = DatasetRegistry::new();
        let a = reg.get("dblp-like", 0.1).unwrap();
        let b = reg.get("dblp-like", 0.1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.key(), "dblp-like@0.1");
        assert_eq!(a.metric(), Metric::WeightedJaccard);
    }

    #[test]
    fn distinct_scales_distinct_datasets() {
        let reg = DatasetRegistry::new();
        let a = reg.get("gowalla-like", 0.1).unwrap();
        let b = reg.get("gowalla-like", 0.2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.view().graph.num_vertices() < b.view().graph.num_vertices());
    }

    #[test]
    fn unknown_name_lists_presets() {
        let err = DatasetRegistry::new().get("nope", 1.0).unwrap_err();
        assert!(err.contains("gowalla-like"), "{err}");
    }

    fn write_tiny_snapshot(tag: &str) -> std::path::PathBuf {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let attrs = AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let path =
            std::env::temp_dir().join(format!("kr_registry_{tag}_{}.krb", std::process::id()));
        kr_similarity::write_snapshot_file(&path, &g, &[10, 20, 30], &attrs, Metric::Euclidean)
            .expect("write snapshot");
        path
    }

    #[test]
    fn file_backed_dataset_loads_lazily_and_ignores_scale() {
        let path = write_tiny_snapshot("lazy");
        let mut reg = DatasetRegistry::new();
        reg.register_file("tiny", &path).unwrap();
        assert!(reg.names().contains(&"tiny".to_string()));
        let a = reg.get("tiny", 0.25).unwrap();
        // Any requested scale resolves to the same resident dataset and
        // the same identity key.
        let b = reg.get("tiny", 1.0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.key(), "tiny@1");
        assert_eq!(a.view().graph.num_vertices(), 3);
        assert_eq!(a.metric(), Metric::Euclidean);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn decomposition_builds_once_and_is_shared() {
        let reg = DatasetRegistry::new();
        let ds = reg.get("gowalla-like", 0.05).unwrap();
        let a = ds.decomposition();
        let b = ds.decomposition();
        assert!(Arc::ptr_eq(&a, &b), "one build per dataset");
        assert_eq!(a.num_vertices(), ds.view().graph.num_vertices());
        assert!(a.is_distance(), "gowalla-like is Euclidean");
    }

    #[test]
    fn indexed_snapshot_preseeds_the_decomposition() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let attrs = AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let oracle = kr_similarity::TableOracle::new(
            attrs.clone(),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        let index = DecompositionIndex::build_default(&g, &oracle);
        let path =
            std::env::temp_dir().join(format!("kr_registry_indexed_{}.krb", std::process::id()));
        kr_core::write_indexed_snapshot_file(
            &path,
            &g,
            &[1, 2, 3],
            &attrs,
            Metric::Euclidean,
            &index,
        )
        .expect("write indexed snapshot");
        let mut reg = DatasetRegistry::new();
        reg.register_file("tiny-ix", &path).unwrap();
        let ds = reg.get("tiny-ix", 1.0).unwrap();
        // The index came from the file: identical to what we wrote.
        assert_eq!(*ds.decomposition(), index);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_registration_rejects_preset_shadowing_and_duplicates() {
        let mut reg = DatasetRegistry::new();
        assert!(reg.register_file("gowalla-like", "/tmp/x.krb").is_err());
        reg.register_file("mine", "/tmp/x.krb").unwrap();
        assert!(reg.register_file("mine", "/tmp/y.krb").is_err());
    }

    #[test]
    fn missing_file_is_a_query_time_error() {
        let mut reg = DatasetRegistry::new();
        reg.register_file("ghost", "/nonexistent/ghost.krb")
            .unwrap();
        let err = reg.get("ghost", 1.0).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn corrupt_file_is_a_typed_query_time_error() {
        let path = std::env::temp_dir().join(format!("kr_registry_bad_{}.krb", std::process::id()));
        std::fs::write(
            &path,
            b"not a snapshot at all, padded past the header length",
        )
        .unwrap();
        let mut reg = DatasetRegistry::new();
        reg.register_file("bad", &path).unwrap();
        let err = reg.get("bad", 1.0).unwrap_err();
        assert!(err.contains("failed to load"), "{err}");
        assert!(err.contains("bad magic"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn apply_batch_validates_everything_before_applying_anything() {
        let ds = HostedDataset::new(
            "t@1".into(),
            Graph::from_edges(4, &[(0, 1), (1, 2)]),
            AttributeTable::points(vec![(0.0, 0.0); 4]),
            Metric::Euclidean,
        );
        let err = ds
            .apply_batch(&[
                GraphUpdate::AddEdge(0, 3),
                GraphUpdate::AddEdge(0, 99), // out of range: rejects the batch
            ])
            .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // Nothing from the batch landed: version and edge count unchanged.
        assert_eq!(ds.version(), 0);
        assert_eq!(ds.view().graph.num_edges(), 2);

        let err = ds.apply_batch(&[GraphUpdate::AddEdge(2, 2)]).unwrap_err();
        assert!(err.contains("self-loop"), "{err}");
        let err = ds
            .apply_batch(&[GraphUpdate::SetAttribute(
                0,
                AttributeValue::Keywords(vec![(1, 1.0)]),
            )])
            .unwrap_err();
        assert!(err.contains("family mismatch"), "{err}");
    }

    #[test]
    fn apply_batch_mutates_graph_attributes_and_version() {
        let ds = HostedDataset::new(
            "t@1".into(),
            Graph::from_edges(4, &[(0, 1), (1, 2)]),
            AttributeTable::points(vec![(0.0, 0.0); 4]),
            Metric::Euclidean,
        );
        let out = ds
            .apply_batch(&[
                GraphUpdate::AddEdge(2, 3),
                GraphUpdate::AddEdge(0, 1),    // duplicate: ignored
                GraphUpdate::RemoveEdge(0, 3), // absent: ignored
                GraphUpdate::SetAttribute(3, AttributeValue::Point(5.0, 5.0)),
                GraphUpdate::SetAttribute(0, AttributeValue::Point(0.0, 0.0)), // identical: ignored
            ])
            .unwrap();
        assert_eq!(out.applied, 2);
        assert_eq!(out.ignored, 3);
        assert_eq!(out.version, 1);
        assert_eq!(out.delta.inserted, vec![(2, 3)]);
        assert_eq!(out.delta.attr_changed, vec![3]);
        assert_eq!(out.delta.touched_vertices(), vec![2, 3]);
        let view = ds.view();
        assert_eq!(view.graph.num_edges(), 3);
        assert_eq!(view.version, 1);
        match &*view.attributes {
            AttributeTable::Points(rows) => assert_eq!(rows[3], (5.0, 5.0)),
            other => panic!("unexpected table {other:?}"),
        }
        // A batch of pure no-ops does not bump the version (the cache
        // must not treat it as a change).
        let out = ds.apply_batch(&[GraphUpdate::AddEdge(0, 1)]).unwrap();
        assert_eq!((out.applied, out.ignored, out.version), (0, 1, 1));
        assert!(out.delta.is_empty());
    }

    #[test]
    fn apply_batch_keeps_the_decomposition_index_warm_and_correct() {
        let reg = DatasetRegistry::new();
        let ds = reg.get("gowalla-like", 0.05).unwrap();
        let before = ds.decomposition();
        let n = ds.view().graph.num_vertices() as VertexId;
        // A handful of edge updates between fixed vertices.
        let out = ds
            .apply_batch(&[
                GraphUpdate::AddEdge(0, n - 1),
                GraphUpdate::AddEdge(1, n - 2),
                GraphUpdate::RemoveEdge(0, n - 1),
                GraphUpdate::SetAttribute(2, AttributeValue::Point(0.1, 0.2)),
            ])
            .unwrap();
        assert!(out.applied >= 3, "{out:?}");
        let after = ds.decomposition();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "index must have been maintained into a new value"
        );
        // The maintained index is exactly what a from-scratch build on
        // the mutated dataset produces (band set pinned to the original
        // build's bands — maintenance never re-chooses bands).
        let view = ds.view();
        let oracle = TableOracle::from_shared(
            view.attributes.clone(),
            ds.metric(),
            Threshold::MaxDistance(f64::MAX),
        );
        let rebuilt = DecompositionIndex::build(&view.graph, &oracle, after.bands());
        assert_eq!(*after, rebuilt);
    }

    #[test]
    fn concurrent_queries_see_consistent_views_across_mutations() {
        let ds = Arc::new(HostedDataset::new(
            "t@1".into(),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]),
            AttributeTable::points(vec![(0.0, 0.0); 6]),
            Metric::Euclidean,
        ));
        let writer = {
            let ds = ds.clone();
            std::thread::spawn(move || {
                for i in 0..50u32 {
                    let (u, v) = ((i % 5) as VertexId, ((i % 5) + 1) as VertexId);
                    let up = if i % 2 == 0 {
                        GraphUpdate::RemoveEdge(u, v)
                    } else {
                        GraphUpdate::AddEdge(u, v)
                    };
                    ds.apply_batch(&[up]).unwrap();
                }
            })
        };
        for _ in 0..200 {
            let view = ds.view();
            // Internal consistency: the snapshot's pieces agree on n.
            assert_eq!(view.graph.num_vertices(), 6);
            assert_eq!(view.attributes.len(), 6);
        }
        writer.join().unwrap();
        assert!(ds.version() > 0);
    }
}
