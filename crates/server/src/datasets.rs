//! Datasets hosted by the server.
//!
//! The server answers queries over the named synthetic presets
//! ([`kr_datagen::DatasetPreset`], the repo's stand-ins for the paper's
//! Table 3 networks). Generation is deterministic per `(preset, scale)`,
//! so a dataset identity string `"name@scale"` pins the exact graph — it
//! is both the registry key and the dataset half of the component-cache
//! key. Generated graphs and attribute tables are kept resident and
//! shared via `Arc`: a dataset is generated once per server lifetime, not
//! once per query.

use kr_core::ProblemInstance;
use kr_datagen::DatasetPreset;
use kr_graph::Graph;
use kr_similarity::{AttributeTable, Metric, Threshold};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One resident dataset.
#[derive(Debug)]
pub struct HostedDataset {
    /// Identity string (`"gowalla-like@0.25"`).
    pub key: String,
    /// The social graph.
    pub graph: Graph,
    /// Vertex attributes.
    pub attributes: AttributeTable,
    /// Natural metric for the attributes (decides how a query's `r` is
    /// interpreted: max distance vs min similarity).
    pub metric: Metric,
}

impl HostedDataset {
    /// Builds the `(k, r)` problem instance for a query on this dataset.
    pub fn problem(&self, k: u32, r: f64) -> ProblemInstance {
        let threshold = if self.metric.is_distance() {
            Threshold::MaxDistance(r)
        } else {
            Threshold::MinSimilarity(r)
        };
        ProblemInstance::new(
            self.graph.clone(),
            self.attributes.clone(),
            self.metric,
            threshold,
            k,
        )
    }
}

/// Lazily-generated, permanently-resident preset datasets.
#[derive(Default)]
pub struct DatasetRegistry {
    inner: Mutex<HashMap<String, Arc<HostedDataset>>>,
}

/// The identity string for a `(preset name, scale)` pair.
pub fn dataset_key(name: &str, scale: f64) -> String {
    format!("{name}@{scale}")
}

impl DatasetRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Names the registry can serve.
    pub fn known_names() -> Vec<&'static str> {
        DatasetPreset::all().iter().map(|p| p.name()).collect()
    }

    /// Returns the dataset for `(name, scale)`, generating it on first
    /// use. Errors (with the list of known names) when the preset does
    /// not exist.
    pub fn get(&self, name: &str, scale: f64) -> Result<Arc<HostedDataset>, String> {
        let preset = DatasetPreset::all()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown dataset '{name}' (known: {})",
                    Self::known_names().join(", ")
                )
            })?;
        let key = dataset_key(name, scale);
        if let Some(ds) = self.inner.lock().expect("registry lock").get(&key) {
            return Ok(ds.clone());
        }
        // Generate outside the lock; a racing generation of the same key
        // is redundant but harmless (deterministic output, first insert
        // kept).
        let data = preset.generate_scaled(scale);
        let hosted = Arc::new(HostedDataset {
            key: key.clone(),
            graph: data.graph,
            attributes: data.attributes,
            metric: data.metric,
        });
        Ok(self
            .inner
            .lock()
            .expect("registry lock")
            .entry(key)
            .or_insert(hosted)
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_once_and_shares() {
        let reg = DatasetRegistry::new();
        let a = reg.get("dblp-like", 0.1).unwrap();
        let b = reg.get("dblp-like", 0.1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.key, "dblp-like@0.1");
        assert_eq!(a.metric, Metric::WeightedJaccard);
    }

    #[test]
    fn distinct_scales_distinct_datasets() {
        let reg = DatasetRegistry::new();
        let a = reg.get("gowalla-like", 0.1).unwrap();
        let b = reg.get("gowalla-like", 0.2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.graph.num_vertices() < b.graph.num_vertices());
    }

    #[test]
    fn unknown_name_lists_presets() {
        let err = DatasetRegistry::new().get("nope", 1.0).unwrap_err();
        assert!(err.contains("gowalla-like"), "{err}");
    }
}
