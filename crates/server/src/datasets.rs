//! Datasets hosted by the server.
//!
//! Two families of entries share one registry:
//!
//! * **Presets** — the named synthetic datasets
//!   ([`kr_datagen::DatasetPreset`], the repo's stand-ins for the paper's
//!   Table 3 networks). Generation is deterministic per `(preset,
//!   scale)`, so the identity string `"name@scale"` pins the exact graph.
//! * **File-backed** — `.krb` dataset snapshots registered at `serve`
//!   time (`--dataset name=path.krb`). The file pins the graph, so the
//!   query's `scale` is irrelevant and the identity is always
//!   `dataset_key(name, 1.0)` — every scale a client sends maps to the
//!   same resident dataset and the same component-cache entries. Files
//!   open **lazily**: the snapshot is read and verified on the first
//!   query that names it, then kept resident like a generated preset.
//!
//! In both cases the identity string is the registry key and the dataset
//! half of the component-cache key, and resident data is shared via
//! `Arc`: loaded once per server lifetime, not once per query.

use kr_core::{DecompositionIndex, ProblemInstance};
use kr_datagen::DatasetPreset;
use kr_graph::Graph;
use kr_similarity::{AttributeTable, Metric, TableOracle, Threshold};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// One resident dataset.
#[derive(Debug)]
pub struct HostedDataset {
    /// Identity string (`"gowalla-like@0.25"`).
    pub key: String,
    /// The social graph.
    pub graph: Graph,
    /// Vertex attributes.
    pub attributes: AttributeTable,
    /// Natural metric for the attributes (decides how a query's `r` is
    /// interpreted: max distance vs min similarity).
    pub metric: Metric,
    /// The (k,r)-core decomposition index: loaded from the snapshot's
    /// optional section when present, built lazily on the first cache
    /// miss otherwise. Shared by every query on the dataset.
    index: OnceLock<Arc<DecompositionIndex>>,
}

impl HostedDataset {
    /// A resident dataset with no decomposition index yet (it builds
    /// lazily on first use — see [`HostedDataset::decomposition`]).
    pub fn new(key: String, graph: Graph, attributes: AttributeTable, metric: Metric) -> Self {
        HostedDataset {
            key,
            graph,
            attributes,
            metric,
            index: OnceLock::new(),
        }
    }

    /// [`HostedDataset::new`] with an index recovered from a snapshot's
    /// optional `DECOMP_INDEX` section, so queries never pay the build.
    pub fn with_index(
        key: String,
        graph: Graph,
        attributes: AttributeTable,
        metric: Metric,
        index: DecompositionIndex,
    ) -> Self {
        let ds = HostedDataset::new(key, graph, attributes, metric);
        ds.index.set(Arc::new(index)).expect("fresh OnceLock");
        ds
    }

    /// The query threshold for this dataset's metric family.
    pub fn threshold(&self, r: f64) -> Threshold {
        if self.metric.is_distance() {
            Threshold::MaxDistance(r)
        } else {
            Threshold::MinSimilarity(r)
        }
    }

    /// Builds the `(k, r)` problem instance for a query on this dataset.
    pub fn problem(&self, k: u32, r: f64) -> ProblemInstance {
        ProblemInstance::new(
            self.graph.clone(),
            self.attributes.clone(),
            self.metric,
            self.threshold(r),
            k,
        )
    }

    /// The dataset's decomposition index, building it on first call (one
    /// build per dataset per server lifetime; concurrent first calls
    /// block on the `OnceLock`, not on a poisoned lock).
    pub fn decomposition(&self) -> Arc<DecompositionIndex> {
        self.index
            .get_or_init(|| {
                let oracle = TableOracle::new(
                    self.attributes.clone(),
                    self.metric,
                    self.threshold(if self.metric.is_distance() {
                        f64::MAX
                    } else {
                        0.0
                    }),
                );
                Arc::new(DecompositionIndex::build_default(&self.graph, &oracle))
            })
            .clone()
    }
}

/// Lazily-generated presets plus lazily-opened snapshot files, all
/// permanently resident once touched.
#[derive(Default)]
pub struct DatasetRegistry {
    inner: Mutex<HashMap<String, Arc<HostedDataset>>>,
    /// File-backed registrations: dataset name → snapshot path.
    files: HashMap<String, PathBuf>,
}

/// The identity string for a `(preset name, scale)` pair.
pub fn dataset_key(name: &str, scale: f64) -> String {
    format!("{name}@{scale}")
}

impl DatasetRegistry {
    /// Empty registry (presets only).
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Registers a file-backed dataset under `name`. The snapshot is not
    /// read here — it opens lazily on first query — but the name must
    /// not shadow a preset or an earlier file registration.
    pub fn register_file(
        &mut self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), String> {
        let name = name.into();
        if DatasetPreset::all().iter().any(|p| p.name() == name) {
            return Err(format!("dataset name '{name}' shadows a built-in preset"));
        }
        if self.files.contains_key(&name) {
            return Err(format!("dataset name '{name}' registered twice"));
        }
        self.files.insert(name, path.into());
        Ok(())
    }

    /// True when `name` resolves to a registered snapshot file. The
    /// session uses this to skip scale policy for file-backed datasets —
    /// their graph is pinned by the file, so a query's `scale` is
    /// documentation-free noise rather than a generation request.
    pub fn is_file_backed(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Preset names every registry can serve.
    pub fn known_names() -> Vec<&'static str> {
        DatasetPreset::all().iter().map(|p| p.name()).collect()
    }

    /// All names *this* registry can serve: presets plus registered
    /// files.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = Self::known_names().iter().map(|s| s.to_string()).collect();
        let mut files: Vec<String> = self.files.keys().cloned().collect();
        files.sort();
        names.extend(files);
        names
    }

    /// Returns the dataset for `(name, scale)`, generating a preset or
    /// opening a registered snapshot file on first use. Errors (with the
    /// list of known names) when the name matches neither.
    pub fn get(&self, name: &str, scale: f64) -> Result<Arc<HostedDataset>, String> {
        if let Some(path) = self.files.get(name) {
            return self.get_file(name, path);
        }
        let preset = DatasetPreset::all()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown dataset '{name}' (known: {})",
                    self.names().join(", ")
                )
            })?;
        let key = dataset_key(name, scale);
        if let Some(ds) = self.inner.lock().expect("registry lock").get(&key) {
            return Ok(ds.clone());
        }
        // Generate outside the lock; a racing generation of the same key
        // is redundant but harmless (deterministic output, first insert
        // kept).
        let data = preset.generate_scaled(scale);
        let hosted = Arc::new(HostedDataset::new(
            key.clone(),
            data.graph,
            data.attributes,
            data.metric,
        ));
        Ok(self
            .inner
            .lock()
            .expect("registry lock")
            .entry(key)
            .or_insert(hosted)
            .clone())
    }

    /// File-backed lookup: the snapshot pins the graph, so the identity
    /// (and component-cache key prefix) is `dataset_key(name, 1.0)` no
    /// matter what scale the query carried.
    fn get_file(&self, name: &str, path: &PathBuf) -> Result<Arc<HostedDataset>, String> {
        let key = dataset_key(name, 1.0);
        if let Some(ds) = self.inner.lock().expect("registry lock").get(&key) {
            return Ok(ds.clone());
        }
        // Read + verify outside the lock; a racing load of the same file
        // is redundant but harmless (identical bytes, first insert kept).
        // The indexed reader also recovers the optional decomposition
        // section, so pre-indexed snapshots never pay a query-time build.
        let (snap, index) = kr_core::read_indexed_snapshot_file(path)
            .map_err(|e| format!("dataset '{name}' failed to load from {path:?}: {e}"))?;
        let hosted = Arc::new(match index {
            Some(ix) => {
                HostedDataset::with_index(key.clone(), snap.graph, snap.attributes, snap.metric, ix)
            }
            None => HostedDataset::new(key.clone(), snap.graph, snap.attributes, snap.metric),
        });
        Ok(self
            .inner
            .lock()
            .expect("registry lock")
            .entry(key)
            .or_insert(hosted)
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_once_and_shares() {
        let reg = DatasetRegistry::new();
        let a = reg.get("dblp-like", 0.1).unwrap();
        let b = reg.get("dblp-like", 0.1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.key, "dblp-like@0.1");
        assert_eq!(a.metric, Metric::WeightedJaccard);
    }

    #[test]
    fn distinct_scales_distinct_datasets() {
        let reg = DatasetRegistry::new();
        let a = reg.get("gowalla-like", 0.1).unwrap();
        let b = reg.get("gowalla-like", 0.2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.graph.num_vertices() < b.graph.num_vertices());
    }

    #[test]
    fn unknown_name_lists_presets() {
        let err = DatasetRegistry::new().get("nope", 1.0).unwrap_err();
        assert!(err.contains("gowalla-like"), "{err}");
    }

    fn write_tiny_snapshot(tag: &str) -> std::path::PathBuf {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let attrs = AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let path =
            std::env::temp_dir().join(format!("kr_registry_{tag}_{}.krb", std::process::id()));
        kr_similarity::write_snapshot_file(&path, &g, &[10, 20, 30], &attrs, Metric::Euclidean)
            .expect("write snapshot");
        path
    }

    #[test]
    fn file_backed_dataset_loads_lazily_and_ignores_scale() {
        let path = write_tiny_snapshot("lazy");
        let mut reg = DatasetRegistry::new();
        reg.register_file("tiny", &path).unwrap();
        assert!(reg.names().contains(&"tiny".to_string()));
        let a = reg.get("tiny", 0.25).unwrap();
        // Any requested scale resolves to the same resident dataset and
        // the same identity key.
        let b = reg.get("tiny", 1.0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.key, "tiny@1");
        assert_eq!(a.graph.num_vertices(), 3);
        assert_eq!(a.metric, Metric::Euclidean);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn decomposition_builds_once_and_is_shared() {
        let reg = DatasetRegistry::new();
        let ds = reg.get("gowalla-like", 0.05).unwrap();
        let a = ds.decomposition();
        let b = ds.decomposition();
        assert!(Arc::ptr_eq(&a, &b), "one build per dataset");
        assert_eq!(a.num_vertices(), ds.graph.num_vertices());
        assert!(a.is_distance(), "gowalla-like is Euclidean");
    }

    #[test]
    fn indexed_snapshot_preseeds_the_decomposition() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let attrs = AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let oracle = kr_similarity::TableOracle::new(
            attrs.clone(),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        let index = DecompositionIndex::build_default(&g, &oracle);
        let path =
            std::env::temp_dir().join(format!("kr_registry_indexed_{}.krb", std::process::id()));
        kr_core::write_indexed_snapshot_file(
            &path,
            &g,
            &[1, 2, 3],
            &attrs,
            Metric::Euclidean,
            &index,
        )
        .expect("write indexed snapshot");
        let mut reg = DatasetRegistry::new();
        reg.register_file("tiny-ix", &path).unwrap();
        let ds = reg.get("tiny-ix", 1.0).unwrap();
        // The index came from the file: identical to what we wrote.
        assert_eq!(*ds.decomposition(), index);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_registration_rejects_preset_shadowing_and_duplicates() {
        let mut reg = DatasetRegistry::new();
        assert!(reg.register_file("gowalla-like", "/tmp/x.krb").is_err());
        reg.register_file("mine", "/tmp/x.krb").unwrap();
        assert!(reg.register_file("mine", "/tmp/y.krb").is_err());
    }

    #[test]
    fn missing_file_is_a_query_time_error() {
        let mut reg = DatasetRegistry::new();
        reg.register_file("ghost", "/nonexistent/ghost.krb")
            .unwrap();
        let err = reg.get("ghost", 1.0).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn corrupt_file_is_a_typed_query_time_error() {
        let path = std::env::temp_dir().join(format!("kr_registry_bad_{}.krb", std::process::id()));
        std::fs::write(
            &path,
            b"not a snapshot at all, padded past the header length",
        )
        .unwrap();
        let mut reg = DatasetRegistry::new();
        reg.register_file("bad", &path).unwrap();
        let err = reg.get("bad", 1.0).unwrap_err();
        assert!(err.contains("failed to load"), "{err}");
        assert!(err.contains("bad magic"), "{err}");
        let _ = std::fs::remove_file(path);
    }
}
