//! Datasets hosted by the server.
//!
//! Two families of entries share one registry:
//!
//! * **Presets** — the named synthetic datasets
//!   ([`kr_datagen::DatasetPreset`], the repo's stand-ins for the paper's
//!   Table 3 networks). Generation is deterministic per `(preset,
//!   scale)`, so the identity string `"name@scale"` pins the exact graph.
//! * **File-backed** — `.krb` dataset snapshots registered at `serve`
//!   time (`--dataset name=path.krb`). The file pins the graph, so the
//!   query's `scale` is irrelevant and the identity is always
//!   `dataset_key(name, 1.0)` — every scale a client sends maps to the
//!   same resident dataset and the same component-cache entries. Files
//!   open **lazily**: the snapshot is read and verified on the first
//!   query that names it, then kept resident like a generated preset.
//!
//! In both cases the identity string is the registry key and the dataset
//! half of the component-cache key, and resident data is shared via
//! `Arc`: loaded once per server lifetime, not once per query.

use kr_core::ProblemInstance;
use kr_datagen::DatasetPreset;
use kr_graph::Graph;
use kr_similarity::{read_snapshot_file, AttributeTable, Metric, Threshold};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One resident dataset.
#[derive(Debug)]
pub struct HostedDataset {
    /// Identity string (`"gowalla-like@0.25"`).
    pub key: String,
    /// The social graph.
    pub graph: Graph,
    /// Vertex attributes.
    pub attributes: AttributeTable,
    /// Natural metric for the attributes (decides how a query's `r` is
    /// interpreted: max distance vs min similarity).
    pub metric: Metric,
}

impl HostedDataset {
    /// Builds the `(k, r)` problem instance for a query on this dataset.
    pub fn problem(&self, k: u32, r: f64) -> ProblemInstance {
        let threshold = if self.metric.is_distance() {
            Threshold::MaxDistance(r)
        } else {
            Threshold::MinSimilarity(r)
        };
        ProblemInstance::new(
            self.graph.clone(),
            self.attributes.clone(),
            self.metric,
            threshold,
            k,
        )
    }
}

/// Lazily-generated presets plus lazily-opened snapshot files, all
/// permanently resident once touched.
#[derive(Default)]
pub struct DatasetRegistry {
    inner: Mutex<HashMap<String, Arc<HostedDataset>>>,
    /// File-backed registrations: dataset name → snapshot path.
    files: HashMap<String, PathBuf>,
}

/// The identity string for a `(preset name, scale)` pair.
pub fn dataset_key(name: &str, scale: f64) -> String {
    format!("{name}@{scale}")
}

impl DatasetRegistry {
    /// Empty registry (presets only).
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Registers a file-backed dataset under `name`. The snapshot is not
    /// read here — it opens lazily on first query — but the name must
    /// not shadow a preset or an earlier file registration.
    pub fn register_file(
        &mut self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), String> {
        let name = name.into();
        if DatasetPreset::all().iter().any(|p| p.name() == name) {
            return Err(format!("dataset name '{name}' shadows a built-in preset"));
        }
        if self.files.contains_key(&name) {
            return Err(format!("dataset name '{name}' registered twice"));
        }
        self.files.insert(name, path.into());
        Ok(())
    }

    /// True when `name` resolves to a registered snapshot file. The
    /// session uses this to skip scale policy for file-backed datasets —
    /// their graph is pinned by the file, so a query's `scale` is
    /// documentation-free noise rather than a generation request.
    pub fn is_file_backed(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Preset names every registry can serve.
    pub fn known_names() -> Vec<&'static str> {
        DatasetPreset::all().iter().map(|p| p.name()).collect()
    }

    /// All names *this* registry can serve: presets plus registered
    /// files.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = Self::known_names().iter().map(|s| s.to_string()).collect();
        let mut files: Vec<String> = self.files.keys().cloned().collect();
        files.sort();
        names.extend(files);
        names
    }

    /// Returns the dataset for `(name, scale)`, generating a preset or
    /// opening a registered snapshot file on first use. Errors (with the
    /// list of known names) when the name matches neither.
    pub fn get(&self, name: &str, scale: f64) -> Result<Arc<HostedDataset>, String> {
        if let Some(path) = self.files.get(name) {
            return self.get_file(name, path);
        }
        let preset = DatasetPreset::all()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown dataset '{name}' (known: {})",
                    self.names().join(", ")
                )
            })?;
        let key = dataset_key(name, scale);
        if let Some(ds) = self.inner.lock().expect("registry lock").get(&key) {
            return Ok(ds.clone());
        }
        // Generate outside the lock; a racing generation of the same key
        // is redundant but harmless (deterministic output, first insert
        // kept).
        let data = preset.generate_scaled(scale);
        let hosted = Arc::new(HostedDataset {
            key: key.clone(),
            graph: data.graph,
            attributes: data.attributes,
            metric: data.metric,
        });
        Ok(self
            .inner
            .lock()
            .expect("registry lock")
            .entry(key)
            .or_insert(hosted)
            .clone())
    }

    /// File-backed lookup: the snapshot pins the graph, so the identity
    /// (and component-cache key prefix) is `dataset_key(name, 1.0)` no
    /// matter what scale the query carried.
    fn get_file(&self, name: &str, path: &PathBuf) -> Result<Arc<HostedDataset>, String> {
        let key = dataset_key(name, 1.0);
        if let Some(ds) = self.inner.lock().expect("registry lock").get(&key) {
            return Ok(ds.clone());
        }
        // Read + verify outside the lock; a racing load of the same file
        // is redundant but harmless (identical bytes, first insert kept).
        let snap = read_snapshot_file(path)
            .map_err(|e| format!("dataset '{name}' failed to load from {path:?}: {e}"))?;
        let hosted = Arc::new(HostedDataset {
            key: key.clone(),
            graph: snap.graph,
            attributes: snap.attributes,
            metric: snap.metric,
        });
        Ok(self
            .inner
            .lock()
            .expect("registry lock")
            .entry(key)
            .or_insert(hosted)
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_once_and_shares() {
        let reg = DatasetRegistry::new();
        let a = reg.get("dblp-like", 0.1).unwrap();
        let b = reg.get("dblp-like", 0.1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.key, "dblp-like@0.1");
        assert_eq!(a.metric, Metric::WeightedJaccard);
    }

    #[test]
    fn distinct_scales_distinct_datasets() {
        let reg = DatasetRegistry::new();
        let a = reg.get("gowalla-like", 0.1).unwrap();
        let b = reg.get("gowalla-like", 0.2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.graph.num_vertices() < b.graph.num_vertices());
    }

    #[test]
    fn unknown_name_lists_presets() {
        let err = DatasetRegistry::new().get("nope", 1.0).unwrap_err();
        assert!(err.contains("gowalla-like"), "{err}");
    }

    fn write_tiny_snapshot(tag: &str) -> std::path::PathBuf {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let attrs = AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let path =
            std::env::temp_dir().join(format!("kr_registry_{tag}_{}.krb", std::process::id()));
        kr_similarity::write_snapshot_file(&path, &g, &[10, 20, 30], &attrs, Metric::Euclidean)
            .expect("write snapshot");
        path
    }

    #[test]
    fn file_backed_dataset_loads_lazily_and_ignores_scale() {
        let path = write_tiny_snapshot("lazy");
        let mut reg = DatasetRegistry::new();
        reg.register_file("tiny", &path).unwrap();
        assert!(reg.names().contains(&"tiny".to_string()));
        let a = reg.get("tiny", 0.25).unwrap();
        // Any requested scale resolves to the same resident dataset and
        // the same identity key.
        let b = reg.get("tiny", 1.0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.key, "tiny@1");
        assert_eq!(a.graph.num_vertices(), 3);
        assert_eq!(a.metric, Metric::Euclidean);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_registration_rejects_preset_shadowing_and_duplicates() {
        let mut reg = DatasetRegistry::new();
        assert!(reg.register_file("gowalla-like", "/tmp/x.krb").is_err());
        reg.register_file("mine", "/tmp/x.krb").unwrap();
        assert!(reg.register_file("mine", "/tmp/y.krb").is_err());
    }

    #[test]
    fn missing_file_is_a_query_time_error() {
        let mut reg = DatasetRegistry::new();
        reg.register_file("ghost", "/nonexistent/ghost.krb")
            .unwrap();
        let err = reg.get("ghost", 1.0).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn corrupt_file_is_a_typed_query_time_error() {
        let path = std::env::temp_dir().join(format!("kr_registry_bad_{}.krb", std::process::id()));
        std::fs::write(
            &path,
            b"not a snapshot at all, padded past the header length",
        )
        .unwrap();
        let mut reg = DatasetRegistry::new();
        reg.register_file("bad", &path).unwrap();
        let err = reg.get("bad", 1.0).unwrap_err();
        assert!(err.contains("failed to load"), "{err}");
        assert!(err.contains("bad magic"), "{err}");
        let _ = std::fs::remove_file(path);
    }
}
