//! Poison-tolerant locking for the server's shared state.
//!
//! A panic while a thread holds a `std::sync` lock poisons it, and a
//! bare `.lock().expect(...)` then turns one bad query into a
//! permanently bricked shard / registry / admission book: every later
//! session panics on the same mutex forever. All of the server's
//! guarded state is re-validated on every use (cache entries are
//! checked against the dataset version, the admission book is a simple
//! refcount map, the registry only grows), so recovering the guard with
//! [`PoisonError::into_inner`] is sound — the worst a half-applied
//! panic can leave behind is a stale cache entry or an off-by-one
//! admission count that drains with its guard.
//!
//! Every recovery is counted in the process-global
//! `server.lock_recoveries` counter (surfaced by the wire `metrics`
//! request), so operators see that a panic happened even though serving
//! continued.

use kr_obs::Counter;
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// The process-global poison-recovery counter.
pub(crate) fn lock_recoveries() -> &'static Arc<Counter> {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| kr_obs::global().counter("server.lock_recoveries"))
}

/// `Mutex::lock` that recovers from poisoning instead of panicking.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e: PoisonError<_>| {
        lock_recoveries().inc();
        e.into_inner()
    })
}

/// `RwLock::read` that recovers from poisoning instead of panicking.
pub(crate) fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e: PoisonError<_>| {
        lock_recoveries().inc();
        e.into_inner()
    })
}

/// `RwLock::write` that recovers from poisoning instead of panicking.
pub(crate) fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e: PoisonError<_>| {
        lock_recoveries().inc();
        e.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_mutex_recovers_and_counts() {
        let m = Arc::new(Mutex::new(7u32));
        let before = lock_recoveries().get();
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        assert!(lock_recoveries().get() > before);
        // Later locks still work (the guard above cleared nothing; the
        // mutex stays poisoned, recovery is per-acquire).
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*read_lock(&l), 1);
        *write_lock(&l) = 2;
        assert_eq!(*read_lock(&l), 2);
    }
}
