//! # kr-server
//!
//! A long-lived (k,r)-core query service. The paper's algorithms answer
//! one query over a fixed graph; serving "heavy traffic" means the
//! expensive, query-independent work — dataset residency and Algorithm
//! 1's preprocessing (dissimilar-edge filter → k-core peel → component
//! split → arena build) — must be paid once and amortized across
//! queries. This crate wraps the `kr_core` engines in exactly that:
//!
//! * [`protocol`] — a versioned, line-delimited JSON wire protocol
//!   (std-only; the codec lives in [`json`]);
//! * [`cache`] — an LRU cache of preprocessed [`kr_core::LocalComponent`]
//!   sets keyed by `(dataset, k, r-band)`, sharded by key hash and shared
//!   across connections via `Arc`, with hit/miss/eviction statistics
//!   merged across shards;
//! * [`datasets`] — resident, lazily-generated preset datasets;
//! * [`obs`] — the per-instance `server.*` metrics registry surfaced by
//!   the wire `metrics` request, and the structured-trace sink every
//!   query's span events go to (see `docs/OBSERVABILITY.md`);
//! * `session` / [`server`] — one thread per connection dispatching
//!   queries onto the engines (which thread one worker pool per query
//!   through preprocessing and search), with budget-clamped cancellation,
//!   a connection cap (`busy` rejection frames), per-dataset admission
//!   limits, mid-query client-abort detection, and clean shutdown;
//! * [`client`] — the blocking client that backs `krcore-cli query` and
//!   doubles as the integration-test driver.
//!
//! Enumeration queries **stream**: each maximal core is written as its
//! own frame the moment the engine confirms it (via
//! [`kr_core::CoreHook`]), so heavy queries deliver early results
//! instead of buffering the full family.
//!
//! ## In-process quickstart
//!
//! ```
//! use kr_server::{Client, QuerySpec, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let handle = server.spawn();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let spec = QuerySpec { scale: 0.1, ..QuerySpec::new("gowalla-like", 3, 8.0) };
//! let first = client.enumerate(spec.clone()).unwrap();
//! let again = client.enumerate(spec).unwrap();          // served from cache
//! assert_eq!(first.cores, again.cores);
//! assert_eq!(again.cache, kr_server::CacheOutcome::Hit);
//! handle.shutdown_and_join().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod datasets;
pub mod json;
pub mod obs;
pub mod protocol;
pub mod server;
pub(crate) mod session;
pub(crate) mod sync;

pub use cache::{CacheKey, CacheStats, ComponentCache, LookupOutcome, DEFAULT_SHARDS};
pub use client::{Client, ClientError, MutationResult, QueryResult};
pub use datasets::{
    dataset_key, AttributeValue, DatasetRegistry, DatasetView, GraphUpdate, HostedDataset,
    MutationDelta, MutationOutcome,
};
pub use kr_obs::{HistogramSnapshot, MetricsSnapshot, TraceSink, HIST_BUCKETS};
pub use obs::ServerMetrics;
pub use protocol::{
    Algo, CacheOutcome, ErrorCode, Frame, ProtoError, QuerySpec, Request, FRAME_KINDS,
    PROTOCOL_VERSION, REQUEST_CMDS,
};
pub use server::{Server, ServerConfig, ServerHandle, ServerState};
