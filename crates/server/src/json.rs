//! Minimal JSON codec for the wire protocol.
//!
//! The build environment has no registry access and the `serde` shim is a
//! marker-trait stand-in with no serialization format, so the protocol
//! layer carries its own codec: a [`Json`] value tree, a recursive-descent
//! parser, and a writer. Supported is full JSON minus two deliberate
//! simplifications — numbers are `f64` (every protocol field fits in the
//! 2^53 exact-integer range), and object keys keep insertion order in a
//! `Vec` (the protocol never has enough keys per object for a map to win).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs for the `f64` caveat).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in the
    /// exact-`f64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is a whole number in the
    /// exact-`f64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string (no trailing newline; all
    /// control characters are escaped, so the output never contains a
    /// literal newline — the framing invariant of the wire protocol).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no Infinity/NaN literal; emit `null` so
                    // the output is always valid JSON (the receiver's
                    // field validation then rejects the null cleanly).
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // `{:?}` prints shortest round-trip representation.
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `input` (must consume the whole string
    /// apart from surrounding whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing data", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl JsonError {
    fn at(message: &str, offset: usize) -> Self {
        JsonError {
            message: message.to_string(),
            offset,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at("unexpected character", self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::at("invalid literal", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at("expected a value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at("invalid number", start))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::at("invalid utf-8", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let c = self.unicode_escape()?;
                            out.push(c);
                        }
                        _ => return Err(JsonError::at("unknown escape", self.pos - 1)),
                    }
                }
                _ => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::at("truncated \\u escape", self.pos));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        // Surrogate pair handling for characters beyond the BMP.
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c)
                        .ok_or_else(|| JsonError::at("invalid surrogate pair", self.pos));
                }
            }
            return Err(JsonError::at("lone surrogate", self.pos));
        }
        char::from_u32(hi).ok_or_else(|| JsonError::at("invalid \\u escape", self.pos))
    }
}

/// Convenience constructors used by the protocol layer.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A string value.
pub fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

/// A number value.
pub fn n(v: f64) -> Json {
    Json::Num(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_line()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = obj(vec![
            ("a", Json::Arr(vec![n(1.0), n(2.0), Json::Null])),
            ("b", obj(vec![("c", s("x\"y\\z\nw"))])),
            ("d", Json::Bool(true)),
        ]);
        let line = v.to_line();
        assert!(!line.contains('\n'), "framing: one line");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "é😀"
        );
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?}");
        }
    }

    #[test]
    fn u64_accessor_guards() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let line = obj(vec![("r", n(v))]).to_line();
            assert_eq!(line, "{\"r\":null}");
            Json::parse(&line).expect("stays valid JSON");
        }
    }

    #[test]
    fn control_chars_escaped() {
        let line = s("a\u{01}b").to_line();
        assert_eq!(line, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&line).unwrap(), s("a\u{01}b"));
    }
}
