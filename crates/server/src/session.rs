//! Per-connection request handling.
//!
//! A session owns one client socket. Requests are processed one at a
//! time in arrival order (the protocol is line-delimited, so pipelining
//! just queues in the kernel buffer); response frames for a query carry
//! its `id`. The socket is read with a short timeout so the session
//! notices a server-wide shutdown even while idle.
//!
//! **Cancellation.** Runaway work is bounded two ways. The engine's
//! node/time limits: the session clamps every query's budgets to the
//! server's configured ceilings; the engine checks them at each search
//! node and returns `completed = false` when exceeded, which the `done`
//! frame reports. And client aborts: between streamed `core` frames the
//! session peeks the socket (see [`AbortProbe`]) — a client that hung up
//! mid-query trips a [`kr_core::CancelFlag`] and the engine winds down at
//! its next search node instead of burning the worker pool on an answer
//! nobody reads. Aborted queries count in `server.client_aborts` (not
//! `server.query_errors`) and emit a `client_abort` span event.
//!
//! **Observability.** Every request line gets a fresh trace id, echoed
//! in each of its response frames and stamped on every span event the
//! request emits to the server's [`kr_obs::TraceSink`] — see
//! `docs/OBSERVABILITY.md` for the span taxonomy. The session also feeds
//! the server's `server.*` metrics registry (query latency and
//! preprocessing histograms, request/rejection counters, the in-flight
//! gauge), which a `metrics` request returns over the wire.

use crate::cache::{r_band, CacheKey, R_BAND_WIDTH};
use crate::datasets::{GraphUpdate, HostedDataset, MutationOutcome};
use crate::json::Json;
use crate::protocol::{
    Algo, CacheOutcome, ErrorCode, Frame, ProtoError, QuerySpec, Request, PROTOCOL_VERSION,
};
use crate::server::{ServerState, SessionPermit};
use crate::sync::lock;
use kr_core::{
    enumerate_maximal_prepared, enumerate_maximal_prepared_on, find_maximum_prepared,
    find_maximum_prepared_on, AlgoConfig, CancelFlag, CoreHook, KrCore, LocalComponent,
};
use kr_obs::{next_trace_id, Field, PhaseTimer};
use kr_similarity::{SimilarityOracle, TableOracle};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Socket poll interval; bounds how long shutdown waits on idle sessions.
const READ_POLL: Duration = Duration::from_millis(150);

/// Hard cap on one request line. Real requests are well under 1 KiB; a
/// client that streams bytes without a newline is dropped at this bound
/// instead of growing the session buffer without limit.
const MAX_LINE_BYTES: usize = 1 << 20;

type SharedWriter = Arc<Mutex<TcpStream>>;

fn write_frame(writer: &SharedWriter, frame: &Frame) -> std::io::Result<()> {
    let mut line = frame.to_line();
    line.push('\n');
    // Poison-tolerant: a panicking query thread must not wedge every
    // later frame write on this connection (see `crate::sync`).
    let mut stream = lock(writer);
    stream.write_all(line.as_bytes())
}

/// Write errors that mean "the peer went away" rather than "this server
/// failed". The session counts these as `server.client_aborts`, not
/// `server.query_errors`: the distinction separates clients hanging up
/// (routine under real traffic) from actual serving trouble.
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::UnexpectedEof
    )
}

/// Mid-query client-liveness probe, checked between streamed `core`
/// frames. `peek` is non-destructive — pipelined request bytes stay
/// queued for the [`LineReader`] — and distinguishes the three states the
/// session cares about: EOF (client closed: abort), pending bytes or
/// nothing yet (client alive), hard error (abort).
///
/// The probe must not block, and `set_nonblocking` applies to the whole
/// underlying socket (it is shared with the reader and writer clones), so
/// blocking mode is restored immediately after the peek. That toggle is
/// safe here because the probe only runs from inside `run_query`, where
/// the session thread — the only reader — is busy computing, and frame
/// writes are serialized behind the writer lock. The `LineReader`'s read
/// timeout is a socket option (`SO_RCVTIMEO`) and is unaffected.
struct AbortProbe {
    stream: TcpStream,
}

impl AbortProbe {
    fn new(writer: &SharedWriter) -> Option<AbortProbe> {
        let stream = lock(writer).try_clone().ok()?;
        Some(AbortProbe { stream })
    }

    /// True when the peer is known to be gone. False on any doubt: a
    /// false "alive" just means the abort is caught at the next frame
    /// write instead.
    fn client_gone(&self) -> bool {
        if self.stream.set_nonblocking(true).is_err() {
            return false;
        }
        let mut byte = [0u8; 1];
        let gone = match self.stream.peek(&mut byte) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) if e.kind() == ErrorKind::WouldBlock => false,
            Err(e) => is_disconnect(&e),
        };
        let _ = self.stream.set_nonblocking(false);
        gone
    }
}

/// Timeout-tolerant line framing over the raw socket. `BufRead::read_line`
/// is unusable here: a read timeout mid-line would hand back a partial
/// line indistinguishable from a complete one.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

enum ReadOutcome {
    Line(String),
    TimedOut,
    Closed,
}

impl LineReader {
    fn next(&mut self) -> ReadOutcome {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop(); // the '\n'
                return match String::from_utf8(line) {
                    Ok(s) => ReadOutcome::Line(s),
                    Err(_) => ReadOutcome::Closed, // not UTF-8: drop client
                };
            }
            if self.pending.len() > MAX_LINE_BYTES {
                return ReadOutcome::Closed; // unframed flood: drop client
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return ReadOutcome::TimedOut;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }
}

/// Serves one connection to completion (EOF, I/O failure, or shutdown).
/// The `permit` is the connection-cap slot claimed by the accept loop; it
/// is held for the lifetime of this call and freed on any exit path.
pub(crate) fn run_session(stream: TcpStream, state: Arc<ServerState>, permit: SessionPermit) {
    let _permit = permit;
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    state.metrics.connections.inc();
    if state.trace.enabled() {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        state.trace.event("", "accept", &[("peer", Field::S(peer))]);
    }
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let hello = Frame::Hello {
        protocol: PROTOCOL_VERSION,
        server: format!("kr-server/{}", env!("CARGO_PKG_VERSION")),
    };
    if write_frame(&writer, &hello).is_err() {
        return;
    }
    let mut reader = LineReader {
        stream,
        pending: Vec::new(),
    };
    loop {
        match reader.next() {
            ReadOutcome::Closed => return,
            ReadOutcome::TimedOut => {
                if state.is_shutting_down() {
                    return;
                }
            }
            ReadOutcome::Line(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if handle_line(trimmed, &writer, &state).is_err() {
                    return; // client gone
                }
                if state.is_shutting_down() {
                    return;
                }
            }
        }
    }
}

fn handle_line(line: &str, writer: &SharedWriter, state: &Arc<ServerState>) -> std::io::Result<()> {
    // Every request line — even an unparseable one — gets a trace id, so
    // the error frame on the wire still joins against the span log.
    let trace = next_trace_id();
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => {
            state.metrics.record_request_error(&e);
            let code = match &e {
                ProtoError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
                _ => ErrorCode::BadRequest,
            };
            let message = e.to_string();
            state.trace.event(
                &trace,
                "request_error",
                &[
                    ("code", Field::S(code.name().to_string())),
                    ("message", Field::S(message.clone())),
                ],
            );
            // Best-effort id echo so the client can correlate the failure.
            let id = Json::parse(line)
                .ok()
                .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_default();
            return write_frame(
                writer,
                &Frame::Error {
                    id,
                    trace,
                    code,
                    message,
                },
            );
        }
    };
    if state.trace.enabled() {
        let (cmd, id) = match &req {
            Request::Ping { id } => ("ping", id),
            Request::Stats { id } => ("stats", id),
            Request::Metrics { id } => ("metrics", id),
            Request::Shutdown { id } => ("shutdown", id),
            Request::Enumerate { id, .. } => ("enumerate", id),
            Request::Maximum { id, .. } => ("maximum", id),
            Request::AddEdges { id, .. } => ("add_edge", id),
            Request::RemoveEdges { id, .. } => ("remove_edge", id),
            Request::SetAttributes { id, .. } => ("set_attribute", id),
        };
        state.trace.event(
            &trace,
            "request",
            &[("cmd", Field::from(cmd)), ("id", Field::S(id.clone()))],
        );
    }
    match req {
        Request::Ping { id } => write_frame(writer, &Frame::Pong { id, trace }),
        Request::Stats { id } => write_frame(
            writer,
            &Frame::Stats {
                id,
                trace,
                stats: state.cache.stats(),
            },
        ),
        Request::Metrics { id } => write_frame(
            writer,
            &Frame::Metrics {
                id,
                trace,
                snapshot: state.metrics.wire_snapshot(),
            },
        ),
        Request::Shutdown { id } => {
            write_frame(writer, &Frame::ShuttingDown { id, trace })?;
            state.begin_shutdown();
            Ok(())
        }
        Request::Enumerate { id, spec } => {
            run_query(QueryKind::Enumerate, id, trace, spec, writer, state)
        }
        Request::Maximum { id, spec } => {
            run_query(QueryKind::Maximum, id, trace, spec, writer, state)
        }
        Request::AddEdges {
            id,
            dataset,
            scale,
            edges,
        } => {
            let updates = edges
                .into_iter()
                .map(|(u, v)| GraphUpdate::AddEdge(u, v))
                .collect();
            run_mutation(id, trace, dataset, scale, updates, writer, state)
        }
        Request::RemoveEdges {
            id,
            dataset,
            scale,
            edges,
        } => {
            let updates = edges
                .into_iter()
                .map(|(u, v)| GraphUpdate::RemoveEdge(u, v))
                .collect();
            run_mutation(id, trace, dataset, scale, updates, writer, state)
        }
        Request::SetAttributes {
            id,
            dataset,
            scale,
            updates,
        } => {
            let updates = updates
                .into_iter()
                .map(|(w, value)| GraphUpdate::SetAttribute(w, value))
                .collect();
            run_mutation(id, trace, dataset, scale, updates, writer, state)
        }
    }
}

enum QueryKind {
    Enumerate,
    Maximum,
}

/// Budget clamp: the tighter of the request's wish and the server ceiling.
fn clamp_limit(requested: Option<u64>, ceiling: Option<u64>) -> Option<u64> {
    match (requested, ceiling) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, ceiling) => ceiling,
    }
}

fn run_query(
    kind: QueryKind,
    id: String,
    trace: String,
    spec: QuerySpec,
    writer: &SharedWriter,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    let metrics = &state.metrics;
    let sink = &state.trace;
    metrics.queries.inc();
    let _active = metrics.active_queries.track();
    // `max_scale` bounds what the registry may *generate*; file-backed
    // datasets are pinned by their snapshot and ignore scale entirely,
    // so the policy does not apply to them.
    if spec.scale > state.config.max_scale && !state.datasets.is_file_backed(&spec.dataset) {
        metrics.query_errors.inc();
        return write_frame(
            writer,
            &Frame::Error {
                id,
                trace,
                code: ErrorCode::BadRequest,
                message: format!(
                    "scale {} exceeds this server's max_scale {}",
                    spec.scale, state.config.max_scale
                ),
            },
        );
    }
    let dataset = match state.datasets.get(&spec.dataset, spec.scale) {
        Ok(ds) => ds,
        Err(message) => {
            metrics.query_errors.inc();
            return write_frame(
                writer,
                &Frame::Error {
                    id,
                    trace,
                    code: ErrorCode::UnknownDataset,
                    message,
                },
            );
        }
    };
    // Per-dataset admission control: the guard holds this query's
    // in-flight slot until the query resolves (any exit path).
    let _admission = match state.try_admit(dataset.key()) {
        Ok(guard) => guard,
        Err(limit) => {
            metrics.admission_rejections.inc();
            sink.event(
                &trace,
                "admission_reject",
                &[
                    ("dataset", Field::S(spec.dataset.clone())),
                    ("limit", Field::from(limit)),
                ],
            );
            return write_frame(
                writer,
                &Frame::Error {
                    id,
                    trace,
                    code: ErrorCode::Busy,
                    message: format!(
                        "dataset '{}' is at its admission limit ({limit} queries in flight); retry later",
                        spec.dataset
                    ),
                },
            );
        }
    };

    let t0 = Instant::now();
    let key = CacheKey {
        dataset: dataset.key().to_string(),
        k: spec.k,
        r_band: r_band(spec.r),
    };
    // The version pins which graph state a cache entry answers for: a
    // mutation bumps it, so a post-mutation query can never be served a
    // component set the cache-repair pass has not revalidated.
    let version = dataset.version();
    // One worker pool for the whole query: a cache miss preprocesses on
    // it and the parallel engine then runs its subtask phase on the same
    // pool (`threads == 1` stays pool-free on the sequential engine).
    let threads = spec.threads;
    let pool = if threads == 1 {
        None
    } else {
        Some(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool"),
        )
    };
    let preprocess_ms = std::cell::Cell::new(None::<u64>);
    let residual = std::cell::Cell::new(None::<u64>);
    let lookup = PhaseTimer::start(sink, &trace, "cache_lookup");
    let (comps, outcome) = state.cache.get_or_build(&key, version, || {
        // Resolve the query to a candidate vertex set through the
        // dataset's (k,r)-core decomposition index before the timer
        // starts: the index is built once per dataset (or loaded from
        // the snapshot), so its cost is not part of this miss's
        // preprocessing bill.
        let t_index = PhaseTimer::start(sink, &trace, "index_candidates");
        let candidates = dataset
            .decomposition()
            .candidates(spec.k, dataset.threshold(spec.r));
        t_index.finish_with(&[("vertices", Field::from(candidates.vertices.len()))]);
        residual.set(Some(candidates.vertices.len() as u64));
        let t_pre = PhaseTimer::start(sink, &trace, "preprocess");
        let problem = dataset.problem(spec.k, spec.r);
        let comps = match &pool {
            None => problem.preprocess_with_candidates(&candidates.vertices),
            Some(pool) => problem.preprocess_with_candidates_on(&candidates.vertices, pool),
        };
        let dur_us = t_pre.finish_with(&[("components", Field::from(comps.len()))]);
        metrics.preprocess_us.record(dur_us);
        preprocess_ms.set(Some(dur_us / 1_000));
        comps
    });
    let hit = outcome.hit;
    lookup.finish_with(&[("outcome", Field::from(if hit { "hit" } else { "miss" }))]);
    // Attribute the miss's cost to the stats frame so operators see
    // cold-query preprocessing time and candidate-index leverage — but
    // only when this query's build is the one the cache kept. Two
    // clients racing a cold key both run the build; counting both would
    // double-bill `preprocess_ms` / `oracle_evals` for one resident
    // entry.
    if outcome.won {
        if let Some(ms) = preprocess_ms.get() {
            let evals = comps.iter().map(|c| c.oracle_evals).sum();
            state.cache.record_preprocess(ms, evals);
        }
        if let Some(vertices) = residual.get() {
            state.cache.record_index(vertices);
        }
    }
    let cache = if hit {
        CacheOutcome::Hit
    } else {
        CacheOutcome::Miss
    };

    let mut cfg = match (&kind, spec.algo) {
        (QueryKind::Enumerate, Algo::Adv) => AlgoConfig::adv_enum(),
        (QueryKind::Enumerate, Algo::Basic) => AlgoConfig::basic_enum(),
        (QueryKind::Maximum, Algo::Adv) => AlgoConfig::adv_max(),
        (QueryKind::Maximum, Algo::Basic) => AlgoConfig::basic_max(),
    }
    .with_threads(threads);
    if let Some(ms) = clamp_limit(spec.time_limit_ms, state.config.max_time_limit_ms) {
        cfg = cfg.with_time_limit_ms(ms);
    }
    if let Some(limit) = clamp_limit(spec.node_limit, state.config.max_node_limit) {
        cfg = cfg.with_node_limit(limit);
    }

    // Frame-streaming accounting, shared by every path that writes a
    // `core` frame: how many went out and how long the socket writes
    // took (the `stream` span event reports both).
    let frames = Arc::new(AtomicU64::new(0));
    let write_us = Arc::new(AtomicU64::new(0));
    // Client-abort plumbing: the streaming hook (or a peer-disconnect
    // write error) flips `client_gone` and cancels the engine, which
    // winds down at its next search node. `write_failed` is everything
    // else — the socket broke for a non-disconnect reason.
    let cancel = CancelFlag::new();
    cfg = cfg.with_cancel(cancel.clone());
    let client_gone = Arc::new(AtomicBool::new(false));
    let write_failed = Arc::new(AtomicBool::new(false));
    // Classifies one frame-write result: peer disconnects become client
    // aborts (counted + span event), anything else a query error. Either
    // way the session ends by propagating the error.
    let classify_write = |res: std::io::Result<()>| -> std::io::Result<()> {
        if let Err(e) = &res {
            if is_disconnect(e) {
                metrics.client_aborts.inc();
                sink.event(
                    &trace,
                    "client_abort",
                    &[
                        ("dataset", Field::S(spec.dataset.clone())),
                        ("frames", Field::U(frames.load(Ordering::Relaxed))),
                        ("error", Field::S(e.to_string())),
                    ],
                );
            } else {
                metrics.query_errors.inc();
            }
        }
        res
    };

    let (count, completed, nodes) = match kind {
        QueryKind::Enumerate => {
            // AdvEnum streams: every core the engine confirms goes out as
            // its own frame immediately. BasicEnum buffers (maximality is
            // only known after the post-filter) and the frames are
            // written below instead.
            let streaming = cfg.maximal_check;
            if streaming {
                let probe = AbortProbe::new(writer);
                let (w, counter, failed, gone, stop, qid, qtrace, wus, streamed) = (
                    writer.clone(),
                    frames.clone(),
                    write_failed.clone(),
                    client_gone.clone(),
                    cancel.clone(),
                    id.clone(),
                    trace.clone(),
                    write_us.clone(),
                    metrics.cores_streamed.clone(),
                );
                cfg = cfg.with_on_core(CoreHook::new(move |core: &KrCore| {
                    if failed.load(Ordering::Relaxed) || gone.load(Ordering::Relaxed) {
                        return; // socket already broken; engine is winding down
                    }
                    // Poll the socket before spending a write on it: a
                    // client that hung up is detected here even when the
                    // kernel buffer would still have absorbed the frame.
                    if probe.as_ref().is_some_and(AbortProbe::client_gone) {
                        gone.store(true, Ordering::Relaxed);
                        stop.cancel();
                        return;
                    }
                    let frame = Frame::Core {
                        id: qid.clone(),
                        trace: qtrace.clone(),
                        index: counter.fetch_add(1, Ordering::Relaxed),
                        vertices: core.vertices.clone(),
                    };
                    let t = Instant::now();
                    if let Err(e) = write_frame(&w, &frame) {
                        if is_disconnect(&e) {
                            gone.store(true, Ordering::Relaxed);
                            stop.cancel();
                        } else {
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                    wus.fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
                    streamed.inc();
                }));
            }
            let search = PhaseTimer::start(sink, &trace, "search");
            let res = match &pool {
                None => enumerate_maximal_prepared(&comps, &cfg),
                Some(pool) => enumerate_maximal_prepared_on(&comps, &cfg, pool),
            };
            search.finish_with(&[
                ("nodes", Field::U(res.stats.nodes)),
                ("completed", Field::B(res.completed)),
            ]);
            if write_failed.load(Ordering::Relaxed) {
                metrics.query_errors.inc();
                return Err(std::io::Error::new(
                    ErrorKind::BrokenPipe,
                    "frame write failed mid-stream",
                ));
            }
            if !streaming {
                for (index, core) in res.cores.iter().enumerate() {
                    let t = Instant::now();
                    classify_write(write_frame(
                        writer,
                        &Frame::Core {
                            id: id.clone(),
                            trace: trace.clone(),
                            index: index as u64,
                            vertices: core.vertices.clone(),
                        },
                    ))?;
                    write_us.fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
                    frames.fetch_add(1, Ordering::Relaxed);
                    metrics.cores_streamed.inc();
                }
            }
            (res.cores.len() as u64, res.completed, res.stats.nodes)
        }
        QueryKind::Maximum => {
            let search = PhaseTimer::start(sink, &trace, "search");
            let res = match &pool {
                None => find_maximum_prepared(&comps, &cfg),
                Some(pool) => find_maximum_prepared_on(&comps, &cfg, pool),
            };
            search.finish_with(&[
                ("nodes", Field::U(res.stats.nodes)),
                ("completed", Field::B(res.completed)),
            ]);
            let count = res.core.iter().len() as u64;
            if let Some(core) = &res.core {
                let t = Instant::now();
                classify_write(write_frame(
                    writer,
                    &Frame::Core {
                        id: id.clone(),
                        trace: trace.clone(),
                        index: 0,
                        vertices: core.vertices.clone(),
                    },
                ))?;
                write_us.fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
                frames.fetch_add(1, Ordering::Relaxed);
                metrics.cores_streamed.inc();
            }
            (count, res.completed, res.stats.nodes)
        }
    };

    if client_gone.load(Ordering::Relaxed) {
        // The abort probe (or a disconnect-class write error) stopped the
        // sweep: not an answered query (no `done`, no latency sample) and
        // not a server failure — it counts in `server.client_aborts`.
        metrics.client_aborts.inc();
        sink.event(
            &trace,
            "client_abort",
            &[
                ("dataset", Field::S(spec.dataset.clone())),
                ("frames", Field::U(frames.load(Ordering::Relaxed))),
                ("nodes", Field::U(nodes)),
            ],
        );
        return Err(std::io::Error::new(
            ErrorKind::ConnectionAborted,
            "client went away mid-query",
        ));
    }

    let elapsed = t0.elapsed();
    let elapsed_ms = elapsed.as_millis() as u64;
    if sink.enabled() {
        sink.event(
            &trace,
            "stream",
            &[
                ("frames", Field::U(frames.load(Ordering::Relaxed))),
                ("write_us", Field::U(write_us.load(Ordering::Relaxed))),
            ],
        );
        sink.event(
            &trace,
            "query",
            &[
                ("dataset", Field::S(spec.dataset.clone())),
                ("k", Field::U(u64::from(spec.k))),
                ("r", Field::F(spec.r)),
                ("cache", Field::from(if hit { "hit" } else { "miss" })),
                ("count", Field::U(count)),
                ("nodes", Field::U(nodes)),
                ("completed", Field::B(completed)),
                ("elapsed_ms", Field::U(elapsed_ms)),
            ],
        );
    }
    if elapsed_ms >= state.config.slow_query_ms {
        metrics.slow_queries.inc();
        sink.event(
            &trace,
            "slow_query",
            &[
                ("dataset", Field::S(spec.dataset.clone())),
                ("k", Field::U(u64::from(spec.k))),
                ("r", Field::F(spec.r)),
                ("elapsed_ms", Field::U(elapsed_ms)),
                ("threshold_ms", Field::U(state.config.slow_query_ms)),
            ],
        );
    }
    classify_write(write_frame(
        writer,
        &Frame::Done {
            id,
            trace: trace.clone(),
            count,
            completed,
            cache,
            elapsed_ms,
            nodes,
        },
    ))?;
    // The acceptance invariant: exactly one latency sample per *answered*
    // query — `done` delivered — so the histogram's bucket counts plus
    // the abort/rejection counters account for every query accepted.
    metrics.query_latency_us.record_duration(elapsed);
    Ok(())
}

/// Handles one mutation batch: validate-and-apply on the dataset, then
/// an invalidate-and-repair pass over that dataset's cached component
/// sets, then one `mutated` ack. Mutations count in `server.mutations`
/// (never `server.queries` — the query-accounting identity must not see
/// write traffic).
fn run_mutation(
    id: String,
    trace: String,
    dataset_name: String,
    scale: f64,
    updates: Vec<GraphUpdate>,
    writer: &SharedWriter,
    state: &Arc<ServerState>,
) -> std::io::Result<()> {
    let metrics = &state.metrics;
    let sink = &state.trace;
    metrics.mutations.inc();
    let t0 = Instant::now();
    if scale > state.config.max_scale && !state.datasets.is_file_backed(&dataset_name) {
        metrics.mutation_errors.inc();
        return write_frame(
            writer,
            &Frame::Error {
                id,
                trace,
                code: ErrorCode::BadRequest,
                message: format!(
                    "scale {} exceeds this server's max_scale {}",
                    scale, state.config.max_scale
                ),
            },
        );
    }
    let dataset = match state.datasets.get(&dataset_name, scale) {
        Ok(ds) => ds,
        Err(message) => {
            metrics.mutation_errors.inc();
            return write_frame(
                writer,
                &Frame::Error {
                    id,
                    trace,
                    code: ErrorCode::UnknownDataset,
                    message,
                },
            );
        }
    };
    let apply = PhaseTimer::start(sink, &trace, "mutate_apply");
    let outcome = match dataset.apply_batch(&updates) {
        Ok(outcome) => outcome,
        Err(message) => {
            apply.finish_with(&[("rejected", Field::B(true))]);
            metrics.mutation_errors.inc();
            return write_frame(
                writer,
                &Frame::Error {
                    id,
                    trace,
                    code: ErrorCode::BadRequest,
                    message,
                },
            );
        }
    };
    apply.finish_with(&[
        ("applied", Field::U(outcome.applied)),
        ("ignored", Field::U(outcome.ignored)),
        ("core_updates", Field::U(outcome.core_updates)),
    ]);
    metrics.updates_applied.add(outcome.applied);

    let (repairs, invalidations) = if outcome.delta.is_empty() {
        // Nothing changed: the version did not move and every cached
        // entry is still exact.
        (0, 0)
    } else {
        let repair = PhaseTimer::start(sink, &trace, "cache_repair");
        let counts = repair_cache(state, &dataset, &outcome);
        repair.finish_with(&[
            ("repairs", Field::U(counts.0)),
            ("invalidations", Field::U(counts.1)),
        ]);
        counts
    };

    let elapsed_ms = t0.elapsed().as_millis() as u64;
    if sink.enabled() {
        sink.event(
            &trace,
            "mutation",
            &[
                ("dataset", Field::S(dataset_name)),
                ("applied", Field::U(outcome.applied)),
                ("ignored", Field::U(outcome.ignored)),
                ("version", Field::U(outcome.version)),
                ("core_updates", Field::U(outcome.core_updates)),
                ("repairs", Field::U(repairs)),
                ("invalidations", Field::U(invalidations)),
                ("elapsed_ms", Field::U(elapsed_ms)),
            ],
        );
    }
    write_frame(
        writer,
        &Frame::Mutated {
            id,
            trace,
            applied: outcome.applied,
            ignored: outcome.ignored,
            version: outcome.version,
            core_updates: outcome.core_updates,
            repairs,
            invalidations,
            elapsed_ms,
        },
    )
}

/// The invalidate-and-repair pass: walks the dataset's cached component
/// sets and, for each, decides whether the batch's effective deltas
/// could have changed that `(k, r)` entry's preprocessing output. Proven-
/// unaffected entries are *repaired* — revalidated in place at the new
/// version, keeping their preprocessing investment — and everything else
/// is invalidated (dropped; the next query recomputes). Returns
/// `(repairs, invalidations)`.
fn repair_cache(
    state: &Arc<ServerState>,
    dataset: &HostedDataset,
    outcome: &MutationOutcome,
) -> (u64, u64) {
    let view = dataset.view();
    let delta = &outcome.delta;
    state
        .cache
        .repair_after_mutation(dataset.key(), outcome.version, |key, comps| {
            // Attribute changes move similarities on every incident pair
            // at once; classifying them per-entry would need the old
            // table. Conservative: invalidate.
            if !delta.attr_changed.is_empty() {
                return false;
            }
            let index = match &view.index {
                Some(ix) => ix,
                // No index yet means no query ever touched this dataset
                // version chain in a way we can reason about cheaply.
                None => return false,
            };
            let r = key.r_band as f64 * R_BAND_WIDTH;
            let threshold = dataset.threshold(r);
            let oracle =
                TableOracle::from_shared(view.attributes.clone(), dataset.metric(), threshold);
            // Vertices resident in this entry's preprocessed components.
            let in_comps = |w: kr_graph::VertexId| -> bool {
                comps
                    .iter()
                    .any(|c: &LocalComponent| c.local_to_global.contains(&w))
            };
            // A removed edge cannot change the entry when it was never
            // part of the entry's k-core subgraph: either the pair is
            // dissimilar at this r (the preprocess filter drops it) or an
            // endpoint sits outside every cached component (the unique
            // maximal k-core of the filtered subgraph is intact without
            // it).
            for &(u, v) in &delta.removed {
                if !oracle.is_similar(u, v) {
                    continue;
                }
                if !in_comps(u) || !in_comps(v) {
                    continue;
                }
                return false;
            }
            // An inserted edge cannot change the entry when it never
            // enters the candidate-induced similar subgraph: the pair is
            // dissimilar at this r, or — provided no vertex's band
            // coreness moved anywhere (`core_updates == 0`, so candidate
            // sets are exactly what they were) — an endpoint is not an
            // index candidate at this `(k, r)`.
            if !delta.inserted.is_empty() {
                let candidates = if outcome.core_updates == 0 {
                    Some(index.candidates(key.k, threshold).vertices)
                } else {
                    None
                };
                for &(u, v) in &delta.inserted {
                    if !oracle.is_similar(u, v) {
                        continue;
                    }
                    match &candidates {
                        Some(cand) if !cand.contains(&u) || !cand.contains(&v) => continue,
                        _ => return false,
                    }
                }
            }
            true
        })
}
