//! Wire protocol: versioned, line-delimited JSON.
//!
//! Every message is one JSON object on one line (the codec escapes all
//! control characters, so framing by `\n` is safe). Requests carry a
//! `cmd` field, responses a `frame` field; both carry the protocol
//! version `v` and echo the client-chosen request `id` so responses can
//! be correlated on pipelined connections.
//!
//! ```text
//! C: {"v":1,"cmd":"enumerate","id":"q1","dataset":"gowalla-like","scale":0.25,"k":3,"r":8}
//! S: {"v":1,"frame":"core","id":"q1","index":0,"vertices":[4,9,17,23]}
//! S: {"v":1,"frame":"core","id":"q1","index":1,"vertices":[40,41,42,44]}
//! S: {"v":1,"frame":"done","id":"q1","count":2,"completed":true,"cache":"miss","elapsed_ms":12,"nodes":523}
//! ```
//!
//! Enumeration results are **streamed**: each maximal core is written as
//! its own `core` frame the moment the engine confirms it (via
//! [`kr_core::CoreHook`]), so a client sees early results of a heavy
//! query long before `done`. Unknown *request* fields are ignored (a
//! `v2` client degrades gracefully against a `v1` server); an unknown
//! version is rejected with an `error` frame.
//!
//! Every response frame (except `hello`) also carries a server-assigned
//! `trace` id — the same id the server's span log uses for that request
//! (see `docs/OBSERVABILITY.md`), so a wire capture joins against the
//! trace log on this field. The `metrics` request returns a full
//! [`kr_obs::MetricsSnapshot`] — counters, gauges, and histograms with
//! their buckets — as a `metrics` frame. Both are additive: `trace` is
//! optional on decode (frames from older servers parse with an empty
//! trace), so v1 stays backward compatible.

use crate::cache::CacheStats;
use crate::datasets::AttributeValue;
use crate::json::{self, Json, JsonError};
use kr_graph::VertexId;
use kr_obs::{HistogramSnapshot, MetricsSnapshot, HIST_BUCKETS};

/// Protocol version spoken by this build. Bump on breaking changes; the
/// server rejects requests with a different `v`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Every request `cmd` this protocol version defines, by wire name.
/// `docs/PROTOCOL.md` is checked against this list by a test — extend
/// both together.
pub const REQUEST_CMDS: &[&str] = &[
    "enumerate",
    "maximum",
    "add_edge",
    "remove_edge",
    "set_attribute",
    "stats",
    "metrics",
    "ping",
    "shutdown",
];

/// Every response `frame` kind this protocol version defines, by wire
/// name. `docs/PROTOCOL.md` is checked against this list by a test —
/// extend both together.
pub const FRAME_KINDS: &[&str] = &[
    "hello",
    "busy",
    "core",
    "done",
    "mutated",
    "stats",
    "metrics",
    "pong",
    "shutting_down",
    "error",
];

/// Default dataset scale factor when a query omits `scale`.
pub const DEFAULT_SCALE: f64 = 0.25;

/// Algorithm family for a query (the server exposes the two
/// pruning-complete configurations; NaiveEnum and the clique baseline
/// stay offline tools).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// AdvEnum / AdvMax (all techniques; streaming-capable).
    Adv,
    /// BasicEnum / BasicMax (Theorems 2–3 only; enumeration results are
    /// buffered because maximality is only known after the post-filter).
    Basic,
}

impl Algo {
    /// Canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Adv => "adv",
            Algo::Basic => "basic",
        }
    }

    fn parse(text: &str) -> Option<Algo> {
        match text {
            "adv" => Some(Algo::Adv),
            "basic" => Some(Algo::Basic),
            _ => None,
        }
    }
}

/// Parameters shared by `enumerate` and `maximum` queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Dataset preset name (`kr_datagen::DatasetPreset::name`).
    pub dataset: String,
    /// Dataset scale factor (see [`DEFAULT_SCALE`]).
    pub scale: f64,
    /// Degree threshold `k` (≥ 1).
    pub k: u32,
    /// Similarity threshold `r`: max distance for geo presets, min
    /// similarity for keyword presets.
    pub r: f64,
    /// Algorithm family.
    pub algo: Algo,
    /// Worker threads (`1` = sequential, `0` = all cores).
    pub threads: usize,
    /// Wall-clock budget; clamped by the server's own ceiling.
    pub time_limit_ms: Option<u64>,
    /// Search-node budget; clamped by the server's own ceiling.
    pub node_limit: Option<u64>,
}

impl QuerySpec {
    /// A spec with defaults (`scale` = [`DEFAULT_SCALE`], `algo` = adv,
    /// sequential, no limits).
    pub fn new(dataset: &str, k: u32, r: f64) -> Self {
        QuerySpec {
            dataset: dataset.to_string(),
            scale: DEFAULT_SCALE,
            k,
            r,
            algo: Algo::Adv,
            threads: 1,
            time_limit_ms: None,
            node_limit: None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enumerate all maximal (k,r)-cores; results stream as `core` frames.
    Enumerate {
        /// Client-chosen correlation id (echoed on every response frame).
        id: String,
        /// Query parameters.
        spec: QuerySpec,
    },
    /// Find the maximum (k,r)-core; at most one `core` frame.
    Maximum {
        /// Correlation id.
        id: String,
        /// Query parameters.
        spec: QuerySpec,
    },
    /// Insert a batch of edges into a resident dataset (answered by one
    /// `mutated` frame; the whole batch applies atomically or not at
    /// all).
    AddEdges {
        /// Correlation id.
        id: String,
        /// Dataset preset / registered file name.
        dataset: String,
        /// Dataset scale factor (same resolution rules as a query's).
        scale: f64,
        /// Edges to insert, as `[u, v]` vertex-id pairs.
        edges: Vec<(VertexId, VertexId)>,
    },
    /// Remove a batch of edges from a resident dataset.
    RemoveEdges {
        /// Correlation id.
        id: String,
        /// Dataset preset / registered file name.
        dataset: String,
        /// Dataset scale factor (same resolution rules as a query's).
        scale: f64,
        /// Edges to remove, as `[u, v]` vertex-id pairs.
        edges: Vec<(VertexId, VertexId)>,
    },
    /// Replace attribute values for a batch of vertices.
    SetAttributes {
        /// Correlation id.
        id: String,
        /// Dataset preset / registered file name.
        dataset: String,
        /// Dataset scale factor (same resolution rules as a query's).
        scale: f64,
        /// `(vertex, replacement value)` pairs; the value family must
        /// match the dataset's attribute table.
        updates: Vec<(VertexId, AttributeValue)>,
    },
    /// Component-cache statistics.
    Stats {
        /// Correlation id.
        id: String,
    },
    /// Full metrics-registry snapshot (counters, gauges, histograms).
    Metrics {
        /// Correlation id.
        id: String,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: String,
    },
    /// Ask the server to stop accepting connections and exit cleanly.
    Shutdown {
        /// Correlation id.
        id: String,
    },
}

/// Cache outcome reported in a `done` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Preprocessed components were served from the cache.
    Hit,
    /// Preprocessing ran for this query (and was cached).
    Miss,
}

impl CacheOutcome {
    /// Canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }

    fn parse(text: &str) -> Option<CacheOutcome> {
        match text {
            "hit" => Some(CacheOutcome::Hit),
            "miss" => Some(CacheOutcome::Miss),
            _ => None,
        }
    }
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// First frame on every connection.
    Hello {
        /// Server protocol version.
        protocol: u64,
        /// Server software name.
        server: String,
    },
    /// Connection-level rejection: the server is at its connection cap.
    /// Sent *instead of* `hello` as the only frame on the connection,
    /// which the server then closes — clients should back off and retry.
    Busy {
        /// The `--max-connections` cap that was hit.
        max_connections: u64,
        /// Human-readable detail.
        message: String,
    },
    /// One (k,r)-core (enumeration: streamed incrementally; maximum: the
    /// single winner).
    Core {
        /// Correlation id.
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
        /// 0-based position in the stream.
        index: u64,
        /// Member vertices (global ids, sorted).
        vertices: Vec<VertexId>,
    },
    /// Query end marker.
    Done {
        /// Correlation id.
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
        /// Number of `core` frames sent for this query.
        count: u64,
        /// False when a node/time budget cut the search short.
        completed: bool,
        /// Whether preprocessing was served from the component cache.
        cache: CacheOutcome,
        /// Server-side wall clock for the query.
        elapsed_ms: u64,
        /// Search nodes visited.
        nodes: u64,
    },
    /// Acknowledges one mutation batch (`add_edge` / `remove_edge` /
    /// `set_attribute`): what was applied and what the invalidate-and-
    /// repair pass did to the component cache.
    Mutated {
        /// Correlation id.
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
        /// Updates that changed the dataset.
        applied: u64,
        /// No-op updates (duplicate insert, absent removal, identical
        /// attribute value).
        ignored: u64,
        /// Dataset version after the batch.
        version: u64,
        /// `(vertex, layer)` core numbers the incremental maintenance
        /// repaired in the decomposition index.
        core_updates: u64,
        /// Cached component sets proven still valid and kept.
        repairs: u64,
        /// Cached component sets dropped (next query rebuilds them).
        invalidations: u64,
        /// Server-side wall clock for the batch.
        elapsed_ms: u64,
    },
    /// Cache statistics snapshot.
    Stats {
        /// Correlation id.
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
        /// Counters since server start.
        stats: CacheStats,
    },
    /// Metrics-registry snapshot (the server's own registry merged with
    /// the process-global one).
    Metrics {
        /// Correlation id.
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
        /// Counters, gauges, and histograms (buckets included).
        snapshot: MetricsSnapshot,
    },
    /// Reply to `ping`.
    Pong {
        /// Correlation id.
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
    },
    /// Acknowledges `shutdown`; the server exits after this frame.
    ShuttingDown {
        /// Correlation id.
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
    },
    /// Request-level failure (the connection stays usable).
    Error {
        /// Correlation id ("" when the request was unparseable).
        id: String,
        /// Server-assigned trace id ("" = untraced / older server).
        trace: String,
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Error classes for [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON or missing/invalid fields.
    BadRequest,
    /// The request's `v` differs from [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The dataset name is not a known preset.
    UnknownDataset,
    /// The server failed internally.
    Internal,
    /// The request was declined by admission control (e.g. the target
    /// dataset is at its `--max-queries-per-dataset` in-flight limit).
    /// The connection stays usable — back off and retry.
    Busy,
}

impl ErrorCode {
    /// Canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownDataset => "unknown_dataset",
            ErrorCode::Internal => "internal",
            ErrorCode::Busy => "busy",
        }
    }

    fn parse(text: &str) -> Option<ErrorCode> {
        match text {
            "bad_request" => Some(ErrorCode::BadRequest),
            "unsupported_version" => Some(ErrorCode::UnsupportedVersion),
            "unknown_dataset" => Some(ErrorCode::UnknownDataset),
            "internal" => Some(ErrorCode::Internal),
            "busy" => Some(ErrorCode::Busy),
            _ => None,
        }
    }
}

/// Decode failure for a request or frame line.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line is not valid JSON.
    Json(JsonError),
    /// The line carries a different protocol version.
    UnsupportedVersion(Option<u64>),
    /// The JSON is well-formed but violates the message schema.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProtoError::UnsupportedVersion(Some(v)) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this server speaks v{PROTOCOL_VERSION})"
                )
            }
            ProtoError::UnsupportedVersion(None) => {
                write!(
                    f,
                    "missing protocol version (this server speaks v{PROTOCOL_VERSION})"
                )
            }
            ProtoError::Malformed(msg) => write!(f, "malformed message: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError::Json(e)
    }
}

fn malformed(msg: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(msg.into())
}

fn check_version(v: &Json) -> Result<(), ProtoError> {
    match v.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => Ok(()),
        other => Err(ProtoError::UnsupportedVersion(other)),
    }
}

fn get_id(v: &Json) -> String {
    v.get("id").and_then(Json::as_str).unwrap_or("").to_string()
}

fn get_trace(v: &Json) -> String {
    v.get("trace")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string()
}

/// An empty trace is omitted on the wire, keeping frames from a tracing
/// server distinguishable from (and backward compatible with) untraced
/// ones.
fn push_trace<'a>(trace: &'a str, fields: &mut Vec<(&'a str, Json)>) {
    if !trace.is_empty() {
        fields.push(("trace", json::s(trace)));
    }
}

/// Encodes a metrics snapshot as three name-keyed objects. Values are
/// exact up to 2^53 (the codec's integer range) — ~285 years of
/// microseconds, so latency sums fit comfortably.
fn metrics_to_fields(snap: &MetricsSnapshot, fields: &mut Vec<(&str, Json)>) {
    fields.push((
        "counters",
        Json::Obj(
            snap.counters
                .iter()
                .map(|(k, v)| (k.clone(), json::n(*v as f64)))
                .collect(),
        ),
    ));
    fields.push((
        "gauges",
        Json::Obj(
            snap.gauges
                .iter()
                .map(|(k, v)| (k.clone(), json::n(*v as f64)))
                .collect(),
        ),
    ));
    fields.push((
        "histograms",
        Json::Obj(
            snap.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        json::obj(vec![
                            ("count", json::n(h.count as f64)),
                            ("sum", json::n(h.sum as f64)),
                            (
                                "buckets",
                                Json::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(i, c)| {
                                            Json::Arr(vec![json::n(i as f64), json::n(c as f64)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        ),
    ));
}

fn obj_entries<'a>(v: &'a Json, key: &str) -> Result<&'a [(String, Json)], ProtoError> {
    match v.get(key) {
        Some(Json::Obj(fields)) => Ok(fields),
        _ => Err(malformed(format!("missing object field '{key}'"))),
    }
}

fn metrics_from_json(v: &Json) -> Result<MetricsSnapshot, ProtoError> {
    let mut snap = MetricsSnapshot::default();
    for (name, val) in obj_entries(v, "counters")? {
        let c = val
            .as_u64()
            .ok_or_else(|| malformed("counter values must be non-negative integers"))?;
        snap.counters.push((name.clone(), c));
    }
    for (name, val) in obj_entries(v, "gauges")? {
        let g = val
            .as_i64()
            .ok_or_else(|| malformed("gauge values must be integers"))?;
        snap.gauges.push((name.clone(), g));
    }
    for (name, val) in obj_entries(v, "histograms")? {
        let count = val
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| malformed("histogram missing integer field 'count'"))?;
        let sum = val
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or_else(|| malformed("histogram missing integer field 'sum'"))?;
        let buckets =
            val.get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| malformed("histogram missing array field 'buckets'"))?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        malformed("histogram buckets must be [index, count] pairs")
                    })?;
                    let i = pair[0]
                        .as_u64()
                        .filter(|&i| i < HIST_BUCKETS as u64)
                        .ok_or_else(|| malformed("bucket index out of range"))?;
                    let c = pair[1]
                        .as_u64()
                        .ok_or_else(|| malformed("bucket count must be a non-negative integer"))?;
                    Ok((i as u32, c))
                })
                .collect::<Result<Vec<_>, ProtoError>>()?;
        snap.histograms.push((
            name.clone(),
            HistogramSnapshot {
                count,
                sum,
                buckets,
            },
        ));
    }
    Ok(snap)
}

fn edges_to_json(edges: &[(VertexId, VertexId)]) -> Json {
    Json::Arr(
        edges
            .iter()
            .map(|&(u, v)| Json::Arr(vec![json::n(u as f64), json::n(v as f64)]))
            .collect(),
    )
}

fn attr_update_to_json(vertex: VertexId, value: &AttributeValue) -> Json {
    let mut fields = vec![("vertex", json::n(vertex as f64))];
    match value {
        AttributeValue::Point(x, y) => {
            fields.push(("point", Json::Arr(vec![json::n(*x), json::n(*y)])));
        }
        AttributeValue::Keywords(list) => {
            fields.push((
                "keywords",
                Json::Arr(
                    list.iter()
                        .map(|&(k, w)| Json::Arr(vec![json::n(k as f64), json::n(w)]))
                        .collect(),
                ),
            ));
        }
        AttributeValue::Vector(vec) => {
            fields.push((
                "vector",
                Json::Arr(vec.iter().map(|&x| json::n(x)).collect()),
            ));
        }
    }
    json::obj(fields)
}

fn vertex_from_json(x: &Json) -> Result<VertexId, ProtoError> {
    x.as_u64()
        .filter(|&x| x <= VertexId::MAX as u64)
        .map(|x| x as VertexId)
        .ok_or_else(|| malformed("vertex ids must be non-negative integers"))
}

fn scale_from_json(v: &Json) -> Result<f64, ProtoError> {
    match v.get("scale") {
        None => Ok(DEFAULT_SCALE),
        Some(s) => s
            .as_f64()
            .filter(|s| s.is_finite() && *s > 0.0 && *s <= 100.0)
            .ok_or_else(|| malformed("'scale' must be in (0, 100]")),
    }
}

/// Decodes the `(dataset, scale)` target shared by all mutation
/// requests.
fn mutation_target(v: &Json) -> Result<(String, f64), ProtoError> {
    let dataset = v
        .get("dataset")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing string field 'dataset'"))?
        .to_string();
    Ok((dataset, scale_from_json(v)?))
}

fn edges_from_json(v: &Json) -> Result<Vec<(VertexId, VertexId)>, ProtoError> {
    let arr = v
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| malformed("missing array field 'edges'"))?;
    if arr.is_empty() {
        return Err(malformed("'edges' must be a non-empty array"));
    }
    arr.iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| malformed("'edges' must hold [u, v] pairs"))?;
            Ok((vertex_from_json(&pair[0])?, vertex_from_json(&pair[1])?))
        })
        .collect()
}

fn attr_updates_from_json(v: &Json) -> Result<Vec<(VertexId, AttributeValue)>, ProtoError> {
    let arr = v
        .get("updates")
        .and_then(Json::as_arr)
        .ok_or_else(|| malformed("missing array field 'updates'"))?;
    if arr.is_empty() {
        return Err(malformed("'updates' must be a non-empty array"));
    }
    arr.iter()
        .map(|up| {
            let vertex = vertex_from_json(
                up.get("vertex")
                    .ok_or_else(|| malformed("update missing integer field 'vertex'"))?,
            )?;
            let value = match (up.get("point"), up.get("keywords"), up.get("vector")) {
                (Some(p), None, None) => {
                    let p = p
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| malformed("'point' must be an [x, y] pair"))?;
                    let coord = |x: &Json| {
                        x.as_f64()
                            .ok_or_else(|| malformed("'point' coordinates must be numbers"))
                    };
                    AttributeValue::Point(coord(&p[0])?, coord(&p[1])?)
                }
                (None, Some(kw), None) => {
                    let list = kw
                        .as_arr()
                        .ok_or_else(|| malformed("'keywords' must be an array"))?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                                malformed("'keywords' must hold [id, weight] pairs")
                            })?;
                            let id = pair[0]
                                .as_u64()
                                .filter(|&k| k <= u32::MAX as u64)
                                .ok_or_else(|| malformed("keyword ids must be u32 integers"))?;
                            let w = pair[1]
                                .as_f64()
                                .ok_or_else(|| malformed("keyword weights must be numbers"))?;
                            Ok((id as u32, w))
                        })
                        .collect::<Result<Vec<_>, ProtoError>>()?;
                    AttributeValue::Keywords(list)
                }
                (None, None, Some(vec)) => {
                    let vals = vec
                        .as_arr()
                        .ok_or_else(|| malformed("'vector' must be an array"))?
                        .iter()
                        .map(|x| {
                            x.as_f64()
                                .ok_or_else(|| malformed("'vector' components must be numbers"))
                        })
                        .collect::<Result<Vec<_>, ProtoError>>()?;
                    AttributeValue::Vector(vals)
                }
                _ => {
                    return Err(malformed(
                        "update must carry exactly one of 'point', 'keywords', 'vector'",
                    ))
                }
            };
            Ok((vertex, value))
        })
        .collect()
}

fn spec_to_fields(spec: &QuerySpec, fields: &mut Vec<(&str, Json)>) {
    fields.push(("dataset", json::s(&spec.dataset)));
    fields.push(("scale", json::n(spec.scale)));
    fields.push(("k", json::n(spec.k as f64)));
    fields.push(("r", json::n(spec.r)));
    fields.push(("algo", json::s(spec.algo.name())));
    fields.push(("threads", json::n(spec.threads as f64)));
    if let Some(ms) = spec.time_limit_ms {
        fields.push(("time_limit_ms", json::n(ms as f64)));
    }
    if let Some(limit) = spec.node_limit {
        fields.push(("node_limit", json::n(limit as f64)));
    }
}

fn spec_from_json(v: &Json) -> Result<QuerySpec, ProtoError> {
    let dataset = v
        .get("dataset")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing string field 'dataset'"))?
        .to_string();
    let k = v
        .get("k")
        .and_then(Json::as_u64)
        .filter(|&k| (1..=u32::MAX as u64).contains(&k))
        .ok_or_else(|| malformed("'k' must be an integer >= 1"))? as u32;
    let r = v
        .get("r")
        .and_then(Json::as_f64)
        .filter(|r| r.is_finite() && *r >= 0.0)
        .ok_or_else(|| malformed("'r' must be a finite number >= 0"))?;
    let scale = scale_from_json(v)?;
    let algo = match v.get("algo") {
        None => Algo::Adv,
        Some(a) => a
            .as_str()
            .and_then(Algo::parse)
            .ok_or_else(|| malformed("'algo' must be 'adv' or 'basic'"))?,
    };
    let threads = match v.get("threads") {
        None => 1,
        Some(t) => t
            .as_u64()
            .filter(|&t| t <= 1024)
            .ok_or_else(|| malformed("'threads' must be an integer <= 1024"))?
            as usize,
    };
    let opt_u64 = |key: &str| -> Result<Option<u64>, ProtoError> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| malformed(format!("'{key}' must be a non-negative integer"))),
        }
    };
    Ok(QuerySpec {
        dataset,
        scale,
        k,
        r,
        algo,
        threads,
        time_limit_ms: opt_u64("time_limit_ms")?,
        node_limit: opt_u64("node_limit")?,
    })
}

impl Request {
    /// Encodes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(&str, Json)> = vec![("v", json::n(PROTOCOL_VERSION as f64))];
        match self {
            Request::Enumerate { id, spec } => {
                fields.push(("cmd", json::s("enumerate")));
                fields.push(("id", json::s(id)));
                spec_to_fields(spec, &mut fields);
            }
            Request::Maximum { id, spec } => {
                fields.push(("cmd", json::s("maximum")));
                fields.push(("id", json::s(id)));
                spec_to_fields(spec, &mut fields);
            }
            Request::AddEdges {
                id,
                dataset,
                scale,
                edges,
            } => {
                fields.push(("cmd", json::s("add_edge")));
                fields.push(("id", json::s(id)));
                fields.push(("dataset", json::s(dataset)));
                fields.push(("scale", json::n(*scale)));
                fields.push(("edges", edges_to_json(edges)));
            }
            Request::RemoveEdges {
                id,
                dataset,
                scale,
                edges,
            } => {
                fields.push(("cmd", json::s("remove_edge")));
                fields.push(("id", json::s(id)));
                fields.push(("dataset", json::s(dataset)));
                fields.push(("scale", json::n(*scale)));
                fields.push(("edges", edges_to_json(edges)));
            }
            Request::SetAttributes {
                id,
                dataset,
                scale,
                updates,
            } => {
                fields.push(("cmd", json::s("set_attribute")));
                fields.push(("id", json::s(id)));
                fields.push(("dataset", json::s(dataset)));
                fields.push(("scale", json::n(*scale)));
                fields.push((
                    "updates",
                    Json::Arr(
                        updates
                            .iter()
                            .map(|(v, value)| attr_update_to_json(*v, value))
                            .collect(),
                    ),
                ));
            }
            Request::Stats { id } => {
                fields.push(("cmd", json::s("stats")));
                fields.push(("id", json::s(id)));
            }
            Request::Metrics { id } => {
                fields.push(("cmd", json::s("metrics")));
                fields.push(("id", json::s(id)));
            }
            Request::Ping { id } => {
                fields.push(("cmd", json::s("ping")));
                fields.push(("id", json::s(id)));
            }
            Request::Shutdown { id } => {
                fields.push(("cmd", json::s("shutdown")));
                fields.push(("id", json::s(id)));
            }
        }
        json::obj(fields).to_line()
    }

    /// Decodes one protocol line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = Json::parse(line)?;
        check_version(&v)?;
        let id = get_id(&v);
        match v.get("cmd").and_then(Json::as_str) {
            Some("enumerate") => Ok(Request::Enumerate {
                id,
                spec: spec_from_json(&v)?,
            }),
            Some("maximum") => Ok(Request::Maximum {
                id,
                spec: spec_from_json(&v)?,
            }),
            Some("add_edge") => {
                let (dataset, scale) = mutation_target(&v)?;
                Ok(Request::AddEdges {
                    id,
                    dataset,
                    scale,
                    edges: edges_from_json(&v)?,
                })
            }
            Some("remove_edge") => {
                let (dataset, scale) = mutation_target(&v)?;
                Ok(Request::RemoveEdges {
                    id,
                    dataset,
                    scale,
                    edges: edges_from_json(&v)?,
                })
            }
            Some("set_attribute") => {
                let (dataset, scale) = mutation_target(&v)?;
                Ok(Request::SetAttributes {
                    id,
                    dataset,
                    scale,
                    updates: attr_updates_from_json(&v)?,
                })
            }
            Some("stats") => Ok(Request::Stats { id }),
            Some("metrics") => Ok(Request::Metrics { id }),
            Some("ping") => Ok(Request::Ping { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            Some(other) => Err(malformed(format!("unknown cmd '{other}'"))),
            None => Err(malformed("missing string field 'cmd'")),
        }
    }
}

impl Frame {
    /// Encodes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(&str, Json)> = vec![("v", json::n(PROTOCOL_VERSION as f64))];
        match self {
            Frame::Hello { protocol, server } => {
                fields.push(("frame", json::s("hello")));
                fields.push(("protocol", json::n(*protocol as f64)));
                fields.push(("server", json::s(server)));
            }
            Frame::Busy {
                max_connections,
                message,
            } => {
                fields.push(("frame", json::s("busy")));
                fields.push(("max_connections", json::n(*max_connections as f64)));
                fields.push(("message", json::s(message)));
            }
            Frame::Core {
                id,
                trace,
                index,
                vertices,
            } => {
                fields.push(("frame", json::s("core")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
                fields.push(("index", json::n(*index as f64)));
                fields.push((
                    "vertices",
                    Json::Arr(vertices.iter().map(|&v| json::n(v as f64)).collect()),
                ));
            }
            Frame::Done {
                id,
                trace,
                count,
                completed,
                cache,
                elapsed_ms,
                nodes,
            } => {
                fields.push(("frame", json::s("done")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
                fields.push(("count", json::n(*count as f64)));
                fields.push(("completed", Json::Bool(*completed)));
                fields.push(("cache", json::s(cache.name())));
                fields.push(("elapsed_ms", json::n(*elapsed_ms as f64)));
                fields.push(("nodes", json::n(*nodes as f64)));
            }
            Frame::Mutated {
                id,
                trace,
                applied,
                ignored,
                version,
                core_updates,
                repairs,
                invalidations,
                elapsed_ms,
            } => {
                fields.push(("frame", json::s("mutated")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
                fields.push(("applied", json::n(*applied as f64)));
                fields.push(("ignored", json::n(*ignored as f64)));
                fields.push(("version", json::n(*version as f64)));
                fields.push(("core_updates", json::n(*core_updates as f64)));
                fields.push(("repairs", json::n(*repairs as f64)));
                fields.push(("invalidations", json::n(*invalidations as f64)));
                fields.push(("elapsed_ms", json::n(*elapsed_ms as f64)));
            }
            Frame::Stats { id, trace, stats } => {
                fields.push(("frame", json::s("stats")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
                fields.push(("hits", json::n(stats.hits as f64)));
                fields.push(("misses", json::n(stats.misses as f64)));
                fields.push(("evictions", json::n(stats.evictions as f64)));
                fields.push(("entries", json::n(stats.entries as f64)));
                fields.push(("resident_bytes", json::n(stats.resident_bytes as f64)));
                fields.push(("preprocess_ms", json::n(stats.preprocess_ms as f64)));
                fields.push(("oracle_evals", json::n(stats.oracle_evals as f64)));
                fields.push(("index_hits", json::n(stats.index_hits as f64)));
                fields.push(("residual_vertices", json::n(stats.residual_vertices as f64)));
                fields.push(("repairs", json::n(stats.repairs as f64)));
                fields.push(("invalidations", json::n(stats.invalidations as f64)));
            }
            Frame::Metrics {
                id,
                trace,
                snapshot,
            } => {
                fields.push(("frame", json::s("metrics")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
                metrics_to_fields(snapshot, &mut fields);
            }
            Frame::Pong { id, trace } => {
                fields.push(("frame", json::s("pong")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
            }
            Frame::ShuttingDown { id, trace } => {
                fields.push(("frame", json::s("shutting_down")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
            }
            Frame::Error {
                id,
                trace,
                code,
                message,
            } => {
                fields.push(("frame", json::s("error")));
                fields.push(("id", json::s(id)));
                push_trace(trace, &mut fields);
                fields.push(("code", json::s(code.name())));
                fields.push(("message", json::s(message)));
            }
        }
        json::obj(fields).to_line()
    }

    /// Decodes one protocol line.
    pub fn parse(line: &str) -> Result<Frame, ProtoError> {
        let v = Json::parse(line)?;
        check_version(&v)?;
        let id = get_id(&v);
        let trace = get_trace(&v);
        let req_u64 = |key: &str| -> Result<u64, ProtoError> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| malformed(format!("missing integer field '{key}'")))
        };
        match v.get("frame").and_then(Json::as_str) {
            Some("hello") => Ok(Frame::Hello {
                protocol: req_u64("protocol")?,
                server: v
                    .get("server")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            Some("busy") => Ok(Frame::Busy {
                max_connections: req_u64("max_connections")?,
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            Some("core") => {
                let vertices = v
                    .get("vertices")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| malformed("missing array field 'vertices'"))?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .filter(|&x| x <= VertexId::MAX as u64)
                            .map(|x| x as VertexId)
                            .ok_or_else(|| malformed("'vertices' must hold vertex ids"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Frame::Core {
                    id,
                    trace,
                    index: req_u64("index")?,
                    vertices,
                })
            }
            Some("done") => Ok(Frame::Done {
                id,
                trace,
                count: req_u64("count")?,
                completed: v
                    .get("completed")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| malformed("missing bool field 'completed'"))?,
                cache: v
                    .get("cache")
                    .and_then(Json::as_str)
                    .and_then(CacheOutcome::parse)
                    .ok_or_else(|| malformed("'cache' must be 'hit' or 'miss'"))?,
                elapsed_ms: req_u64("elapsed_ms")?,
                nodes: req_u64("nodes")?,
            }),
            Some("mutated") => Ok(Frame::Mutated {
                id,
                trace,
                applied: req_u64("applied")?,
                ignored: req_u64("ignored")?,
                version: req_u64("version")?,
                core_updates: req_u64("core_updates")?,
                repairs: req_u64("repairs")?,
                invalidations: req_u64("invalidations")?,
                elapsed_ms: req_u64("elapsed_ms")?,
            }),
            Some("stats") => Ok(Frame::Stats {
                id,
                trace,
                stats: CacheStats {
                    hits: req_u64("hits")?,
                    misses: req_u64("misses")?,
                    evictions: req_u64("evictions")?,
                    entries: req_u64("entries")? as usize,
                    // Absent on frames from pre-PR3 servers: default 0.
                    resident_bytes: v.get("resident_bytes").and_then(Json::as_u64).unwrap_or(0),
                    // Absent on frames from pre-PR4 servers: default 0.
                    preprocess_ms: v.get("preprocess_ms").and_then(Json::as_u64).unwrap_or(0),
                    oracle_evals: v.get("oracle_evals").and_then(Json::as_u64).unwrap_or(0),
                    // Absent on frames from pre-PR6 servers: default 0.
                    index_hits: v.get("index_hits").and_then(Json::as_u64).unwrap_or(0),
                    residual_vertices: v
                        .get("residual_vertices")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    // Absent on frames from pre-PR10 servers: default 0.
                    repairs: v.get("repairs").and_then(Json::as_u64).unwrap_or(0),
                    invalidations: v.get("invalidations").and_then(Json::as_u64).unwrap_or(0),
                },
            }),
            Some("metrics") => Ok(Frame::Metrics {
                id,
                trace,
                snapshot: metrics_from_json(&v)?,
            }),
            Some("pong") => Ok(Frame::Pong { id, trace }),
            Some("shutting_down") => Ok(Frame::ShuttingDown { id, trace }),
            Some("error") => Ok(Frame::Error {
                id,
                trace,
                code: v
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .ok_or_else(|| malformed("unknown error code"))?,
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            Some(other) => Err(malformed(format!("unknown frame '{other}'"))),
            None => Err(malformed("missing string field 'frame'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Enumerate {
                id: "q1".into(),
                spec: QuerySpec::new("gowalla-like", 3, 8.0),
            },
            Request::Maximum {
                id: "q\"2\"".into(),
                spec: QuerySpec {
                    algo: Algo::Basic,
                    threads: 4,
                    time_limit_ms: Some(500),
                    node_limit: Some(10_000),
                    scale: 0.5,
                    ..QuerySpec::new("dblp-like", 4, 0.3)
                },
            },
            Request::Stats { id: "s".into() },
            Request::Metrics { id: "m".into() },
            Request::Ping { id: String::new() },
            Request::Shutdown { id: "bye".into() },
            Request::AddEdges {
                id: "u1".into(),
                dataset: "gowalla-like".into(),
                scale: 0.25,
                edges: vec![(0, 7), (3, 12)],
            },
            Request::RemoveEdges {
                id: "u2".into(),
                dataset: "dblp-like".into(),
                scale: 1.0,
                edges: vec![(5, 6)],
            },
            Request::SetAttributes {
                id: "u3".into(),
                dataset: "gowalla-like".into(),
                scale: 0.25,
                updates: vec![
                    (4, AttributeValue::Point(1.5, -2.0)),
                    (9, AttributeValue::Keywords(vec![(3, 1.0), (8, 0.5)])),
                    (2, AttributeValue::Vector(vec![0.0, 1.0, 2.5])),
                ],
            },
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frames = vec![
            Frame::Hello {
                protocol: 1,
                server: "kr-server/0.1.0".into(),
            },
            Frame::Busy {
                max_connections: 256,
                message: "connection cap reached".into(),
            },
            Frame::Core {
                id: "q1".into(),
                trace: "00f1a2b3c4d5e6f7".into(),
                index: 3,
                vertices: vec![0, 5, 17],
            },
            Frame::Done {
                id: "q1".into(),
                trace: "00f1a2b3c4d5e6f7".into(),
                count: 4,
                completed: true,
                cache: CacheOutcome::Hit,
                elapsed_ms: 12,
                nodes: 523,
            },
            Frame::Stats {
                id: "s".into(),
                trace: String::new(),
                stats: CacheStats {
                    hits: 1,
                    misses: 2,
                    evictions: 0,
                    entries: 2,
                    resident_bytes: 4096,
                    preprocess_ms: 17,
                    oracle_evals: 12345,
                    index_hits: 2,
                    residual_vertices: 678,
                    repairs: 3,
                    invalidations: 1,
                },
            },
            Frame::Mutated {
                id: "u1".into(),
                trace: "00f1a2b3c4d5e6f7".into(),
                applied: 2,
                ignored: 1,
                version: 7,
                core_updates: 5,
                repairs: 3,
                invalidations: 1,
                elapsed_ms: 4,
            },
            Frame::Metrics {
                id: "m".into(),
                trace: "deadbeefdeadbeef".into(),
                snapshot: MetricsSnapshot {
                    counters: vec![
                        ("server.queries".into(), 5),
                        ("server.requests_malformed".into(), 1),
                    ],
                    gauges: vec![("server.active_queries".into(), -2)],
                    histograms: vec![(
                        "server.query_latency_us".into(),
                        HistogramSnapshot {
                            count: 5,
                            sum: 12_345,
                            buckets: vec![(0, 1), (63, 3), (495, 1)],
                        },
                    )],
                },
            },
            Frame::Pong {
                id: "p".into(),
                trace: "0000000000000001".into(),
            },
            Frame::ShuttingDown {
                id: String::new(),
                trace: String::new(),
            },
            Frame::Error {
                id: "x".into(),
                trace: "ffffffffffffffff".into(),
                code: ErrorCode::UnknownDataset,
                message: "no such preset: nope".into(),
            },
            Frame::Error {
                id: "y".into(),
                trace: String::new(),
                code: ErrorCode::Busy,
                message: "dataset at its admission limit".into(),
            },
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Frame::parse(&line).unwrap(), frame, "{line}");
        }
    }

    #[test]
    fn frame_kinds_and_request_cmds_are_complete() {
        // One sample message per enum variant; every wire name must be
        // listed in the public constants (which docs/PROTOCOL.md is in
        // turn checked against), and the counts must match so a new
        // variant cannot ship without extending the list.
        let spec = QuerySpec::new("d", 2, 1.0);
        let reqs = [
            Request::Enumerate {
                id: "i".into(),
                spec: spec.clone(),
            },
            Request::Maximum {
                id: "i".into(),
                spec,
            },
            Request::Stats { id: "i".into() },
            Request::Metrics { id: "i".into() },
            Request::Ping { id: "i".into() },
            Request::Shutdown { id: "i".into() },
            Request::AddEdges {
                id: "i".into(),
                dataset: "d".into(),
                scale: 1.0,
                edges: vec![(0, 1)],
            },
            Request::RemoveEdges {
                id: "i".into(),
                dataset: "d".into(),
                scale: 1.0,
                edges: vec![(0, 1)],
            },
            Request::SetAttributes {
                id: "i".into(),
                dataset: "d".into(),
                scale: 1.0,
                updates: vec![(0, AttributeValue::Point(0.0, 0.0))],
            },
        ];
        assert_eq!(reqs.len(), REQUEST_CMDS.len());
        for req in &reqs {
            let line = req.to_line();
            let cmd = Json::parse(&line)
                .unwrap()
                .get("cmd")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            assert!(REQUEST_CMDS.contains(&cmd.as_str()), "{cmd} not listed");
        }
        let frames = [
            Frame::Hello {
                protocol: 1,
                server: String::new(),
            },
            Frame::Busy {
                max_connections: 1,
                message: String::new(),
            },
            Frame::Core {
                id: "i".into(),
                trace: String::new(),
                index: 0,
                vertices: vec![],
            },
            Frame::Done {
                id: "i".into(),
                trace: String::new(),
                count: 0,
                completed: true,
                cache: CacheOutcome::Hit,
                elapsed_ms: 0,
                nodes: 0,
            },
            Frame::Stats {
                id: "i".into(),
                trace: String::new(),
                stats: CacheStats::default(),
            },
            Frame::Mutated {
                id: "i".into(),
                trace: String::new(),
                applied: 0,
                ignored: 0,
                version: 0,
                core_updates: 0,
                repairs: 0,
                invalidations: 0,
                elapsed_ms: 0,
            },
            Frame::Metrics {
                id: "i".into(),
                trace: String::new(),
                snapshot: MetricsSnapshot::default(),
            },
            Frame::Pong {
                id: "i".into(),
                trace: String::new(),
            },
            Frame::ShuttingDown {
                id: "i".into(),
                trace: String::new(),
            },
            Frame::Error {
                id: "i".into(),
                trace: String::new(),
                code: ErrorCode::Internal,
                message: String::new(),
            },
        ];
        assert_eq!(frames.len(), FRAME_KINDS.len());
        for frame in &frames {
            let line = frame.to_line();
            let kind = Json::parse(&line)
                .unwrap()
                .get("frame")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            assert!(FRAME_KINDS.contains(&kind.as_str()), "{kind} not listed");
        }
    }

    #[test]
    fn empty_trace_omitted_on_wire() {
        let line = Frame::Pong {
            id: "p".into(),
            trace: String::new(),
        }
        .to_line();
        assert!(!line.contains("trace"), "{line}");
    }

    #[test]
    fn optional_frame_fields_default_against_old_literals() {
        // Table-driven backward-compatibility pin: every optional field
        // added after the v1 freeze (PR 3 resident_bytes, PR 4
        // preprocess_ms/oracle_evals, PR 6 index_hits/residual_vertices,
        // PR 7 trace) must decode as 0/absent from a frame literal the
        // original v1 server would have emitted. A row failing here means
        // a new field silently became mandatory — a wire break.
        struct Case {
            name: &'static str,
            line: &'static str,
            check: fn(Frame),
        }
        let cases = [
            Case {
                name: "pre-PR3/4/6 stats frame: all optional counters zero",
                line: r#"{"v":1,"frame":"stats","id":"s","hits":3,"misses":1,"evictions":0,"entries":1}"#,
                check: |f| match f {
                    Frame::Stats { trace, stats, .. } => {
                        assert_eq!(stats.hits, 3);
                        assert_eq!(stats.resident_bytes, 0, "PR 3 field");
                        assert_eq!(stats.preprocess_ms, 0, "PR 4 field");
                        assert_eq!(stats.oracle_evals, 0, "PR 4 field");
                        assert_eq!(stats.index_hits, 0, "PR 6 field");
                        assert_eq!(stats.residual_vertices, 0, "PR 6 field");
                        assert_eq!(trace, "", "PR 7 field");
                        assert_eq!(stats.repairs, 0, "PR 10 field");
                        assert_eq!(stats.invalidations, 0, "PR 10 field");
                    }
                    other => panic!("wrong frame {other:?}"),
                },
            },
            Case {
                name: "pre-PR7 core frame: no trace",
                line: r#"{"v":1,"frame":"core","id":"q","index":0,"vertices":[1,2]}"#,
                check: |f| match f {
                    Frame::Core {
                        trace, vertices, ..
                    } => {
                        assert_eq!(trace, "");
                        assert_eq!(vertices, vec![1, 2]);
                    }
                    other => panic!("wrong frame {other:?}"),
                },
            },
            Case {
                name: "pre-PR7 done frame: no trace",
                line: r#"{"v":1,"frame":"done","id":"q","count":1,"completed":true,"cache":"miss","elapsed_ms":5,"nodes":9}"#,
                check: |f| match f {
                    Frame::Done { trace, count, .. } => {
                        assert_eq!(trace, "");
                        assert_eq!(count, 1);
                    }
                    other => panic!("wrong frame {other:?}"),
                },
            },
            Case {
                name: "pre-PR7 pong frame: no trace",
                line: r#"{"v":1,"frame":"pong","id":"p"}"#,
                check: |f| match f {
                    Frame::Pong { trace, .. } => assert_eq!(trace, ""),
                    other => panic!("wrong frame {other:?}"),
                },
            },
            Case {
                name: "pre-PR7 error frame: no trace",
                line: r#"{"v":1,"frame":"error","id":"","code":"bad_request","message":"m"}"#,
                check: |f| match f {
                    Frame::Error { trace, code, .. } => {
                        assert_eq!(trace, "");
                        assert_eq!(code, ErrorCode::BadRequest);
                    }
                    other => panic!("wrong frame {other:?}"),
                },
            },
            Case {
                name: "metrics frame with empty sections parses as empty snapshot",
                line: r#"{"v":1,"frame":"metrics","id":"m","counters":{},"gauges":{},"histograms":{}}"#,
                check: |f| match f {
                    Frame::Metrics { snapshot, .. } => {
                        assert_eq!(snapshot, MetricsSnapshot::default())
                    }
                    other => panic!("wrong frame {other:?}"),
                },
            },
        ];
        for case in cases {
            let frame = Frame::parse(case.line)
                .unwrap_or_else(|e| panic!("{}: parse failed: {e}", case.name));
            (case.check)(frame);
        }
    }

    #[test]
    fn malformed_metrics_frames_rejected() {
        for bad in [
            // missing sections
            r#"{"v":1,"frame":"metrics","id":"m"}"#,
            // bucket index beyond the table
            r#"{"v":1,"frame":"metrics","id":"m","counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"buckets":[[496,1]]}}}"#,
            // bucket pair wrong arity
            r#"{"v":1,"frame":"metrics","id":"m","counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"buckets":[[1]]}}}"#,
            // counter not an integer
            r#"{"v":1,"frame":"metrics","id":"m","counters":{"c":1.5},"gauges":{},"histograms":{}}"#,
        ] {
            assert!(
                matches!(Frame::parse(bad), Err(ProtoError::Malformed(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let line = r#"{"v":2,"cmd":"ping","id":"x"}"#;
        assert!(matches!(
            Request::parse(line),
            Err(ProtoError::UnsupportedVersion(Some(2)))
        ));
        let line = r#"{"cmd":"ping"}"#;
        assert!(matches!(
            Request::parse(line),
            Err(ProtoError::UnsupportedVersion(None))
        ));
    }

    #[test]
    fn unknown_request_fields_ignored() {
        let line = r#"{"v":1,"cmd":"enumerate","id":"q","dataset":"dblp-like","k":3,"r":0.2,"future_field":[1,2]}"#;
        let req = Request::parse(line).unwrap();
        match req {
            Request::Enumerate { spec, .. } => {
                assert_eq!(spec.scale, DEFAULT_SCALE);
                assert_eq!(spec.algo, Algo::Adv);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn field_validation() {
        for bad in [
            r#"{"v":1,"cmd":"enumerate","dataset":"x","k":0,"r":1}"#,
            r#"{"v":1,"cmd":"enumerate","dataset":"x","k":3,"r":-1}"#,
            r#"{"v":1,"cmd":"enumerate","dataset":"x","k":3}"#,
            r#"{"v":1,"cmd":"enumerate","k":3,"r":1}"#,
            r#"{"v":1,"cmd":"enumerate","dataset":"x","k":3,"r":1,"scale":0}"#,
            r#"{"v":1,"cmd":"frobnicate"}"#,
            r#"{"v":1}"#,
        ] {
            assert!(
                matches!(Request::parse(bad), Err(ProtoError::Malformed(_))),
                "{bad}"
            );
        }
    }
}
