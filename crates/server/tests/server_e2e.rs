//! End-to-end service tests: a real server on an ephemeral port, driven
//! through the shipped [`Client`] — the same code path `krcore-cli query`
//! uses, so these tests exercise the full wire protocol.

use kr_core::{enumerate_maximal, find_maximum, AlgoConfig};
use kr_datagen::DatasetPreset;
use kr_server::{
    Algo, CacheOutcome, Client, ErrorCode, Frame, QuerySpec, Request, Server, ServerConfig,
};
use kr_similarity::Threshold;

const SCALE: f64 = 0.2;

fn spawn_server() -> kr_server::ServerHandle {
    Server::bind(ServerConfig::default())
        .expect("bind ephemeral port")
        .spawn()
}

/// The reference answer: the direct engine call the server must match.
fn direct_problem(preset: DatasetPreset, k: u32, r: f64) -> kr_core::ProblemInstance {
    let d = preset.generate_scaled(SCALE);
    let threshold = if d.metric.is_distance() {
        Threshold::MaxDistance(r)
    } else {
        Threshold::MinSimilarity(r)
    };
    kr_core::ProblemInstance::new(d.graph, d.attributes, d.metric, threshold, k)
}

fn spec(preset: DatasetPreset, k: u32, r: f64) -> QuerySpec {
    QuerySpec {
        scale: SCALE,
        ..QuerySpec::new(preset.name(), k, r)
    }
}

#[test]
fn enumeration_and_maximum_match_direct_engine_on_two_presets() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (preset, k, r) in [
        (DatasetPreset::GowallaLike, 3, 8.0),
        (DatasetPreset::BrightkiteLike, 3, 8.0),
    ] {
        let problem = direct_problem(preset, k, r);
        let expect_enum = enumerate_maximal(&problem, &AlgoConfig::adv_enum());
        let expect_max = find_maximum(&problem, &AlgoConfig::adv_max());

        let got = client.enumerate(spec(preset, k, r)).expect("enumerate");
        assert!(got.completed);
        let mut streamed = got.cores.clone();
        streamed.sort();
        let expected: Vec<Vec<u32>> = expect_enum
            .cores
            .iter()
            .map(|c| c.vertices.clone())
            .collect();
        assert_eq!(streamed, expected, "{} enumeration", preset.name());
        assert!(!expected.is_empty(), "test instance must be non-trivial");

        let got = client.maximum(spec(preset, k, r)).expect("maximum");
        assert!(got.completed);
        assert_eq!(
            got.cores,
            expect_max
                .core
                .iter()
                .map(|c| c.vertices.clone())
                .collect::<Vec<_>>(),
            "{} maximum",
            preset.name()
        );
    }
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn repeated_query_is_served_from_cache_without_repreprocessing() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let q = spec(DatasetPreset::GowallaLike, 3, 8.0);

    let first = client.enumerate(q.clone()).expect("first query");
    assert_eq!(first.cache, CacheOutcome::Miss);
    let stats = client.stats().expect("stats");
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
    assert!(
        stats.oracle_evals > 0,
        "a cache miss must report its metric evaluations"
    );
    let cold_evals = stats.oracle_evals;
    let cold_ms = stats.preprocess_ms;

    // Same (dataset, k, r): no new preprocessing, identical results.
    let second = client.enumerate(q.clone()).expect("second query");
    assert_eq!(second.cache, CacheOutcome::Hit);
    assert_eq!(second.cores, first.cores);
    let stats = client.stats().expect("stats");
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (1, 1, 1),
        "second query must not preprocess again"
    );
    assert_eq!(
        (stats.oracle_evals, stats.preprocess_ms),
        (cold_evals, cold_ms),
        "a cache hit spends no preprocessing"
    );

    // The maximum query for the same parameters shares the entry too.
    let max = client.maximum(q).expect("maximum");
    assert_eq!(max.cache, CacheOutcome::Hit);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.misses, 1, "maximum reused the cached components");

    // A different k is a different key.
    let other = client
        .enumerate(spec(DatasetPreset::GowallaLike, 4, 8.0))
        .expect("different k");
    assert_eq!(other.cache, CacheOutcome::Miss);
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn two_concurrent_clients_get_complete_correct_streams() {
    let handle = spawn_server();
    let addr = handle.addr();
    let specs = [
        spec(DatasetPreset::GowallaLike, 3, 8.0),
        spec(DatasetPreset::BrightkiteLike, 3, 8.0),
    ];
    let workers: Vec<_> = specs
        .into_iter()
        .map(|q| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Hammer the same connection a few times to overlap with
                // the other client's preprocessing and queries.
                let first = client.enumerate(q.clone()).expect("enumerate");
                for _ in 0..3 {
                    let again = client.enumerate(q.clone()).expect("repeat");
                    assert_eq!(again.cores, first.cores);
                }
                (q, first)
            })
        })
        .collect();
    for worker in workers {
        let (q, got) = worker.join().expect("client thread");
        let preset = DatasetPreset::all()
            .into_iter()
            .find(|p| p.name() == q.dataset)
            .unwrap();
        let expect = enumerate_maximal(&direct_problem(preset, q.k, q.r), &AlgoConfig::adv_enum());
        let mut streamed = got.cores.clone();
        streamed.sort();
        assert_eq!(
            streamed,
            expect
                .cores
                .iter()
                .map(|c| c.vertices.clone())
                .collect::<Vec<_>>(),
            "concurrent client on {} got a wrong or truncated stream",
            q.dataset
        );
    }
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn parallel_engine_answers_match_sequential_over_the_wire() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let base = spec(DatasetPreset::GowallaLike, 3, 8.0);
    let seq = client.enumerate(base.clone()).expect("sequential");
    let par = client
        .enumerate(QuerySpec {
            threads: 4,
            ..base.clone()
        })
        .expect("parallel");
    let (mut a, mut b) = (seq.cores.clone(), par.cores.clone());
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(
        par.cache,
        CacheOutcome::Hit,
        "same key regardless of threads"
    );
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn budget_limited_query_reports_incomplete() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let q = QuerySpec {
        node_limit: Some(1),
        ..spec(DatasetPreset::GowallaLike, 3, 8.0)
    };
    let got = client.enumerate(q).expect("limited query still answers");
    assert!(!got.completed, "1-node budget cannot finish");
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn protocol_errors_leave_the_connection_usable() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Unknown dataset.
    let err = client
        .enumerate(spec_named("middle-earth"))
        .expect_err("unknown dataset");
    match err {
        kr_server::ClientError::Server { code, .. } => {
            assert_eq!(code, ErrorCode::UnknownDataset)
        }
        other => panic!("wrong error {other}"),
    }

    // Wrong version / raw garbage, sent on the raw socket.
    client
        .send(&Request::Ping { id: "x".into() })
        .expect("still usable");
    match client.read_frame().expect("pong") {
        Frame::Pong { id, .. } => assert_eq!(id, "x"),
        other => panic!("wrong frame {other:?}"),
    }
    handle.shutdown_and_join().expect("clean shutdown");
}

fn spec_named(name: &str) -> QuerySpec {
    QuerySpec {
        scale: SCALE,
        ..QuerySpec::new(name, 3, 8.0)
    }
}

#[test]
fn version_mismatch_rejected_over_the_wire() {
    use std::io::{BufRead, BufReader, Write};
    let handle = spawn_server();
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello");
    assert!(matches!(
        Frame::parse(line.trim()).expect("hello frame"),
        Frame::Hello { protocol: 1, .. }
    ));
    stream
        .write_all(b"{\"v\":99,\"cmd\":\"ping\",\"id\":\"z\"}\n")
        .expect("send");
    line.clear();
    reader.read_line(&mut line).expect("error frame");
    match Frame::parse(line.trim()).expect("parse") {
        Frame::Error { id, code, .. } => {
            assert_eq!(id, "z");
            assert_eq!(code, ErrorCode::UnsupportedVersion);
        }
        other => panic!("wrong frame {other:?}"),
    }
    handle.shutdown_and_join().expect("clean shutdown");
}

/// Result frames must be byte-identical no matter whether the arena came
/// fresh from preprocessing or `Arc`-shared out of the component cache —
/// the wire bytes pin the CSR arena's determinism end to end (only the
/// `done` frame may differ, in its timing fields).
#[test]
fn raw_result_frames_byte_identical_cold_vs_cached() {
    use std::io::{BufRead, BufReader, Write};
    let handle = spawn_server();
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello");

    let run_query = |stream: &mut std::net::TcpStream,
                     reader: &mut BufReader<std::net::TcpStream>,
                     id: &str|
     -> (Vec<Vec<u8>>, CacheOutcome) {
        let req = Request::Enumerate {
            id: id.to_string(),
            spec: spec(DatasetPreset::GowallaLike, 3, 8.0),
        };
        stream
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("send");
        let mut core_lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("frame");
            match Frame::parse(line.trim()).expect("parse") {
                Frame::Core { trace, .. } => {
                    // Strip the correlation id and the per-query trace id
                    // so runs with different ids stay comparable;
                    // everything else must match exactly.
                    let stripped = line
                        .trim()
                        .replace(&format!("\"id\":\"{id}\""), "\"id\":\"_\"")
                        .replace(&format!("\"trace\":\"{trace}\""), "\"trace\":\"_\"");
                    core_lines.push(stripped.into_bytes());
                }
                Frame::Done { cache, .. } => return (core_lines, cache),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    };

    let (cold, outcome_cold) = run_query(&mut stream, &mut reader, "q-cold");
    let (warm, outcome_warm) = run_query(&mut stream, &mut reader, "q-warm");
    assert_eq!(outcome_cold, CacheOutcome::Miss);
    assert_eq!(outcome_warm, CacheOutcome::Hit);
    assert!(!cold.is_empty(), "test instance must emit cores");
    assert_eq!(
        cold, warm,
        "cached arena must serialize byte-identically to the fresh one"
    );
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn basic_algo_buffered_results_match_adv() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let adv = client
        .enumerate(spec(DatasetPreset::BrightkiteLike, 3, 8.0))
        .expect("adv");
    let basic = client
        .enumerate(QuerySpec {
            algo: Algo::Basic,
            ..spec(DatasetPreset::BrightkiteLike, 3, 8.0)
        })
        .expect("basic");
    let (mut a, mut b) = (adv.cores.clone(), basic.cores.clone());
    a.sort();
    b.sort();
    assert_eq!(a, b, "BasicEnum must agree with AdvEnum");
    handle.shutdown_and_join().expect("clean shutdown");
}
