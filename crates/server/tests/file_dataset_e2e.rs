//! End-to-end tests for file-backed datasets: a real server hosting a
//! `.krb` snapshot, driven over the wire.
//!
//! The enumeration check is **byte-identical at the frame level**: the
//! raw `core` frame lines received from the socket must equal, byte for
//! byte, the lines an in-process engine run over the same loaded graph
//! would emit through the same streaming hook.

use kr_core::{enumerate_maximal_prepared, find_maximum_prepared, AlgoConfig, CoreHook, KrCore};
use kr_datagen::DatasetPreset;
use kr_server::{
    cache::r_band, dataset_key, CacheKey, CacheOutcome, Client, Frame, QuerySpec, Request, Server,
    ServerConfig,
};
use kr_similarity::{write_snapshot_file, Threshold};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const K: u32 = 3;
const R: f64 = 8.0;

/// Writes a Brightkite-like dataset (identity original ids, so dense ids
/// match the direct in-memory instance) as a snapshot in a temp file.
fn write_dataset_snapshot(tag: &str) -> (PathBuf, kr_core::ProblemInstance) {
    let d = DatasetPreset::BrightkiteLike.generate_scaled(0.2);
    let n = d.graph.num_vertices();
    let original_ids: Vec<u64> = (0..n as u64).collect();
    let path = std::env::temp_dir().join(format!("kr_file_e2e_{tag}_{}.krb", std::process::id()));
    write_snapshot_file(&path, &d.graph, &original_ids, &d.attributes, d.metric)
        .expect("write snapshot");
    let problem = kr_core::ProblemInstance::new(
        d.graph,
        d.attributes,
        d.metric,
        Threshold::MaxDistance(R),
        K,
    );
    (path, problem)
}

fn serve_file(name: &str, path: &Path) -> kr_server::ServerHandle {
    Server::bind(ServerConfig {
        file_datasets: vec![(name.to_string(), path.display().to_string())],
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
}

/// The exact `core` frame lines the server must produce for query `id`:
/// an in-process run over the same components, streamed through the same
/// hook in the same order.
fn expected_core_lines(comps: &[kr_core::LocalComponent], id: &str, trace: &str) -> Vec<String> {
    let streamed: Arc<Mutex<Vec<KrCore>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = streamed.clone();
    let cfg = AlgoConfig::adv_enum().with_on_core(CoreHook::new(move |core: &KrCore| {
        sink.lock().unwrap().push(core.clone());
    }));
    let res = enumerate_maximal_prepared(comps, &cfg);
    assert!(res.completed);
    let streamed = streamed.lock().unwrap();
    assert_eq!(streamed.len(), res.cores.len());
    streamed
        .iter()
        .enumerate()
        .map(|(index, core)| {
            Frame::Core {
                id: id.to_string(),
                trace: trace.to_string(),
                index: index as u64,
                vertices: core.vertices.clone(),
            }
            .to_line()
        })
        .collect()
}

#[test]
fn served_snapshot_frames_are_byte_identical_to_in_process_engine() {
    let (path, problem) = write_dataset_snapshot("frames");
    let handle = serve_file("bk-file", &path);

    // Raw socket: this test pins wire bytes, not client-side parses.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello");
    assert!(line.contains("\"frame\":\"hello\""), "{line}");

    let mut spec = QuerySpec::new("bk-file", K, R);
    spec.scale = 0.25; // ignored for file-backed datasets
    let req = Request::Enumerate {
        id: "q1".to_string(),
        spec,
    };
    let mut w = stream.try_clone().expect("clone");
    w.write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send");

    let comps = problem.preprocess();

    let mut received = Vec::new();
    let done_count: u64;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("frame");
        let line = line.trim_end_matches('\n').to_string();
        if line.contains("\"frame\":\"done\"") {
            match Frame::parse(&line).expect("done frame") {
                Frame::Done {
                    count,
                    completed,
                    cache,
                    ..
                } => {
                    done_count = count;
                    assert!(completed);
                    assert_eq!(cache, CacheOutcome::Miss);
                }
                other => panic!("wrong frame {other:?}"),
            }
            break;
        }
        received.push(line);
    }
    // The server stamps one trace id per query; pin the expected bytes
    // with the id it actually assigned (taken from the first frame).
    let trace = match Frame::parse(&received[0]).expect("core frame") {
        Frame::Core { trace, .. } => trace,
        other => panic!("wrong frame {other:?}"),
    };
    assert_eq!(trace.len(), 16, "trace ids are 16 hex digits: {trace:?}");
    let expected = expected_core_lines(&comps, "q1", &trace);
    assert!(!expected.is_empty(), "test instance must be non-trivial");
    assert_eq!(done_count, expected.len() as u64);
    assert_eq!(
        received, expected,
        "core frames must be byte-identical to the in-process engine's stream"
    );

    handle.shutdown_and_join().expect("clean shutdown");
    let _ = std::fs::remove_file(path);
}

#[test]
fn file_dataset_caches_under_its_dataset_key_and_ignores_scale() {
    let (path, problem) = write_dataset_snapshot("cache");
    let handle = serve_file("bk-file", &path);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let first = client
        .enumerate(QuerySpec::new("bk-file", K, R))
        .expect("first");
    assert_eq!(first.cache, CacheOutcome::Miss);

    // The component cache holds the entry under dataset_key(name, 1.0) —
    // a probing get_or_build must hit without building.
    let key = CacheKey {
        dataset: dataset_key("bk-file", 1.0),
        k: K,
        r_band: r_band(R),
    };
    let (_, out) = handle.state().cache.get_or_build(&key, 0, || {
        panic!("file-backed entry must already be cached")
    });
    assert!(out.hit, "cache entry must live under {:?}", key.dataset);

    // A different requested scale maps to the same dataset and the same
    // cache entry: hit, identical results — even a scale beyond the
    // server's max_scale generation policy (2.0 by default), which only
    // governs what the registry may *generate*.
    let mut other_scale = QuerySpec::new("bk-file", K, R);
    other_scale.scale = 4.0;
    let second = client.enumerate(other_scale).expect("second");
    assert_eq!(second.cache, CacheOutcome::Hit);
    assert_eq!(second.cores, first.cores);

    // Stats frame: exactly one miss (the probe above counts one hit).
    let stats = client.stats().expect("stats");
    assert_eq!(stats.misses, 1);
    assert!(stats.oracle_evals > 0);

    // maximum over the wire matches the in-process engine.
    let max = client
        .maximum(QuerySpec::new("bk-file", K, R))
        .expect("max");
    let comps = problem.preprocess();
    let direct = find_maximum_prepared(&comps, &AlgoConfig::adv_max());
    assert_eq!(
        max.cores,
        direct
            .core
            .iter()
            .map(|c| c.vertices.clone())
            .collect::<Vec<_>>()
    );

    handle.shutdown_and_join().expect("clean shutdown");
    let _ = std::fs::remove_file(path);
}

#[test]
fn fixture_snapshot_is_servable() {
    // The golden fixture committed at the repo root, served end to end.
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/tiny_points.krb");
    let handle = serve_file("tiny", &path);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let res = client
        .enumerate(QuerySpec::new("tiny", 3, 2.0))
        .expect("enumerate");
    // The fixture is a unit-square 4-clique (dense ids 0..4) plus a far
    // pendant: exactly one maximal (3, 2.0)-core.
    assert_eq!(res.cores, vec![vec![0, 1, 2, 3]]);
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn binding_with_missing_snapshot_fails_fast() {
    let result = Server::bind(ServerConfig {
        file_datasets: vec![("ghost".to_string(), "/nonexistent/ghost.krb".to_string())],
        ..ServerConfig::default()
    });
    match result {
        Err(err) => assert!(err.to_string().contains("ghost"), "{err}"),
        Ok(_) => panic!("missing file must fail at bind"),
    }
}
