//! End-to-end mutation tests: a real server on an ephemeral port, driven
//! through the shipped [`Client`]'s `add_edges` / `remove_edges` /
//! `set_attributes` — the write half of the wire protocol. The tests pin
//! the serving contract of invalidate-and-repair: a mutation that cannot
//! affect a cached `(k, r)` entry *repairs* it (the follow-up query hits
//! the cache, byte-identical answer, no second preprocessing bill), and
//! a mutation that can affect it *invalidates* (the follow-up query
//! recomputes and matches the direct engine on the mutated graph).

use kr_core::{enumerate_maximal, AlgoConfig};
use kr_server::{
    AttributeValue, CacheOutcome, Client, ClientError, ErrorCode, QuerySpec, Server, ServerConfig,
};
use kr_similarity::AttributeTable;

const DATASET: &str = "gowalla-like";
const SCALE: f64 = 0.2;
const K: u32 = 3;
const R: f64 = 8.0;

fn spawn_server() -> kr_server::ServerHandle {
    Server::bind(ServerConfig::default())
        .expect("bind ephemeral port")
        .spawn()
}

fn spec() -> QuerySpec {
    QuerySpec {
        scale: SCALE,
        ..QuerySpec::new(DATASET, K, R)
    }
}

fn point_rows(attrs: &AttributeTable) -> &[(f64, f64)] {
    match attrs {
        AttributeTable::Points(rows) => rows,
        other => panic!("gowalla-like must carry points, got {other:?}"),
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// A non-adjacent vertex pair whose Euclidean distance exceeds `min_d`
/// (its edge is dropped by the dissimilar-edge filter at any `r <=
/// min_d`, so inserting it cannot change a query at this `r`).
fn dissimilar_non_edge(view: &kr_server::DatasetView, min_d: f64) -> (u32, u32) {
    let rows = point_rows(&view.attributes);
    for u in 0..view.graph.num_vertices() as u32 {
        for v in (u + 1)..view.graph.num_vertices() as u32 {
            if !view.graph.has_edge(u, v) && dist(rows[u as usize], rows[v as usize]) > min_d {
                return (u, v);
            }
        }
    }
    panic!("no dissimilar non-edge found");
}

#[test]
fn irrelevant_mutation_repairs_the_cache_and_requery_hits_identically() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let first = client.enumerate(spec()).expect("cold query");
    assert_eq!(first.cache, CacheOutcome::Miss);
    assert!(!first.cores.is_empty(), "test instance must be non-trivial");

    // An edge far beyond the queried r: preprocessing at r = 8 filters
    // it out, so the cached component set is provably unaffected.
    let dataset = handle
        .state()
        .datasets
        .get(DATASET, SCALE)
        .expect("dataset resident");
    let (u, v) = dissimilar_non_edge(&dataset.view(), 10.0 * R);
    let res = client
        .add_edges(DATASET, SCALE, vec![(u, v)])
        .expect("mutate");
    assert_eq!((res.applied, res.ignored), (1, 0));
    assert_eq!(res.version, 1);
    assert!(
        res.repairs >= 1,
        "the resident entry must be repaired, not dropped: {res:?}"
    );
    assert_eq!(res.invalidations, 0, "{res:?}");

    // Repaired entry serves the re-query: cache hit, identical cores, no
    // second preprocessing bill.
    let second = client.enumerate(spec()).expect("warm query");
    assert_eq!(
        second.cache,
        CacheOutcome::Hit,
        "repair must keep the entry"
    );
    assert_eq!(second.cores, first.cores);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.misses, 1, "no recompute after a repair");
    assert!(stats.repairs >= 1);
    assert_eq!(stats.invalidations, 0);

    // Write traffic stays out of the query accounting: two queries, one
    // mutation batch, one applied update.
    let snap = client.metrics().expect("metrics");
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter("server.queries"), 2);
    assert_eq!(counter("server.mutations"), 1);
    assert_eq!(counter("server.updates_applied"), 1);
    let latency = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "server.query_latency_us")
        .map(|(_, h)| h.count)
        .unwrap_or(0);
    assert_eq!(latency, 2, "mutations must not record query latency");

    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn relevant_mutation_invalidates_and_requery_matches_the_direct_engine() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let first = client.enumerate(spec()).expect("cold query");
    assert_eq!(first.cache, CacheOutcome::Miss);
    assert!(!first.cores.is_empty(), "test instance must be non-trivial");

    // Remove a graph edge inside a returned core: it survived the
    // similarity filter and the peel, so dropping it can genuinely
    // change the answer — the entry must be invalidated.
    let dataset = handle
        .state()
        .datasets
        .get(DATASET, SCALE)
        .expect("dataset resident");
    let view = dataset.view();
    let core = &first.cores[0];
    let (u, v) = core
        .iter()
        .flat_map(|&u| core.iter().map(move |&v| (u, v)))
        .find(|&(u, v)| u < v && view.graph.has_edge(u, v))
        .expect("a (k,r)-core with k >= 1 contains at least one edge");
    let res = client
        .remove_edges(DATASET, SCALE, vec![(u, v)])
        .expect("mutate");
    assert_eq!((res.applied, res.ignored), (1, 0));
    assert!(
        res.invalidations >= 1,
        "an in-core edge removal must invalidate: {res:?}"
    );

    // The re-query recomputes and matches a direct engine run on the
    // mutated dataset.
    let second = client.enumerate(spec()).expect("recompute query");
    assert_eq!(second.cache, CacheOutcome::Miss, "entry must be gone");
    let expect = enumerate_maximal(&dataset.problem(K, R), &AlgoConfig::adv_enum());
    let mut got = second.cores.clone();
    got.sort();
    let expected: Vec<Vec<u32>> = expect.cores.iter().map(|c| c.vertices.clone()).collect();
    assert_eq!(got, expected, "post-mutation answer must be exact");

    // Idempotent replay: removing the same edge again is a no-op — no
    // version bump, nothing to repair or invalidate.
    let res = client
        .remove_edges(DATASET, SCALE, vec![(u, v)])
        .expect("no-op mutate");
    assert_eq!((res.applied, res.ignored), (0, 1));
    assert_eq!((res.repairs, res.invalidations), (0, 0));
    let third = client.enumerate(spec()).expect("still cached");
    assert_eq!(third.cache, CacheOutcome::Hit);
    assert_eq!(third.cores, second.cores);

    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn attribute_update_conservatively_invalidates_and_stays_exact() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let first = client.enumerate(spec()).expect("cold query");
    assert_eq!(first.cache, CacheOutcome::Miss);
    let w = first.cores[0][0];

    // Moving a core member's point far away breaks its similarities; the
    // cached entry cannot be proven intact and must be dropped.
    let res = client
        .set_attributes(DATASET, SCALE, vec![(w, AttributeValue::Point(1e6, 1e6))])
        .expect("mutate");
    assert_eq!(res.applied, 1);
    assert!(res.invalidations >= 1, "{res:?}");

    let dataset = handle
        .state()
        .datasets
        .get(DATASET, SCALE)
        .expect("dataset resident");
    let second = client.enumerate(spec()).expect("recompute query");
    assert_eq!(second.cache, CacheOutcome::Miss);
    let expect = enumerate_maximal(&dataset.problem(K, R), &AlgoConfig::adv_enum());
    let mut got = second.cores.clone();
    got.sort();
    let expected: Vec<Vec<u32>> = expect.cores.iter().map(|c| c.vertices.clone()).collect();
    assert_eq!(got, expected);
    assert!(
        !second.cores.iter().any(|c| c.contains(&w)),
        "a vertex exiled to (1e6, 1e6) cannot sit in any r = {R} core"
    );

    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn invalid_batches_are_rejected_atomically_over_the_wire() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Resolve the dataset (and its true vertex count) up front.
    let probe = client.enumerate(spec()).expect("probe query");
    let dataset = handle
        .state()
        .datasets
        .get(DATASET, SCALE)
        .expect("dataset resident");
    let n = dataset.view().graph.num_vertices() as u32;

    // One good update and one bad one: the whole batch must be rejected
    // with nothing applied and no version bump.
    let err = client
        .add_edges(DATASET, SCALE, vec![(0, 1), (0, n + 7)])
        .expect_err("out-of-range vertex must reject the batch");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("out of range"), "{message}");
        }
        other => panic!("wrong error {other:?}"),
    }
    assert_eq!(dataset.version(), 0, "rejected batch must not change state");

    // Wrong attribute family is equally fatal.
    let err = client
        .set_attributes(
            DATASET,
            SCALE,
            vec![(0, AttributeValue::Keywords(vec![(1, 1.0)]))],
        )
        .expect_err("family mismatch must reject");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("family mismatch"), "{message}");
        }
        other => panic!("wrong error {other:?}"),
    }

    // Unknown dataset keeps its own error class.
    let err = client
        .add_edges("no-such-dataset", 1.0, vec![(0, 1)])
        .expect_err("unknown dataset");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownDataset),
        other => panic!("wrong error {other:?}"),
    }

    // The connection survives every rejection; the cache entry from the
    // probe query is untouched.
    let again = client.enumerate(spec()).expect("connection still usable");
    assert_eq!(again.cache, CacheOutcome::Hit);
    assert_eq!(again.cores, probe.cores);

    handle.shutdown_and_join().expect("clean shutdown");
}
