//! Property tests: every encodable protocol message round-trips through
//! its wire line, including ids with quotes, backslashes, newlines, and
//! non-ASCII characters (the codec must keep one message = one line).

use kr_server::protocol::{Algo, CacheOutcome, ErrorCode, Frame, QuerySpec, Request};
use kr_server::{AttributeValue, CacheStats, HistogramSnapshot, MetricsSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// Wire numbers ride in a `f64` JSON field, so values must stay exactly
/// representable (< 2^53) for the roundtrip to be lossless.
const MAX_WIRE_NUM: u64 = 1 << 53;

/// Strings that stress the escaper: printable ASCII plus the characters
/// that must be escaped on the wire.
fn wire_string() -> impl Strategy<Value = String> {
    vec(
        prop_oneof![
            (32u8..127).prop_map(|b| b as char),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\r'),
            Just('\t'),
            Just('\u{01}'),
            Just('é'),
            Just('😀'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn algo() -> impl Strategy<Value = Algo> {
    prop_oneof![Just(Algo::Adv), Just(Algo::Basic)]
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..1_000_000_000).prop_map(Some),]
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        (
            wire_string(),
            0.001f64..10.0,
            1u32..1_000_000,
            0.0f64..1.0e6,
        ),
        (algo(), 0usize..64, opt_u64(), opt_u64()),
    )
        .prop_map(
            |((dataset, scale, k, r), (algo, threads, time_limit_ms, node_limit))| QuerySpec {
                dataset,
                scale,
                k,
                r,
                algo,
                threads,
                time_limit_ms,
                node_limit,
            },
        )
}

fn edge_list() -> impl Strategy<Value = Vec<(u32, u32)>> {
    vec((0u32..5_000_000, 0u32..5_000_000), 1..8)
}

fn attribute_value() -> impl Strategy<Value = AttributeValue> {
    prop_oneof![
        (-1.0e6f64..1.0e6, -1.0e6f64..1.0e6).prop_map(|(x, y)| AttributeValue::Point(x, y)),
        vec((0u32..1_000_000, 0.0f64..1.0e6), 0..6).prop_map(AttributeValue::Keywords),
        vec(-1.0e6f64..1.0e6, 0..6).prop_map(AttributeValue::Vector),
    ]
}

fn mutation_target() -> impl Strategy<Value = (String, String, f64)> {
    (wire_string(), wire_string(), 0.001f64..10.0)
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (wire_string(), query_spec()).prop_map(|(id, spec)| Request::Enumerate { id, spec }),
        (wire_string(), query_spec()).prop_map(|(id, spec)| Request::Maximum { id, spec }),
        wire_string().prop_map(|id| Request::Stats { id }),
        wire_string().prop_map(|id| Request::Metrics { id }),
        wire_string().prop_map(|id| Request::Ping { id }),
        wire_string().prop_map(|id| Request::Shutdown { id }),
        (mutation_target(), edge_list()).prop_map(|((id, dataset, scale), edges)| {
            Request::AddEdges {
                id,
                dataset,
                scale,
                edges,
            }
        }),
        (mutation_target(), edge_list()).prop_map(|((id, dataset, scale), edges)| {
            Request::RemoveEdges {
                id,
                dataset,
                scale,
                edges,
            }
        }),
        (
            mutation_target(),
            vec((0u32..5_000_000, attribute_value()), 1..6)
        )
            .prop_map(|((id, dataset, scale), updates)| {
                Request::SetAttributes {
                    id,
                    dataset,
                    scale,
                    updates,
                }
            }),
    ]
}

/// Trace ids as produced by the server ("" = untraced; the codec omits
/// the field entirely in that case, and weird strings must still escape).
fn trace_id() -> impl Strategy<Value = String> {
    prop_oneof![Just(String::new()), wire_string()]
}

fn histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        0u64..MAX_WIRE_NUM,
        0u64..MAX_WIRE_NUM,
        vec(
            (0u32..kr_server::HIST_BUCKETS as u32, 1u64..MAX_WIRE_NUM),
            0..8,
        ),
    )
        .prop_map(|(count, sum, buckets)| HistogramSnapshot {
            count,
            sum,
            buckets,
        })
}

fn metrics_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        vec((wire_string(), 0u64..MAX_WIRE_NUM), 0..4),
        vec(
            (
                wire_string(),
                (0i64..MAX_WIRE_NUM as i64).prop_map(|v| v - (1i64 << 52)),
            ),
            0..4,
        ),
        vec((wire_string(), histogram_snapshot()), 0..3),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0u64..10, wire_string()).prop_map(|(protocol, server)| Frame::Hello { protocol, server }),
        (
            (wire_string(), trace_id()),
            0u64..10_000,
            vec(0u32..5_000_000, 0..64)
        )
            .prop_map(|((id, trace), index, vertices)| Frame::Core {
                id,
                trace,
                index,
                vertices
            }),
        (
            (wire_string(), trace_id(), 0u64..10_000),
            (0u64..1_000_000, 0u64..1_000_000_000),
        )
            .prop_flat_map(|((id, trace, count), (elapsed_ms, nodes))| {
                (
                    Just(id),
                    Just(trace),
                    Just(count),
                    prop_oneof![Just(true), Just(false)],
                    prop_oneof![Just(CacheOutcome::Hit), Just(CacheOutcome::Miss)],
                    Just(elapsed_ms),
                    Just(nodes),
                )
            })
            .prop_map(
                |(id, trace, count, completed, cache, elapsed_ms, nodes)| Frame::Done {
                    id,
                    trace,
                    count,
                    completed,
                    cache,
                    elapsed_ms,
                    nodes,
                }
            ),
        (
            (wire_string(), trace_id()),
            (0u64..1_000_000, 0u64..1_000_000),
            (0u64..1_000_000, 0usize..1_000),
            0u64..u32::MAX as u64,
            (0u64..1_000_000, 0u64..u32::MAX as u64),
            (0u64..1_000_000, 0u64..u32::MAX as u64),
            (0u64..1_000_000, 0u64..1_000_000),
        )
            .prop_map(
                |(
                    (id, trace),
                    (hits, misses),
                    (evictions, entries),
                    resident_bytes,
                    (preprocess_ms, oracle_evals),
                    (index_hits, residual_vertices),
                    (repairs, invalidations),
                )| Frame::Stats {
                    id,
                    trace,
                    stats: CacheStats {
                        hits,
                        misses,
                        evictions,
                        entries,
                        resident_bytes,
                        preprocess_ms,
                        oracle_evals,
                        index_hits,
                        residual_vertices,
                        repairs,
                        invalidations,
                    },
                },
            ),
        (
            (wire_string(), trace_id()),
            (0u64..1_000_000, 0u64..1_000_000),
            (0u64..1_000_000, 0u64..1_000_000),
            (0u64..1_000_000, 0u64..1_000_000),
            0u64..1_000_000,
        )
            .prop_map(
                |(
                    (id, trace),
                    (applied, ignored),
                    (version, core_updates),
                    (repairs, invalidations),
                    elapsed_ms,
                )| Frame::Mutated {
                    id,
                    trace,
                    applied,
                    ignored,
                    version,
                    core_updates,
                    repairs,
                    invalidations,
                    elapsed_ms,
                },
            ),
        (wire_string(), trace_id(), metrics_snapshot()).prop_map(|(id, trace, snapshot)| {
            Frame::Metrics {
                id,
                trace,
                snapshot,
            }
        }),
        (wire_string(), trace_id()).prop_map(|(id, trace)| Frame::Pong { id, trace }),
        (wire_string(), trace_id()).prop_map(|(id, trace)| Frame::ShuttingDown { id, trace }),
        (
            (wire_string(), trace_id()),
            prop_oneof![
                Just(ErrorCode::BadRequest),
                Just(ErrorCode::UnsupportedVersion),
                Just(ErrorCode::UnknownDataset),
                Just(ErrorCode::Internal),
            ],
            wire_string(),
        )
            .prop_map(|((id, trace), code, message)| Frame::Error {
                id,
                trace,
                code,
                message
            }),
    ]
}

proptest! {
    #[test]
    fn request_encode_decode_roundtrips(req in request()) {
        let line = req.to_line();
        prop_assert!(!line.contains('\n'), "one message = one line: {line:?}");
        let parsed = Request::parse(&line);
        prop_assert_eq!(parsed.ok(), Some(req), "line: {}", line);
    }

    #[test]
    fn frame_encode_decode_roundtrips(f in frame()) {
        let line = f.to_line();
        prop_assert!(!line.contains('\n'), "one message = one line: {line:?}");
        let parsed = Frame::parse(&line);
        prop_assert_eq!(parsed.ok(), Some(f), "line: {}", line);
    }
}
