//! Property tests: every encodable protocol message round-trips through
//! its wire line, including ids with quotes, backslashes, newlines, and
//! non-ASCII characters (the codec must keep one message = one line).

use kr_server::protocol::{Algo, CacheOutcome, ErrorCode, Frame, QuerySpec, Request};
use kr_server::CacheStats;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strings that stress the escaper: printable ASCII plus the characters
/// that must be escaped on the wire.
fn wire_string() -> impl Strategy<Value = String> {
    vec(
        prop_oneof![
            (32u8..127).prop_map(|b| b as char),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\r'),
            Just('\t'),
            Just('\u{01}'),
            Just('é'),
            Just('😀'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn algo() -> impl Strategy<Value = Algo> {
    prop_oneof![Just(Algo::Adv), Just(Algo::Basic)]
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..1_000_000_000).prop_map(Some),]
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        (
            wire_string(),
            0.001f64..10.0,
            1u32..1_000_000,
            0.0f64..1.0e6,
        ),
        (algo(), 0usize..64, opt_u64(), opt_u64()),
    )
        .prop_map(
            |((dataset, scale, k, r), (algo, threads, time_limit_ms, node_limit))| QuerySpec {
                dataset,
                scale,
                k,
                r,
                algo,
                threads,
                time_limit_ms,
                node_limit,
            },
        )
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (wire_string(), query_spec()).prop_map(|(id, spec)| Request::Enumerate { id, spec }),
        (wire_string(), query_spec()).prop_map(|(id, spec)| Request::Maximum { id, spec }),
        wire_string().prop_map(|id| Request::Stats { id }),
        wire_string().prop_map(|id| Request::Ping { id }),
        wire_string().prop_map(|id| Request::Shutdown { id }),
    ]
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0u64..10, wire_string()).prop_map(|(protocol, server)| Frame::Hello { protocol, server }),
        (wire_string(), 0u64..10_000, vec(0u32..5_000_000, 0..64)).prop_map(
            |(id, index, vertices)| Frame::Core {
                id,
                index,
                vertices
            }
        ),
        (
            (wire_string(), 0u64..10_000),
            (0u64..1_000_000, 0u64..1_000_000_000),
        )
            .prop_flat_map(|((id, count), (elapsed_ms, nodes))| {
                (
                    Just(id),
                    Just(count),
                    prop_oneof![Just(true), Just(false)],
                    prop_oneof![Just(CacheOutcome::Hit), Just(CacheOutcome::Miss)],
                    Just(elapsed_ms),
                    Just(nodes),
                )
            })
            .prop_map(
                |(id, count, completed, cache, elapsed_ms, nodes)| Frame::Done {
                    id,
                    count,
                    completed,
                    cache,
                    elapsed_ms,
                    nodes,
                }
            ),
        (
            wire_string(),
            (0u64..1_000_000, 0u64..1_000_000),
            (0u64..1_000_000, 0usize..1_000),
            0u64..u32::MAX as u64,
            (0u64..1_000_000, 0u64..u32::MAX as u64),
            (0u64..1_000_000, 0u64..u32::MAX as u64),
        )
            .prop_map(
                |(
                    id,
                    (hits, misses),
                    (evictions, entries),
                    resident_bytes,
                    (preprocess_ms, oracle_evals),
                    (index_hits, residual_vertices),
                )| Frame::Stats {
                    id,
                    stats: CacheStats {
                        hits,
                        misses,
                        evictions,
                        entries,
                        resident_bytes,
                        preprocess_ms,
                        oracle_evals,
                        index_hits,
                        residual_vertices,
                    },
                },
            ),
        wire_string().prop_map(|id| Frame::Pong { id }),
        wire_string().prop_map(|id| Frame::ShuttingDown { id }),
        (
            wire_string(),
            prop_oneof![
                Just(ErrorCode::BadRequest),
                Just(ErrorCode::UnsupportedVersion),
                Just(ErrorCode::UnknownDataset),
                Just(ErrorCode::Internal),
            ],
            wire_string(),
        )
            .prop_map(|(id, code, message)| Frame::Error { id, code, message }),
    ]
}

proptest! {
    #[test]
    fn request_encode_decode_roundtrips(req in request()) {
        let line = req.to_line();
        prop_assert!(!line.contains('\n'), "one message = one line: {line:?}");
        let parsed = Request::parse(&line);
        prop_assert_eq!(parsed.ok(), Some(req), "line: {}", line);
    }

    #[test]
    fn frame_encode_decode_roundtrips(f in frame()) {
        let line = f.to_line();
        prop_assert!(!line.contains('\n'), "one message = one line: {line:?}");
        let parsed = Frame::parse(&line);
        prop_assert_eq!(parsed.ok(), Some(f), "line: {}", line);
    }
}
