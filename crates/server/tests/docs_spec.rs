//! Keeps the docs layer honest against the code:
//!
//! * `docs/PROTOCOL.md` must have a `### Request `cmd`` section for
//!   every request command and a `### Frame `kind`` section for every
//!   frame kind the protocol defines (and list no stale extras);
//! * every `{"v":1,...}` example line in PROTOCOL.md must parse through
//!   the real codec — worked examples that drift from the
//!   implementation fail here;
//! * `docs/OPERATIONS.md` must document every `serve` flag the CLI
//!   accepts (scraped from the `cmd_serve` match in `krcore-cli.rs`).

use kr_server::{Frame, Request, FRAME_KINDS, REQUEST_CMDS};
use std::path::PathBuf;

fn repo_file(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn protocol_doc_covers_every_request_cmd_and_frame_kind() {
    let doc = repo_file("docs/PROTOCOL.md");
    for cmd in REQUEST_CMDS {
        let heading = format!("### Request `{cmd}`");
        assert!(
            doc.contains(&heading),
            "docs/PROTOCOL.md is missing a section for request `{cmd}` \
             (expected heading {heading:?})"
        );
    }
    for kind in FRAME_KINDS {
        let heading = format!("### Frame `{kind}`");
        assert!(
            doc.contains(&heading),
            "docs/PROTOCOL.md is missing a section for frame `{kind}` \
             (expected heading {heading:?})"
        );
    }
    // And no stale sections for messages the code no longer defines.
    for line in doc.lines() {
        if let Some(name) = line
            .strip_prefix("### Request `")
            .and_then(|r| r.strip_suffix('`'))
        {
            assert!(
                REQUEST_CMDS.contains(&name),
                "docs/PROTOCOL.md documents unknown request `{name}`"
            );
        }
        if let Some(name) = line
            .strip_prefix("### Frame `")
            .and_then(|r| r.strip_suffix('`'))
        {
            assert!(
                FRAME_KINDS.contains(&name),
                "docs/PROTOCOL.md documents unknown frame `{name}`"
            );
        }
    }
}

#[test]
fn protocol_doc_examples_parse_through_the_real_codec() {
    let doc = repo_file("docs/PROTOCOL.md");
    let mut requests = 0;
    let mut frames = 0;
    for raw in doc.lines() {
        let line = raw.trim();
        // Worked-exchange lines carry a direction prefix.
        let line = line
            .strip_prefix("C: ")
            .or_else(|| line.strip_prefix("S: "))
            .unwrap_or(line);
        if !line.starts_with("{\"v\":1,") {
            continue;
        }
        if line.contains("\"cmd\":") {
            Request::parse(line).unwrap_or_else(|e| {
                panic!("PROTOCOL.md request example does not parse: {e}\n  {line}")
            });
            requests += 1;
        } else if line.contains("\"frame\":") {
            Frame::parse(line).unwrap_or_else(|e| {
                panic!("PROTOCOL.md frame example does not parse: {e}\n  {line}")
            });
            frames += 1;
        } else {
            panic!("PROTOCOL.md example is neither request nor frame: {line}");
        }
    }
    // At least one worked example per message kind exists (the section
    // coverage test guarantees the sections; this guards the examples).
    assert!(
        requests >= REQUEST_CMDS.len(),
        "expected at least one parseable example per request cmd, found {requests}"
    );
    assert!(
        frames >= FRAME_KINDS.len(),
        "expected at least one parseable example per frame kind, found {frames}"
    );
}

#[test]
fn operations_doc_covers_every_serve_flag() {
    let cli = repo_file("src/bin/krcore-cli.rs");
    let serve = cli
        .split("fn cmd_serve()")
        .nth(1)
        .expect("krcore-cli.rs has cmd_serve")
        .split("\nfn ")
        .next()
        .unwrap();
    // Scrape the `"--flag" =>` match arms; the doc must mention each.
    // Only exact flag tokens count — error-message literals that happen
    // to start with `--` do not.
    let mut flags = Vec::new();
    for part in serve.split('"').skip(1).step_by(2) {
        let is_flag = part.starts_with("--")
            && part[2..]
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-');
        if is_flag && !flags.contains(&part.to_string()) {
            flags.push(part.to_string());
        }
    }
    assert!(
        flags.len() >= 10,
        "flag scrape looks broken, found only {flags:?}"
    );
    let doc = repo_file("docs/OPERATIONS.md");
    for flag in &flags {
        assert!(
            doc.contains(flag.as_str()),
            "docs/OPERATIONS.md does not document serve flag {flag}"
        );
    }
}
