//! End-to-end observability tests: a real server with a trace log and a
//! zero slow-query threshold, driven through the shipped client. Pins
//! the PR's acceptance invariants:
//!
//! * the `metrics` request returns the latency histogram with bucket
//!   counts summing to the number of queries served, and p99 ≥ p50;
//! * every response frame of a query carries the same server-assigned
//!   trace id, and that id joins against the span events in the log;
//! * a sub-threshold `slow_query_ms` forces parseable slow-query lines.

use kr_server::json::Json;
use kr_server::{
    CacheOutcome, Client, Frame, HistogramSnapshot, MetricsSnapshot, QuerySpec, Request, Server,
    ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};

const SCALE: f64 = 0.2;

fn spec(k: u32) -> QuerySpec {
    QuerySpec {
        scale: SCALE,
        ..QuerySpec::new("gowalla-like", k, 8.0)
    }
}

/// A unique trace-log path per test (tests share one process and temp dir).
fn log_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "kr_obs_e2e_{}_{}_{}.jsonl",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn spawn_traced(log: &std::path::Path) -> kr_server::ServerHandle {
    Server::bind(ServerConfig {
        trace_log: Some(log.display().to_string()),
        slow_query_ms: 0, // every query is "slow": forces emission
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
        .1
}

fn histogram<'a>(snap: &'a MetricsSnapshot, name: &str) -> &'a HistogramSnapshot {
    &snap
        .histograms
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("histogram {name} missing from snapshot"))
        .1
}

/// Parses the trace log into `(trace, span)` pairs, asserting every line
/// is well-formed JSON with the mandatory fields.
fn read_spans(log: &std::path::Path) -> Vec<(String, String)> {
    let text = std::fs::read_to_string(log).expect("trace log readable");
    text.lines()
        .map(|line| {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("bad log line {line:?}: {e}"));
            assert!(
                v.get("ts_us").and_then(Json::as_u64).is_some(),
                "log line must carry ts_us: {line}"
            );
            let span = v
                .get("span")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("log line must carry span: {line}"))
                .to_string();
            let trace = v
                .get("trace")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            (trace, span)
        })
        .collect()
}

#[test]
fn metrics_snapshot_matches_queries_issued_and_log_joins_on_trace() {
    let log = log_path("metrics");
    let handle = spawn_traced(&log);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Five answered queries: cold miss, warm hit, a different k (miss),
    // and a maximum; plus one rejected query that must NOT reach the
    // latency histogram.
    let mut traces = Vec::new();
    let first = client.enumerate(spec(3)).expect("cold");
    assert_eq!(first.cache, CacheOutcome::Miss);
    traces.push(first.trace.clone());
    let warm = client.enumerate(spec(3)).expect("warm");
    assert_eq!(warm.cache, CacheOutcome::Hit);
    traces.push(warm.trace.clone());
    traces.push(client.enumerate(spec(4)).expect("k=4").trace);
    traces.push(client.maximum(spec(3)).expect("maximum").trace);
    traces.push(client.enumerate(spec(3)).expect("again").trace);
    let err = client
        .enumerate(QuerySpec {
            scale: SCALE,
            ..QuerySpec::new("middle-earth", 3, 8.0)
        })
        .expect_err("unknown dataset");
    assert!(matches!(err, kr_server::ClientError::Server { .. }));

    for t in &traces {
        assert_eq!(t.len(), 16, "trace ids are 16 hex digits: {t:?}");
        assert!(t.chars().all(|c| c.is_ascii_hexdigit()), "{t:?}");
    }
    let mut unique = traces.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), traces.len(), "one fresh trace id per query");

    let snap = client.metrics().expect("metrics");

    // Acceptance invariant: bucket counts sum to the queries issued.
    let lat = histogram(&snap, "server.query_latency_us");
    assert_eq!(lat.count, 5, "five queries were answered");
    let bucket_total: u64 = lat.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, 5, "bucket counts must sum to queries issued");
    let (p50, p99) = (lat.quantile(0.5), lat.quantile(0.99));
    assert!(p99 >= p50, "p99 {p99:?} must be >= p50 {p50:?}");

    // Preprocessing ran once per cache miss (k=3 cold, k=4 cold).
    assert_eq!(histogram(&snap, "server.preprocess_us").count, 2);

    assert_eq!(counter(&snap, "server.queries"), 6, "rejects count too");
    assert_eq!(counter(&snap, "server.query_errors"), 1);
    assert_eq!(counter(&snap, "server.slow_queries"), 5, "threshold 0");
    assert!(counter(&snap, "server.cores_streamed") > 0);
    assert!(counter(&snap, "server.connections") >= 1);

    // Library-layer metrics merge into the same snapshot (process-global:
    // at least this server's two preprocessing runs contributed).
    assert!(counter(&snap, "similarity.oracle_evals") > 0);

    handle.shutdown_and_join().expect("clean shutdown");

    let spans = read_spans(&log);
    assert!(spans.iter().any(|(_, s)| s == "accept"));
    for t in &traces {
        for want in ["request", "search", "stream", "query", "slow_query"] {
            assert!(
                spans.iter().any(|(tr, s)| tr == t && s == want),
                "trace {t} missing span {want}"
            );
        }
    }
    // Cache misses (and only they) resolve candidates and preprocess:
    // the cold k=3 and k=4 queries.
    let preprocessed: Vec<_> = spans
        .iter()
        .filter(|(_, s)| s == "preprocess")
        .map(|(t, _)| t.clone())
        .collect();
    assert_eq!(preprocessed.len(), 2);
    assert!(preprocessed.contains(&traces[0]));
    assert!(
        !preprocessed.contains(&traces[1]),
        "warm hit: no preprocess"
    );

    let _ = std::fs::remove_file(log);
}

#[test]
fn every_frame_of_a_query_carries_its_trace_and_joins_the_log() {
    let log = log_path("frames");
    let handle = spawn_traced(&log);

    // Raw socket: inspect each frame's trace, not just the client digest.
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello");

    let req = Request::Enumerate {
        id: "q-trace".to_string(),
        spec: spec(3),
    };
    stream
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send");
    let mut frame_traces = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("frame");
        match Frame::parse(line.trim()).expect("parse") {
            Frame::Core { trace, .. } => frame_traces.push(trace),
            Frame::Done { trace, .. } => {
                frame_traces.push(trace);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(frame_traces.len() > 1, "test instance must stream cores");
    let trace = frame_traces[0].clone();
    assert_eq!(trace.len(), 16);
    assert!(
        frame_traces.iter().all(|t| *t == trace),
        "every frame of the query must carry the same trace id: {frame_traces:?}"
    );

    // A malformed line gets an error frame whose trace also joins the log.
    stream.write_all(b"this is not json\n").expect("send");
    line.clear();
    reader.read_line(&mut line).expect("error frame");
    let err_trace = match Frame::parse(line.trim()).expect("parse") {
        Frame::Error { trace, .. } => trace,
        other => panic!("unexpected frame {other:?}"),
    };
    assert_eq!(err_trace.len(), 16);

    let mut client = Client::connect(handle.addr()).expect("connect");
    let snap = client.metrics().expect("metrics");
    assert_eq!(counter(&snap, "server.requests_malformed"), 1);

    handle.shutdown_and_join().expect("clean shutdown");

    let spans = read_spans(&log);
    for want in ["request", "cache_lookup", "preprocess", "search", "query"] {
        assert!(
            spans.iter().any(|(t, s)| t == &trace && s == want),
            "trace {trace} missing span {want}"
        );
    }
    assert!(
        spans
            .iter()
            .any(|(t, s)| t == &err_trace && s == "request_error"),
        "malformed request must log a request_error event"
    );

    let _ = std::fs::remove_file(log);
}
