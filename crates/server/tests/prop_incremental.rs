//! Property harness for incremental maintenance: on random update
//! streams (edge inserts, edge removals, attribute rewrites — batched),
//! the incrementally-maintained state must stay *indistinguishable* from
//! a from-scratch rebuild after every batch, in both threshold
//! directions (Euclidean max-distance and weighted-Jaccard
//! min-similarity):
//!
//! * the classic coreness array maintained by
//!   [`kr_graph::coreness_after_insert`] / [`coreness_after_remove`]
//!   equals a fresh [`core_decomposition`];
//! * the maintained [`DecompositionIndex`] equals
//!   [`DecompositionIndex::build`] on the mutated graph (same bands) —
//!   full structural equality, which covers every band's coreness array;
//! * enumerate and maximum answered through the maintained index's
//!   candidate sets are vertex-set-identical to the plain from-scratch
//!   engine run.

use kr_core::{
    enumerate_maximal, enumerate_maximal_prepared, find_maximum, find_maximum_prepared, AlgoConfig,
    DecompositionIndex, ProblemInstance,
};
use kr_graph::{
    core_decomposition, coreness_after_insert, coreness_after_remove, AdjacencyList, Graph,
    VertexId,
};
use kr_server::{AttributeValue, GraphUpdate, HostedDataset};
use kr_similarity::{AttributeTable, Metric, TableOracle, Threshold};
use proptest::collection::vec;
use proptest::prelude::*;

const N: usize = 18;

/// One raw update, vertex choices still unreduced (the strategy draws
/// wide and the applier folds into range so shrinking stays effective).
#[derive(Debug, Clone)]
enum RawUpdate {
    Add(u32, u32),
    Remove(u32, u32),
    /// Attribute rewrite: vertex plus two freely-interpretable scalars
    /// (a point for distance instances, keyword weights for similarity
    /// ones).
    Attr(u32, f64, f64),
}

fn raw_update() -> impl Strategy<Value = RawUpdate> {
    prop_oneof![
        (0u32..1000, 0u32..1000).prop_map(|(u, v)| RawUpdate::Add(u, v)),
        (0u32..1000, 0u32..1000).prop_map(|(u, v)| RawUpdate::Remove(u, v)),
        (0u32..1000, 0.0f64..10.0, 0.0f64..10.0).prop_map(|(w, a, b)| RawUpdate::Attr(w, a, b)),
    ]
}

/// A stream of update batches.
fn batches() -> impl Strategy<Value = Vec<Vec<RawUpdate>>> {
    vec(vec(raw_update(), 1..5), 1..5)
}

fn fold(v: u32) -> VertexId {
    v % N as u32
}

/// Maps a raw update into a valid, family-matched [`GraphUpdate`]
/// (self-loops fold to a fixed distinct pair).
fn materialize(raw: &RawUpdate, distance: bool) -> GraphUpdate {
    let edge = |u: u32, v: u32| -> (VertexId, VertexId) {
        let (u, v) = (fold(u), fold(v));
        if u == v {
            (u, (u + 1) % N as u32)
        } else {
            (u, v)
        }
    };
    match *raw {
        RawUpdate::Add(u, v) => {
            let (u, v) = edge(u, v);
            GraphUpdate::AddEdge(u, v)
        }
        RawUpdate::Remove(u, v) => {
            let (u, v) = edge(u, v);
            GraphUpdate::RemoveEdge(u, v)
        }
        RawUpdate::Attr(w, a, b) => {
            let value = if distance {
                AttributeValue::Point(a, b)
            } else {
                AttributeValue::Keywords(vec![(a as u32 % 8, 1.0), (b as u32 % 8, 0.5)])
            };
            GraphUpdate::SetAttribute(fold(w), value)
        }
    }
}

/// Deterministic seed instance: a ring plus chords gives coreness
/// structure worth maintaining; attributes spread over a small space so
/// mid-range thresholds split pairs both ways.
fn seed_instance(distance: bool) -> (Graph, AttributeTable, Metric) {
    let mut edges: Vec<(VertexId, VertexId)> =
        (0..N as u32).map(|u| (u, (u + 1) % N as u32)).collect();
    for u in 0..N as u32 {
        edges.push((u, (u + 3) % N as u32));
        if u % 2 == 0 {
            edges.push((u, (u + 7) % N as u32));
        }
    }
    let graph = Graph::from_edges(N, &edges);
    if distance {
        let pts = (0..N)
            .map(|i| (((i * 7) % 10) as f64 * 0.9, ((i * 3) % 10) as f64 * 0.9))
            .collect();
        (graph, AttributeTable::points(pts), Metric::Euclidean)
    } else {
        let lists = (0..N)
            .map(|i| vec![((i % 8) as u32, 1.0), (((i / 2) % 8) as u32, 1.0)])
            .collect();
        (
            graph,
            AttributeTable::keywords(lists),
            Metric::WeightedJaccard,
        )
    }
}

fn neutral(distance: bool) -> Threshold {
    if distance {
        Threshold::MaxDistance(f64::MAX)
    } else {
        Threshold::MinSimilarity(0.0)
    }
}

fn query_threshold(distance: bool, r: f64) -> Threshold {
    if distance {
        Threshold::MaxDistance(r)
    } else {
        Threshold::MinSimilarity(r)
    }
}

fn sorted_cores(cores: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
    let mut cores: Vec<Vec<VertexId>> = cores
        .into_iter()
        .map(|mut c| {
            c.sort_unstable();
            c
        })
        .collect();
    cores.sort();
    cores
}

/// The whole equivalence check for one family; `rs` are the query
/// thresholds exercised after every batch.
fn check_stream(distance: bool, raw_batches: &[Vec<RawUpdate>], rs: &[f64]) {
    let (graph, attrs, metric) = seed_instance(distance);
    let ds = HostedDataset::new("prop@1".into(), graph.clone(), attrs, metric);
    // Build the index up front so every batch maintains rather than
    // rebuilds it.
    let _ = ds.decomposition();

    // The classic-coreness shadow: maintained array + mutable adjacency.
    let mut adj = AdjacencyList::from_graph(&graph);
    let mut core = core_decomposition(&graph).core;

    for raw_batch in raw_batches {
        let updates: Vec<GraphUpdate> =
            raw_batch.iter().map(|r| materialize(r, distance)).collect();

        // Shadow the structural edge updates through the maintenance
        // primitives (attribute updates cannot move structural coreness).
        for up in &updates {
            match *up {
                GraphUpdate::AddEdge(u, v) => {
                    if adj.insert_edge(u, v) {
                        coreness_after_insert(&mut core, &adj, u, v);
                    }
                }
                GraphUpdate::RemoveEdge(u, v) => {
                    if adj.remove_edge(u, v) {
                        coreness_after_remove(&mut core, &adj, u, v);
                    }
                }
                GraphUpdate::SetAttribute(..) => {}
            }
        }

        ds.apply_batch(&updates).expect("valid batch");
        let view = ds.view();

        // 1. Maintained coreness array == from-scratch decomposition.
        let fresh = core_decomposition(&view.graph);
        assert_eq!(core, fresh.core, "maintained coreness diverged");

        // 2. Maintained index == from-scratch build on the same bands.
        let maintained = ds.decomposition();
        let oracle = TableOracle::from_shared(view.attributes.clone(), metric, neutral(distance));
        let rebuilt = DecompositionIndex::build(&view.graph, &oracle, maintained.bands());
        assert_eq!(*maintained, rebuilt, "maintained index diverged");

        // 3. Queries through the maintained index's candidates match the
        //    plain from-scratch engine, for enumerate and maximum.
        for &r in rs {
            for k in [2u32, 3] {
                let threshold = query_threshold(distance, r);
                let problem = ProblemInstance::from_oracle(
                    (*view.graph).clone(),
                    oracle.with_threshold(threshold),
                    k,
                );
                let cand = maintained.candidates(k, threshold);
                let comps = problem.preprocess_with_candidates(&cand.vertices);

                let inc = enumerate_maximal_prepared(&comps, &AlgoConfig::adv_enum());
                let scratch = enumerate_maximal(&problem, &AlgoConfig::adv_enum());
                assert_eq!(
                    sorted_cores(inc.cores.into_iter().map(|c| c.vertices).collect()),
                    sorted_cores(scratch.cores.into_iter().map(|c| c.vertices).collect()),
                    "enumerate diverged at k={k} r={r}"
                );

                let inc = find_maximum_prepared(&comps, &AlgoConfig::adv_max());
                let scratch = find_maximum(&problem, &AlgoConfig::adv_max());
                assert_eq!(
                    inc.core.map(|c| {
                        let mut v = c.vertices;
                        v.sort_unstable();
                        v
                    }),
                    scratch.core.map(|c| {
                        let mut v = c.vertices;
                        v.sort_unstable();
                        v
                    }),
                    "maximum diverged at k={k} r={r}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Distance direction: Euclidean points under `MaxDistance`.
    #[test]
    fn incremental_equals_scratch_max_distance(stream in batches()) {
        check_stream(true, &stream, &[2.5, 6.0]);
    }

    /// Similarity direction: weighted Jaccard under `MinSimilarity`.
    #[test]
    fn incremental_equals_scratch_min_similarity(stream in batches()) {
        check_stream(false, &stream, &[0.15, 0.4]);
    }
}
