//! End-to-end hardening tests: the connection cap, mid-stream client
//! aborts, per-dataset admission control, and sharded cache accounting,
//! all driven over real sockets. Pins the PR's acceptance invariants:
//!
//! * at the cap, the overflow connect is answered with a typed `busy`
//!   frame (never a silent hang or a dropped socket), and a slot freed
//!   by a disconnect becomes connectable again;
//! * a client that hangs up mid-stream is classified as a client abort
//!   (`server.client_aborts`, a `client_abort` span event) — never a
//!   query error — and the in-flight gauge drains back to zero;
//! * a query bounced by the admission limit gets a `busy` error on a
//!   connection that stays usable;
//! * the shard-merged cache stats account exactly for a replayed
//!   workload (the shard-vs-single-lock equivalence itself is unit-
//!   tested next to the cache).

use kr_server::{
    CacheOutcome, Client, ClientError, ErrorCode, Frame, QuerySpec, Request, Server, ServerConfig,
    ServerHandle,
};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Big enough (wide `r`) that enumeration streams several frames with
/// real compute between them; small enough to stay fast in CI.
fn heavy_spec() -> QuerySpec {
    QuerySpec {
        scale: 0.5,
        ..QuerySpec::new("gowalla-like", 3, 12.0)
    }
}

fn log_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "kr_hardening_e2e_{}_{}_{}.jsonl",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Polls until the server's query books balance — every accepted query
/// answered, rejected, or aborted — so races against in-flight work are
/// waited out instead of asserted away.
fn settle(handle: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = &handle.state().metrics;
        let resolved = m.query_latency_us.snapshot().count
            + m.client_aborts.get()
            + m.admission_rejections.get()
            + m.query_errors.get();
        if m.queries.get() == resolved {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "query accounting never settled: {} accepted vs {resolved} resolved",
            m.queries.get()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Waits for dropped sessions to drain so a follow-up connect (or the
/// shutdown handshake) is not bounced off the connection cap.
fn wait_sessions_drained(handle: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.state().active_sessions() > 0 {
        assert!(Instant::now() < deadline, "sessions never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// How a raw-socket enumerate stood at its first response frame.
enum Started {
    /// First frame was a `core`: the query is mid-stream right now.
    Streaming(std::net::TcpStream, BufReader<std::net::TcpStream>),
    /// First frame was `done`: the query finished before we could act.
    Finished,
    /// First frame was a `busy` error: the admission slot of a previous
    /// attempt had not been released yet.
    Rejected,
}

/// Raw-socket enumerate that blocks until the first response frame, so
/// the caller knows the query is mid-stream before acting on it.
fn start_streaming(addr: std::net::SocketAddr, spec: QuerySpec) -> Started {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello");
    let req = Request::Enumerate {
        id: "q-hold".to_string(),
        spec,
    };
    stream
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send");
    line.clear();
    reader.read_line(&mut line).expect("first frame");
    match Frame::parse(line.trim()).expect("parse") {
        Frame::Core { .. } => Started::Streaming(stream, reader),
        Frame::Done { .. } => Started::Finished,
        Frame::Error {
            code: ErrorCode::Busy,
            ..
        } => Started::Rejected,
        other => panic!("unexpected first frame: {other:?}"),
    }
}

#[test]
fn connection_cap_rejects_overflow_with_busy_and_recycles_freed_slots() {
    let handle = Server::bind(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // The one admitted session works normally.
    let mut held = Client::connect(addr).expect("connect under cap");
    held.ping().expect("ping");

    // N+1: every further connect is answered with a typed `busy` frame
    // that echoes the cap, then closed.
    for i in 0..3 {
        match Client::connect(addr) {
            Err(ClientError::Busy {
                max_connections,
                message,
            }) => {
                assert_eq!(max_connections, 1, "busy frame must echo the cap");
                assert!(message.contains("connection cap"), "got: {message}");
            }
            Ok(_) => panic!("overflow connect {i} was admitted past the cap"),
            Err(e) => panic!("overflow connect {i} got {e}, not a busy frame"),
        }
    }
    assert_eq!(handle.state().metrics.busy_rejections.get(), 3);
    // The held session was never disturbed by the rejections.
    held.ping().expect("ping after rejections");

    // Dropping the held session frees its slot: within the server's
    // read-poll interval a fresh client gets in.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut recycled = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(ClientError::Busy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("freed slot never became connectable: {e}"),
        }
    };
    recycled.ping().expect("ping on recycled slot");
    drop(recycled);

    wait_sessions_drained(&handle);
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn mid_stream_hangup_is_a_client_abort_not_a_query_error() {
    let log = log_path("abort");
    let handle = Server::bind(ServerConfig {
        trace_log: Some(log.display().to_string()),
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // Warm the component cache so the abort attempts go straight to the
    // streaming sweep instead of repaying preprocessing.
    let mut warm = Client::connect(addr).expect("connect");
    warm.enumerate(heavy_spec()).expect("warm query");

    // The hangup races the sweep: `done` can win on a fast machine, in
    // which case the query was simply answered and we try again.
    let mut aborted = false;
    for _ in 0..10 {
        match start_streaming(addr, heavy_spec()) {
            Started::Streaming(stream, reader) => {
                drop(reader);
                drop(stream); // hang up mid-query
                settle(&handle);
                if handle.state().metrics.client_aborts.get() > 0 {
                    aborted = true;
                    break;
                }
            }
            Started::Finished => settle(&handle), // done won the race; retry
            Started::Rejected => panic!("admission rejection on an unlimited server"),
        }
    }
    let m = &handle.state().metrics;
    assert!(aborted, "no hangup was classified as a client abort");
    assert_eq!(
        m.query_errors.get(),
        0,
        "a client hangup must never count as a server-side query error"
    );
    assert_eq!(
        m.active_queries.get(),
        0,
        "aborted queries must drain the in-flight gauge"
    );

    handle.shutdown_and_join().expect("clean shutdown");

    let text = std::fs::read_to_string(&log).expect("trace log readable");
    assert!(
        text.lines().any(|l| l.contains("\"client_abort\"")),
        "the span log must record the abort"
    );
    let _ = std::fs::remove_file(log);
}

#[test]
fn admission_limit_bounces_second_query_and_connection_stays_usable() {
    let handle = Server::bind(ServerConfig {
        max_queries_per_dataset: Some(1),
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let mut warm = Client::connect(addr).expect("connect");
    warm.enumerate(heavy_spec()).expect("warm query");

    let mut rejected = false;
    for _ in 0..10 {
        match start_streaming(addr, heavy_spec()) {
            Started::Streaming(_stream, mut reader) => {
                // The holder's slot is live until its `done` goes out: a
                // concurrent same-dataset query must bounce busy.
                let mut contender = Client::connect(addr).expect("connect");
                match contender.enumerate(heavy_spec()) {
                    Err(ClientError::Server {
                        code: ErrorCode::Busy,
                        message,
                    }) => {
                        assert!(message.contains("admission limit"), "got: {message}");
                        rejected = true;
                    }
                    Ok(_) => {} // holder finished first; retry
                    Err(e) => panic!("contender failed unexpectedly: {e}"),
                }
                // The bounced connection stays usable: same socket, next
                // request answered normally.
                contender.ping().expect("ping after admission rejection");
                // Drain the holder to its `done`.
                loop {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("drain holder");
                    match Frame::parse(line.trim()).expect("parse") {
                        Frame::Done { .. } => break,
                        Frame::Core { .. } => {}
                        other => panic!("unexpected frame draining holder: {other:?}"),
                    }
                }
            }
            // `done` (or a stale previous slot) won the race; the stale
            // slot case is itself the rejection under test.
            Started::Finished => {}
            Started::Rejected => rejected = true,
        }
        if rejected {
            break;
        }
    }
    assert!(rejected, "no concurrent query was admission-rejected");
    assert!(handle.state().metrics.admission_rejections.get() >= 1);

    settle(&handle);
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn sharded_cache_stats_account_exactly_for_a_replayed_workload() {
    let handle = Server::bind(ServerConfig::default()).expect("bind").spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Deterministic replay over six distinct (k, r) keys, three rounds:
    // round one is all misses, later rounds all hits. The cache behind
    // this is sharded by key hash; its merged stats must account for the
    // replay exactly as the old single-lock cache did (the strict
    // shard-vs-single-lock equivalence is unit-tested in `cache`).
    let keys: Vec<(u32, f64)> = vec![(3, 8.0), (3, 9.0), (3, 10.0), (4, 8.0), (4, 9.0), (5, 8.0)];
    let mut hits = 0u64;
    let mut misses = 0u64;
    for round in 0..3 {
        for &(k, r) in &keys {
            let spec = QuerySpec {
                scale: 0.2,
                ..QuerySpec::new("gowalla-like", k, r)
            };
            let res = client.enumerate(spec).expect("query");
            match res.cache {
                CacheOutcome::Hit => hits += 1,
                CacheOutcome::Miss => misses += 1,
            }
            if round == 0 {
                assert_eq!(res.cache, CacheOutcome::Miss, "round one is cold");
            } else {
                assert_eq!(res.cache, CacheOutcome::Hit, "later rounds are warm");
            }
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.misses, misses, "merged shard stats must match");
    assert_eq!(stats.hits, hits, "merged shard stats must match");
    assert_eq!(stats.entries, keys.len(), "all keys resident");
    assert_eq!(stats.evictions, 0, "capacity was never exceeded");

    handle.shutdown_and_join().expect("clean shutdown");
}
