//! Compressed sparse row (CSR) storage for per-vertex target lists.
//!
//! One `offsets` array plus one flat `targets` arena replace a
//! `Vec<Vec<VertexId>>`: a vertex's list is a contiguous slice, so walking
//! it is a single pointer dereference into memory that is shared with its
//! neighbors' lists. The search hot loops (`kr-core`) spend nearly all
//! their time in these walks, and the serving layer `Arc`-shares whole
//! arenas across sessions — two allocations per component instead of
//! `n + 1`.
//!
//! Rows are kept strictly sorted, so membership tests are binary searches
//! over contiguous memory.

use crate::graph::VertexId;

/// Per-row sorted target lists in compressed sparse row form.
///
/// Invariants (load-bearing — [`Csr::row`] elides its slice-range check
/// against them; both fields stay private and every constructor
/// establishes them. If the serde shim is ever swapped for the real
/// crate, `Deserialize` must validate before trusting external data):
/// * `offsets.len() == num_rows() + 1`, `offsets[0] == 0`, monotone,
///   `offsets[num_rows()] == targets.len()`;
/// * `targets[offsets[u]..offsets[u+1]]` is strictly sorted (no
///   duplicates) for every row `u`.
// No `Default`/serde derives: a derived constructor could produce an
// invariant-violating value (empty `offsets`, or untrusted wire data),
// which `row()` must never see. `Csr::empty(0)` is the valid empty value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `targets` for row `u`.
    offsets: Vec<u32>,
    /// Flat, per-row-sorted target arena.
    targets: Vec<VertexId>,
}

impl Csr {
    /// An empty CSR with `n` empty rows.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Builds from nested lists, sorting and deduplicating each row.
    pub fn from_lists(lists: &[Vec<VertexId>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut targets = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for list in lists {
            let start = targets.len();
            targets.extend_from_slice(list);
            targets[start..].sort_unstable();
            let tail = dedup_sorted_tail(&mut targets, start);
            targets.truncate(tail);
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Builds from unordered directed pairs `(row, target)` over rows
    /// `0..n` via counting sort — no per-row allocations. Duplicate pairs
    /// are dropped.
    pub fn from_pairs(n: usize, pairs: &[(VertexId, VertexId)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(u, _) in pairs {
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; acc as usize];
        for &(u, v) in pairs {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        let mut csr = Csr { offsets, targets };
        csr.sort_dedup_rows();
        csr
    }

    /// Sorts every row and drops duplicate targets (restores the row
    /// invariant after a raw fill).
    fn sort_dedup_rows(&mut self) {
        let n = self.num_rows();
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u32);
        for u in 0..n {
            let (start, end) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            self.targets[start..end].sort_unstable();
            let mut prev: Option<VertexId> = None;
            for i in start..end {
                let t = self.targets[i];
                if prev != Some(t) {
                    self.targets[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            new_offsets.push(write as u32);
        }
        self.targets.truncate(write);
        self.offsets = new_offsets;
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True iff there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Sorted target slice of row `u`.
    ///
    /// # Panics
    /// Panics when `u >= num_rows()`.
    #[inline]
    pub fn row(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        // SAFETY: the construction invariant (offsets monotone, final
        // offset == targets.len(), both fields private) guarantees
        // `lo <= hi <= targets.len()`. Skipping the slice-range re-check
        // matters: `row` sits in the innermost search loops, and the
        // extra check + panic path blocks loop optimizations there
        // (measured ~1.6x on the dissimilarity-heavy keyword presets).
        unsafe { self.targets.get_unchecked(lo..hi) }
    }

    /// Length of row `u`.
    #[inline]
    pub fn row_len(&self, u: VertexId) -> usize {
        let u = u as usize;
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Membership test in `O(log row_len(u))`.
    #[inline]
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.row(u).binary_search(&v).is_ok()
    }

    /// Total number of targets across all rows.
    #[inline]
    pub fn total_targets(&self) -> usize {
        self.targets.len()
    }

    /// Longest row (0 when there are no rows).
    pub fn max_row_len(&self) -> usize {
        (0..self.num_rows() as VertexId)
            .map(|u| self.row_len(u))
            .max()
            .unwrap_or(0)
    }

    /// Heap footprint of the two backing arrays in bytes — the arena's
    /// whole variable-size cost (there are no per-row allocations).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// Removes consecutive duplicates in `targets[start..]` (which must be
/// sorted) in place; returns the new logical length of `targets`.
fn dedup_sorted_tail(targets: &mut [VertexId], start: usize) -> usize {
    let mut write = start;
    for read in start..targets.len() {
        if write == start || targets[write - 1] != targets[read] {
            targets[write] = targets[read];
            write += 1;
        }
    }
    write
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let c = Csr::empty(3);
        assert_eq!(c.num_rows(), 3);
        assert_eq!(c.row(1), &[] as &[VertexId]);
        assert_eq!(c.total_targets(), 0);
        assert_eq!(c.max_row_len(), 0);
        assert!(!c.contains(0, 1));
        let z = Csr::empty(0);
        assert!(z.is_empty());
    }

    #[test]
    fn from_lists_sorts_and_dedups() {
        let c = Csr::from_lists(&[vec![2, 1, 2], vec![], vec![0, 0, 1]]);
        assert_eq!(c.row(0), &[1, 2]);
        assert_eq!(c.row(1), &[] as &[VertexId]);
        assert_eq!(c.row(2), &[0, 1]);
        assert_eq!(c.total_targets(), 4);
        assert_eq!(c.max_row_len(), 2);
        assert!(c.contains(0, 2));
        assert!(!c.contains(1, 0));
    }

    #[test]
    fn from_pairs_counting_sort() {
        let c = Csr::from_pairs(4, &[(2, 0), (0, 2), (0, 1), (2, 0), (3, 1)]);
        assert_eq!(c.row(0), &[1, 2]);
        assert_eq!(c.row(1), &[] as &[VertexId]);
        assert_eq!(c.row(2), &[0]);
        assert_eq!(c.row(3), &[1]);
        assert_eq!(c.total_targets(), 4);
    }

    #[test]
    fn matches_nested_reference() {
        let lists = vec![vec![3, 1], vec![0, 2, 3], vec![1], vec![0, 1]];
        let c = Csr::from_lists(&lists);
        for (u, list) in lists.iter().enumerate() {
            let mut want = list.clone();
            want.sort_unstable();
            assert_eq!(c.row(u as VertexId), want.as_slice());
            assert_eq!(c.row_len(u as VertexId), want.len());
        }
    }

    #[test]
    fn heap_bytes_positive() {
        let c = Csr::from_lists(&[vec![1], vec![0]]);
        assert!(c.heap_bytes() >= 3 * 4 + 2 * 4);
    }
}
