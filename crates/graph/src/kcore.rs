//! k-core machinery.
//!
//! Implements the linear-time core decomposition of Batagelj & Zaversnik
//! (*"An O(m) algorithm for cores decomposition of networks"*), plus the
//! k-core extraction primitives the (k,r)-core search uses everywhere:
//! Algorithm 1 preprocessing, Theorem 2 structure pruning, the k-core size
//! upper bound of Section 6.2, and the structure side of the (k,k')-core
//! bound of Algorithm 6.

use crate::graph::{Graph, VertexId};

/// Result of a full core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` is the core number of `v` (the largest `k` such that `v`
    /// belongs to the k-core).
    pub core: Vec<u32>,
    /// Maximum core number over all vertices (`0` for an edgeless graph).
    pub max_core: u32,
}

impl CoreDecomposition {
    /// Vertices whose core number is at least `k` — i.e. the k-core vertex
    /// set (possibly disconnected).
    pub fn k_core_vertices(&self, k: u32) -> Vec<VertexId> {
        self.core
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Full core decomposition via bucket-sorted peeling, `O(n + m)`.
pub fn core_decomposition(g: &Graph) -> CoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            max_core: 0,
        };
    }
    let mut deg: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max_deg = *deg.iter().max().unwrap();

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    // `pos[v]` is v's index in `vert`; `vert` is sorted by current degree.
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as VertexId; n];
    for v in 0..n {
        let d = deg[v];
        pos[v] = bin[d];
        vert[bin[d]] = v as VertexId;
        bin[d] += 1;
    }
    // Restore bin starts.
    for d in (1..=max_deg + 1).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = vec![0u32; n];
    let mut max_core = 0u32;
    for i in 0..n {
        let v = vert[i];
        let dv = deg[v as usize];
        core[v as usize] = dv as u32;
        max_core = max_core.max(dv as u32);
        for &u in g.neighbors(v) {
            let du = deg[u as usize];
            if du > dv {
                // Swap u with the first vertex of its degree bucket, then
                // shrink its degree by one.
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                deg[u as usize] -= 1;
            }
        }
    }
    CoreDecomposition { core, max_core }
}

/// Vertices of the k-core of `g` (possibly disconnected), computed by
/// iterative peeling. `O(n + m)`.
pub fn k_core(g: &Graph, k: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let alive = vec![true; n];
    k_core_peel(g, k, alive)
}

/// Vertices of the k-core of the subgraph of `g` induced by `subset`.
///
/// This is the workhorse behind Theorem 2 pruning: given the current
/// candidate set `M ∪ C`, peel vertices whose degree inside the set drops
/// below `k`. Runs in time linear in the induced subgraph.
pub fn k_core_of_subset(g: &Graph, k: u32, subset: &[VertexId]) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut alive = vec![false; n];
    for &v in subset {
        alive[v as usize] = true;
    }
    k_core_peel(g, k, alive)
}

/// The `graph.kcore_peel_us` histogram on the process-global registry:
/// one sample per peel (sequential or parallel), in microseconds. The
/// handle is cached so the registry lock is taken once per process.
fn peel_hist() -> &'static std::sync::Arc<kr_obs::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<kr_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| kr_obs::global().histogram("graph.kcore_peel_us"))
}

fn k_core_peel(g: &Graph, k: u32, alive: Vec<bool>) -> Vec<VertexId> {
    let t0 = std::time::Instant::now();
    let out = k_core_peel_inner(g, k, alive);
    peel_hist().record_duration(t0.elapsed());
    out
}

fn k_core_peel_inner(g: &Graph, k: u32, mut alive: Vec<bool>) -> Vec<VertexId> {
    let n = g.num_vertices();
    // Degrees must be computed against the *initial* alive mask before any
    // vertex is peeled; mutating the mask mid-scan would double-count
    // removals for neighbors visited later in the scan.
    let mut deg = vec![0usize; n];
    for v in 0..n {
        if alive[v] {
            deg[v] = g
                .neighbors(v as VertexId)
                .iter()
                .filter(|&&u| alive[u as usize])
                .count();
        }
    }
    let mut queue: Vec<VertexId> = Vec::new();
    for v in 0..n {
        if alive[v] && (deg[v] as u32) < k {
            queue.push(v as VertexId);
            alive[v] = false;
        }
    }
    while let Some(v) = queue.pop() {
        for &u in g.neighbors(v) {
            if alive[u as usize] {
                deg[u as usize] -= 1;
                if (deg[u as usize] as u32) < k {
                    alive[u as usize] = false;
                    queue.push(u);
                }
            }
        }
    }
    (0..n as VertexId).filter(|&v| alive[v as usize]).collect()
}

/// Vertices of the k-core of `g`, computed by parallel level-synchronous
/// peeling on `threads` workers (`0` = all available cores).
///
/// Returns exactly the same vertex set as [`k_core`] (the k-core is
/// unique), in the same ascending order. The algorithm keeps one atomic
/// degree counter per vertex; each peeling round removes the current
/// sub-`k` frontier in parallel, and the worker whose decrement drops a
/// neighbor from `k` to `k - 1` claims it for the next frontier, so every
/// vertex is peeled exactly once. Small graphs (or `threads == 1`) fall
/// back to the sequential peel, which is faster below ~100k edges.
pub fn k_core_parallel(g: &Graph, k: u32, threads: usize) -> Vec<VertexId> {
    let threads = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    if threads <= 1 || g.num_vertices() < 2048 {
        return k_core(g, k);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    k_core_on(g, k, &pool)
}

/// [`k_core_parallel`] on a caller-provided pool, so one pool can be
/// threaded through every phase of a query instead of being rebuilt per
/// phase. Falls back to the sequential peel when the pool has a single
/// worker or the graph is small.
pub fn k_core_on(g: &Graph, k: u32, pool: &rayon::ThreadPool) -> Vec<VertexId> {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Mutex;

    let n = g.num_vertices();
    let threads = pool.current_num_threads();
    if threads <= 1 || n < 2048 {
        return k_core(g, k);
    }
    if k == 0 {
        return (0..n as VertexId).collect();
    }
    let t0 = std::time::Instant::now();

    let deg: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let chunk = n.div_ceil(threads).max(1);

    // Initial degrees and sub-k frontier, chunked over the vertex range.
    let frontier = Mutex::new(Vec::new());
    pool.scope(|s| {
        for lo in (0..n).step_by(chunk) {
            let deg = &deg;
            let frontier = &frontier;
            s.spawn(move |_| {
                let hi = (lo + chunk).min(n);
                let mut local = Vec::new();
                for (v, slot) in (lo..hi).zip(&deg[lo..hi]) {
                    let d = g.degree(v as VertexId) as u32;
                    slot.store(d, Ordering::Relaxed);
                    if d < k {
                        local.push(v as VertexId);
                    }
                }
                frontier.lock().expect("frontier lock").extend(local);
            });
        }
    });
    let mut frontier = frontier.into_inner().expect("frontier lock");

    // Peeling rounds: remove the frontier, claim neighbors crossing k.
    // Small rounds (deep cascades usually shrink to a handful of
    // vertices) are processed inline — spawning a scope per tiny round
    // would cost more in thread churn than the round itself.
    while !frontier.is_empty() {
        if frontier.len() < 512 {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in g.neighbors(v) {
                    if deg[u as usize].fetch_sub(1, Ordering::AcqRel) == k {
                        next.push(u);
                    }
                }
            }
            frontier = next;
            continue;
        }
        let round_chunk = frontier.len().div_ceil(threads).max(1);
        let next = Mutex::new(Vec::new());
        pool.scope(|s| {
            for piece in frontier.chunks(round_chunk) {
                let deg = &deg;
                let next = &next;
                s.spawn(move |_| {
                    let mut local = Vec::new();
                    for &v in piece {
                        for &u in g.neighbors(v) {
                            // fetch_sub returns the previous value; only
                            // the decrement that crosses the threshold
                            // claims u, so each vertex is claimed once.
                            if deg[u as usize].fetch_sub(1, Ordering::AcqRel) == k {
                                local.push(u);
                            }
                        }
                    }
                    next.lock().expect("next lock").extend(local);
                });
            }
        });
        frontier = next.into_inner().expect("next lock");
    }

    let out: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| deg[v as usize].load(Ordering::Relaxed) >= k)
        .collect();
    peel_hist().record_duration(t0.elapsed());
    out
}

/// Naive reference k-core (repeated full scans); used as a test oracle.
pub fn k_core_naive(g: &Graph, k: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    loop {
        let mut changed = false;
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let d = g
                .neighbors(v as VertexId)
                .iter()
                .filter(|&&u| alive[u as usize])
                .count();
            if (d as u32) < k {
                alive[v] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..n as VertexId).filter(|&v| alive[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn clique(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn decomposition_of_clique() {
        let g = clique(5);
        let d = core_decomposition(&g);
        assert_eq!(d.max_core, 4);
        assert!(d.core.iter().all(|&c| c == 4));
    }

    #[test]
    fn decomposition_of_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = core_decomposition(&g);
        assert_eq!(d.max_core, 1);
        assert_eq!(d.core, vec![1, 1, 1, 1]);
    }

    #[test]
    fn decomposition_empty() {
        let d = core_decomposition(&Graph::empty(0));
        assert_eq!(d.max_core, 0);
        let d = core_decomposition(&Graph::empty(3));
        assert_eq!(d.core, vec![0, 0, 0]);
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 plus tail 2-3: cores 2,2,2,1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let d = core_decomposition(&g);
        assert_eq!(d.core, vec![2, 2, 2, 1]);
        assert_eq!(d.k_core_vertices(2), vec![0, 1, 2]);
        assert_eq!(k_core(&g, 2), vec![0, 1, 2]);
        assert_eq!(k_core(&g, 1), vec![0, 1, 2, 3]);
        assert_eq!(k_core(&g, 3), Vec::<VertexId>::new());
    }

    #[test]
    fn k_core_of_subset_restricts() {
        // 4-clique; restricted to 3 vertices it is a triangle (2-core only).
        let g = clique(4);
        assert_eq!(k_core_of_subset(&g, 3, &[0, 1, 2, 3]).len(), 4);
        assert_eq!(k_core_of_subset(&g, 3, &[0, 1, 2]).len(), 0);
        assert_eq!(k_core_of_subset(&g, 2, &[0, 1, 2]).len(), 3);
    }

    #[test]
    fn peeling_cascades() {
        // A "chain of triangles" where removing low-degree vertices cascades.
        // 0-1-2 triangle, 2-3, 3-4: 2-core is just the triangle.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        assert_eq!(k_core(&g, 2), vec![0, 1, 2]);
    }

    #[test]
    fn matches_naive_on_fixed_graphs() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (6, 7),
            ],
        );
        for k in 0..5 {
            assert_eq!(k_core(&g, k), k_core_naive(&g, k), "k = {k}");
        }
    }

    /// Deterministic pseudo-random graph big enough (n ≥ 2048) to take the
    /// genuinely parallel path in [`k_core_parallel`].
    fn large_graph() -> Graph {
        let n = 3000usize;
        let mut edges = Vec::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        // Ring + random chords: varied degrees, deep peeling cascades.
        for v in 0..n as VertexId {
            edges.push((v, (v + 1) % n as VertexId));
        }
        for _ in 0..4 * n {
            let u = (next() % n as u64) as VertexId;
            let v = (next() % n as u64) as VertexId;
            edges.push((u, v));
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn parallel_matches_sequential_on_large_graph() {
        let g = large_graph();
        for k in [0, 1, 2, 3, 4, 6, 10] {
            let seq = k_core(&g, k);
            for threads in [2, 4] {
                assert_eq!(k_core_parallel(&g, k, threads), seq, "k={k} t={threads}");
            }
        }
    }

    #[test]
    fn parallel_falls_back_on_small_graphs() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(k_core_parallel(&g, 2, 8), k_core(&g, 2));
        assert_eq!(k_core_parallel(&g, 2, 0), k_core(&g, 2));
    }

    #[test]
    fn core_numbers_consistent_with_kcore() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
            ],
        );
        let d = core_decomposition(&g);
        for k in 0..=d.max_core + 1 {
            assert_eq!(d.k_core_vertices(k), k_core(&g, k), "k = {k}");
        }
    }
}
