//! Incremental coreness maintenance under edge updates.
//!
//! Implements the traversal-style k-core maintenance of Li, Yu & Mao
//! (*"Efficient Core Maintenance in Large Dynamic Graphs"*) and Sarıyüce
//! et al.: a single edge insertion or deletion changes any vertex's core
//! number by at most one, and the only vertices that can change are those
//! with core number `K = min(core(u), core(v))` reachable from the
//! touched endpoints through vertices of core number `K` — the *subcore*.
//! Maintenance therefore touches a neighborhood proportional to the
//! subcore, not the graph.
//!
//! The algorithms are generic over a [`NeighborSource`] so the same
//! machinery maintains both the plain structural coreness (adjacency from
//! a [`Graph`] or [`AdjacencyList`]) and the per-r-band coreness of the
//! decomposition index, where adjacency is the structural neighborhood
//! filtered through a similarity oracle at the band's threshold.

use crate::graph::{Graph, VertexId};
use std::collections::{HashMap, HashSet};

/// Adjacency provider for the maintenance traversals. Implemented by
/// [`Graph`] and [`AdjacencyList`]; downstream crates wrap these with
/// edge filters (e.g. a similarity predicate per r-band) to maintain
/// coreness of derived graphs without materializing them.
pub trait NeighborSource {
    /// Calls `f` once per neighbor of `v`.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId));
}

impl NeighborSource for Graph {
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &u in self.neighbors(v) {
            f(u);
        }
    }
}

/// The `graph.core_updates` counter on the process-global registry: total
/// vertices whose core number was changed by incremental maintenance.
/// The handle is cached so the registry lock is taken once per process.
fn core_updates_counter() -> &'static std::sync::Arc<kr_obs::Counter> {
    static C: std::sync::OnceLock<std::sync::Arc<kr_obs::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| kr_obs::global().counter("graph.core_updates"))
}

/// The subcore: vertices with core number exactly `k` reachable from the
/// seed endpoints through vertices of core number `k`. Seeds whose core
/// number differs from `k` are skipped (only the minimum-core endpoint
/// side of an update can change).
fn collect_subcore(
    core: &[u32],
    g: &impl NeighborSource,
    seeds: &[VertexId],
    k: u32,
) -> Vec<VertexId> {
    let mut seen: HashSet<VertexId> = HashSet::new();
    let mut stack: Vec<VertexId> = Vec::new();
    for &s in seeds {
        if core[s as usize] == k && seen.insert(s) {
            stack.push(s);
        }
    }
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        out.push(v);
        g.for_each_neighbor(v, &mut |x| {
            if core[x as usize] == k && seen.insert(x) {
                stack.push(x);
            }
        });
    }
    out
}

/// Peels the subcore `cands` at degree threshold `t`, where a candidate's
/// supporting degree counts neighbors with core ≥ `k` (higher-core
/// neighbors never peel; equal-core neighbors of a subcore member are
/// themselves subcore members, so peeling one withdraws its support).
/// Returns the surviving candidate set.
fn peel_subcore(
    core: &[u32],
    g: &impl NeighborSource,
    cands: &[VertexId],
    k: u32,
    t: u32,
) -> HashSet<VertexId> {
    let mut cd: HashMap<VertexId, u32> = HashMap::with_capacity(cands.len());
    for &w in cands {
        let mut d = 0u32;
        g.for_each_neighbor(w, &mut |x| {
            if core[x as usize] >= k {
                d += 1;
            }
        });
        cd.insert(w, d);
    }
    let mut alive: HashSet<VertexId> = cands.iter().copied().collect();
    let mut queue: Vec<VertexId> = cands
        .iter()
        .copied()
        .filter(|w| cd[w] < t)
        .inspect(|w| {
            alive.remove(w);
        })
        .collect();
    while let Some(w) = queue.pop() {
        g.for_each_neighbor(w, &mut |x| {
            if alive.contains(&x) {
                let d = cd.get_mut(&x).expect("alive implies tracked");
                *d -= 1;
                if *d < t {
                    alive.remove(&x);
                    queue.push(x);
                }
            }
        });
    }
    alive
}

/// Repairs the coreness array after inserting edge `{u, v}`: `g` must
/// already contain the edge, `core` must hold the pre-insert core
/// numbers. Only subcore vertices are visited; survivors of a peel at
/// threshold `K + 1` gain one. Returns the vertices whose core number
/// changed (possibly empty), in ascending order, and bumps the global
/// `graph.core_updates` counter by that count.
pub fn coreness_after_insert(
    core: &mut [u32],
    g: &impl NeighborSource,
    u: VertexId,
    v: VertexId,
) -> Vec<VertexId> {
    let k = core[u as usize].min(core[v as usize]);
    let cands = collect_subcore(core, g, &[u, v], k);
    let risers = peel_subcore(core, g, &cands, k, k + 1);
    let mut changed: Vec<VertexId> = risers.into_iter().collect();
    changed.sort_unstable();
    for &w in &changed {
        core[w as usize] += 1;
    }
    core_updates_counter().add(changed.len() as u64);
    changed
}

/// Repairs the coreness array after removing edge `{u, v}`: `g` must no
/// longer contain the edge, `core` must hold the pre-removal core
/// numbers. Subcore vertices that no longer sustain degree `K` inside
/// the (k ≥ K)-supported set lose one. Returns the vertices whose core
/// number changed, in ascending order, and bumps the global
/// `graph.core_updates` counter by that count.
pub fn coreness_after_remove(
    core: &mut [u32],
    g: &impl NeighborSource,
    u: VertexId,
    v: VertexId,
) -> Vec<VertexId> {
    let k = core[u as usize].min(core[v as usize]);
    if k == 0 {
        return Vec::new();
    }
    let cands = collect_subcore(core, g, &[u, v], k);
    let kept = peel_subcore(core, g, &cands, k, k);
    let mut changed: Vec<VertexId> = cands.into_iter().filter(|w| !kept.contains(w)).collect();
    changed.sort_unstable();
    for &w in &changed {
        core[w as usize] -= 1;
    }
    core_updates_counter().add(changed.len() as u64);
    changed
}

/// Mutable adjacency companion to the immutable CSR [`Graph`]: sorted
/// per-vertex rows supporting O(deg) edge insertion/removal, so a batch
/// of updates can be applied edge-at-a-time (maintenance needs the graph
/// state *between* edges) and converted back to CSR once at the end.
#[derive(Debug, Clone)]
pub struct AdjacencyList {
    rows: Vec<Vec<VertexId>>,
    edges: usize,
}

impl AdjacencyList {
    /// Mutable copy of `g`'s adjacency.
    pub fn from_graph(g: &Graph) -> Self {
        AdjacencyList {
            rows: g.vertices().map(|v| g.neighbors(v).to_vec()).collect(),
            edges: g.num_edges(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rows.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.rows[v as usize].len()
    }

    /// Sorted neighbor slice of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.rows[v as usize]
    }

    /// Adjacency test in `O(log deg)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.rows[u as usize].binary_search(&v).is_ok()
    }

    /// Inserts undirected edge `{u, v}`; returns `false` (no change) for
    /// self loops and already-present edges.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let n = self.rows.len();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        if u == v {
            return false;
        }
        match self.rows[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.rows[u as usize].insert(pos, v);
                let pos = self.rows[v as usize]
                    .binary_search(&u)
                    .expect_err("symmetric absence");
                self.rows[v as usize].insert(pos, u);
                self.edges += 1;
                true
            }
        }
    }

    /// Removes undirected edge `{u, v}`; returns `false` when absent.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let n = self.rows.len();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        if u == v {
            return false;
        }
        match self.rows[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos) => {
                self.rows[u as usize].remove(pos);
                let pos = self.rows[v as usize]
                    .binary_search(&u)
                    .expect("symmetric presence");
                self.rows[v as usize].remove(pos);
                self.edges -= 1;
                true
            }
        }
    }

    /// Freezes back into an immutable CSR [`Graph`]. Rows are already
    /// sorted, symmetric, and loop-free, so this is a flat copy.
    pub fn to_graph(&self) -> Graph {
        let mut offsets = Vec::with_capacity(self.rows.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        let mut neighbors = Vec::with_capacity(2 * self.edges);
        for row in &self.rows {
            acc += row.len();
            offsets.push(acc);
            neighbors.extend_from_slice(row);
        }
        Graph::from_csr_parts(offsets, neighbors).expect("rows uphold CSR invariants")
    }
}

impl NeighborSource for AdjacencyList {
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &u in self.neighbors(v) {
            f(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::core_decomposition;

    fn cores(g: &Graph) -> Vec<u32> {
        core_decomposition(g).core
    }

    #[test]
    fn insert_closes_triangle() {
        // Path 0-1-2 (cores 1,1,1) + edge {0,2} → triangle, cores 2,2,2.
        let mut adj = AdjacencyList::from_graph(&Graph::from_edges(3, &[(0, 1), (1, 2)]));
        let mut core = cores(&adj.to_graph());
        assert!(adj.insert_edge(0, 2));
        let changed = coreness_after_insert(&mut core, &adj, 0, 2);
        assert_eq!(changed, vec![0, 1, 2]);
        assert_eq!(core, cores(&adj.to_graph()));
    }

    #[test]
    fn insert_outside_subcore_changes_nothing() {
        // Tail vertex joins a 4-clique by one edge: nobody's core moves
        // (3 stays 1-core: one edge cannot make it a 3-core member).
        let mut adj = AdjacencyList::from_graph(&Graph::from_edges(
            5,
            &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)],
        ));
        let mut core = cores(&adj.to_graph());
        assert!(adj.insert_edge(3, 4));
        let changed = coreness_after_insert(&mut core, &adj, 3, 4);
        assert_eq!(changed, vec![4], "isolated endpoint rises 0 → 1");
        assert_eq!(core, cores(&adj.to_graph()));
    }

    #[test]
    fn remove_cascades_through_subcore() {
        // Triangle + tail: deleting a triangle edge drops all three.
        let mut adj =
            AdjacencyList::from_graph(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]));
        let mut core = cores(&adj.to_graph());
        assert_eq!(core, vec![2, 2, 2, 1]);
        assert!(adj.remove_edge(0, 1));
        let changed = coreness_after_remove(&mut core, &adj, 0, 1);
        assert_eq!(changed, vec![0, 1, 2]);
        assert_eq!(core, cores(&adj.to_graph()));
    }

    #[test]
    fn remove_isolating_edge_hits_zero() {
        let mut adj = AdjacencyList::from_graph(&Graph::from_edges(2, &[(0, 1)]));
        let mut core = cores(&adj.to_graph());
        assert!(adj.remove_edge(0, 1));
        let changed = coreness_after_remove(&mut core, &adj, 0, 1);
        assert_eq!(changed, vec![0, 1]);
        assert_eq!(core, vec![0, 0]);
    }

    #[test]
    fn adjacency_list_roundtrip_and_edge_ops() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut adj = AdjacencyList::from_graph(&g);
        assert_eq!(adj.to_graph(), g);
        assert_eq!(adj.num_edges(), 5);
        assert!(!adj.insert_edge(0, 1), "duplicate rejected");
        assert!(!adj.insert_edge(2, 2), "self loop rejected");
        assert!(!adj.remove_edge(0, 2), "absent edge rejected");
        assert!(adj.insert_edge(0, 2));
        assert!(adj.has_edge(2, 0));
        assert_eq!(adj.num_edges(), 6);
        assert!(adj.remove_edge(0, 2));
        assert_eq!(adj.to_graph(), g);
    }

    /// Deterministic xorshift stream for the randomized equivalence runs.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn random_update_stream_matches_from_scratch() {
        let n = 60usize;
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let mut edges = Vec::new();
        for _ in 0..150 {
            let u = (rng.next() % n as u64) as VertexId;
            let v = (rng.next() % n as u64) as VertexId;
            if u != v {
                edges.push((u, v));
            }
        }
        let mut adj = AdjacencyList::from_graph(&Graph::from_edges(n, &edges));
        let mut core = cores(&adj.to_graph());
        for step in 0..400 {
            let u = (rng.next() % n as u64) as VertexId;
            let v = (rng.next() % n as u64) as VertexId;
            if u == v {
                continue;
            }
            if adj.has_edge(u, v) {
                adj.remove_edge(u, v);
                coreness_after_remove(&mut core, &adj, u, v);
            } else {
                adj.insert_edge(u, v);
                coreness_after_insert(&mut core, &adj, u, v);
            }
            assert_eq!(core, cores(&adj.to_graph()), "diverged at step {step}");
        }
    }

    #[test]
    fn filtered_neighbor_source_maintains_a_derived_graph() {
        // The decomposition-index use case in miniature: maintain the
        // coreness of "the graph restricted to even-sum edges" through a
        // filtering NeighborSource, mutating only the base adjacency.
        struct EvenSum<'a>(&'a AdjacencyList);
        impl NeighborSource for EvenSum<'_> {
            fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
                for &u in self.0.neighbors(v) {
                    if (u + v).is_multiple_of(2) {
                        f(u);
                    }
                }
            }
        }
        let n = 40usize;
        let mut rng = Rng(0xC0FF_EE00_DEAD_BEEF);
        let mut adj = AdjacencyList::from_graph(&Graph::empty(n));
        let mut core = vec![0u32; n];
        for _ in 0..300 {
            let u = (rng.next() % n as u64) as VertexId;
            let v = (rng.next() % n as u64) as VertexId;
            if u == v {
                continue;
            }
            let filtered_edge = (u + v).is_multiple_of(2);
            if adj.has_edge(u, v) {
                adj.remove_edge(u, v);
                if filtered_edge {
                    coreness_after_remove(&mut core, &EvenSum(&adj), u, v);
                }
            } else {
                adj.insert_edge(u, v);
                if filtered_edge {
                    coreness_after_insert(&mut core, &EvenSum(&adj), u, v);
                }
            }
            let reference = adj.to_graph().filter_edges(|u, v| (u + v) % 2 == 0);
            assert_eq!(core, cores(&reference));
        }
    }
}
