//! Compact undirected simple graph.
//!
//! The representation is CSR-like: a flat neighbor array plus per-vertex
//! offsets. Neighbor lists are sorted, enabling `O(log d)` adjacency tests
//! and linear-time sorted-list intersections (used heavily by the clique
//! baseline and the similarity machinery).

use serde::{Deserialize, Serialize};

/// Vertex identifier. The paper's datasets have at most a few million
/// vertices, so `u32` keeps adjacency arrays compact (half the memory
/// traffic of `usize` on 64-bit platforms).
pub type VertexId = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Invariants:
/// * no self loops, no parallel edges;
/// * each undirected edge `{u, v}` is stored twice (in `u`'s and `v`'s list);
/// * every neighbor list is strictly sorted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Flat, per-vertex-sorted adjacency array.
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph from an edge list; duplicates and self loops are
    /// dropped. `n` is the vertex count (vertices are `0..n`).
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Adjacency test in `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Search in the shorter list for a tighter bound.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree (`2m / n`), 0.0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Returns a copy of this graph with the given undirected edges removed.
    ///
    /// Used by Algorithm 1's preprocessing: *"Remove edge (u,v) from G if
    /// sim(u,v) < r"*. Edges not present are ignored.
    pub fn remove_edges(&self, to_remove: &[(VertexId, VertexId)]) -> Graph {
        use std::collections::HashSet;
        let dead: HashSet<(VertexId, VertexId)> = to_remove
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let mut b = GraphBuilder::new(self.num_vertices());
        for (u, v) in self.edges() {
            if !dead.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// The raw CSR parts: per-vertex offsets and the flat neighbor arena.
    /// This is the layout the snapshot format serializes verbatim.
    pub fn csr_parts(&self) -> (&[usize], &[VertexId]) {
        (&self.offsets, &self.neighbors)
    }

    /// Rebuilds a graph directly from CSR parts, validating every
    /// invariant the rest of the crate relies on: monotone offsets
    /// covering the arena exactly, strictly sorted rows, no self loops,
    /// in-range targets, and symmetric adjacency (`v ∈ N(u) ⇔ u ∈ N(v)`).
    ///
    /// This is the canonical snapshot-load path: unlike
    /// [`GraphBuilder::build`] it does no sorting or deduplication, so a
    /// round trip through [`Graph::csr_parts`] is byte-identical — but it
    /// must therefore reject malformed input instead of trusting it.
    pub fn from_csr_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Result<Graph, String> {
        if offsets.is_empty() {
            return Err("offsets must hold at least one entry".to_string());
        }
        if offsets[0] != 0 {
            return Err(format!("offsets[0] must be 0, found {}", offsets[0]));
        }
        let n = offsets.len() - 1;
        if *offsets.last().expect("non-empty") != neighbors.len() {
            return Err(format!(
                "final offset {} does not cover the {}-entry neighbor arena",
                offsets.last().expect("non-empty"),
                neighbors.len()
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be monotone".to_string());
        }
        let g = Graph { offsets, neighbors };
        for v in 0..n as VertexId {
            let row = g.neighbors(v);
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("neighbor row of vertex {v} is not strictly sorted"));
            }
            for &u in row {
                if u as usize >= n {
                    return Err(format!("vertex {v} lists neighbor {u} >= n = {n}"));
                }
                if u == v {
                    return Err(format!("vertex {v} lists a self loop"));
                }
            }
        }
        // Symmetry: every directed entry must have its mirror, and the two
        // half-edge counts already match (total entries are even per pair)
        // only if each (u, v) has (v, u).
        for v in 0..n as VertexId {
            for &u in g.neighbors(v) {
                if g.neighbors(u).binary_search(&v).is_err() {
                    return Err(format!("edge {v}->{u} has no mirror {u}->{v}"));
                }
            }
        }
        Ok(g)
    }

    /// Retains only edges for which `keep(u, v)` returns true.
    pub fn filter_edges(&self, mut keep: impl FnMut(VertexId, VertexId) -> bool) -> Graph {
        let mut b = GraphBuilder::new(self.num_vertices());
        for (u, v) in self.edges() {
            if keep(u, v) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// [`Graph::filter_edges`] restricted to `subset`: keeps only edges
    /// with **both** endpoints in `subset` that also pass `keep`. The
    /// predicate is evaluated only on subset-internal edges, so when
    /// `keep` is expensive (a similarity oracle) the cost scales with
    /// the subset's edge count, not the whole graph's. The returned
    /// graph keeps the original vertex numbering; vertices outside
    /// `subset` are isolated.
    ///
    /// # Panics
    /// Panics when `subset` names a vertex `>= num_vertices()`.
    pub fn filter_edges_within(
        &self,
        subset: &[VertexId],
        mut keep: impl FnMut(VertexId, VertexId) -> bool,
    ) -> Graph {
        let mut in_subset = vec![false; self.num_vertices()];
        for &v in subset {
            in_subset[v as usize] = true;
        }
        let mut b = GraphBuilder::new(self.num_vertices());
        for &u in subset {
            for &v in self.neighbors(u) {
                if u < v && in_subset[v as usize] && keep(u, v) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }
}

/// Incremental builder for [`Graph`].
///
/// Accepts edges in any order, tolerates duplicates and self loops (both are
/// dropped), and produces sorted CSR adjacency on [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// New builder over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds undirected edge `{u, v}`. Self loops are silently dropped.
    ///
    /// # Panics
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} vertices",
            self.n
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of vertices the builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Finalizes into an immutable [`Graph`], deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each list was filled in increasing order of the *other* endpoint
        // only for the (u, v) sorted pass over u; v-side insertions are also
        // monotone because edges are sorted by (u, v) and v-side entries are
        // the u's, which increase. Still, sort defensively: correctness over
        // micro-optimization here; builds are not hot.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(6, &[(3, 0), (3, 5), (3, 1), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4, 5]);
        assert_eq!(g.degree(3), 5);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn edges_iterator_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn remove_edges_works() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = g.remove_edges(&[(2, 1), (3, 3)]);
        assert!(g2.has_edge(0, 1));
        assert!(!g2.has_edge(1, 2));
        assert!(g2.has_edge(2, 3));
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn filter_edges_works() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = g.filter_edges(|u, v| u + v != 3);
        assert_eq!(g2.num_edges(), 2);
        assert!(g2.has_edge(0, 1));
        assert!(!g2.has_edge(1, 2));
        assert!(g2.has_edge(2, 3));
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn csr_parts_roundtrip_is_identical() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)]);
        let (offsets, neighbors) = g.csr_parts();
        let back = Graph::from_csr_parts(offsets.to_vec(), neighbors.to_vec()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn from_csr_parts_rejects_malformed() {
        // Monotone violation.
        assert!(Graph::from_csr_parts(vec![0, 2, 1], vec![1, 0]).is_err());
        // Arena not covered.
        assert!(Graph::from_csr_parts(vec![0, 1], vec![0, 0]).is_err());
        // Unsorted row.
        assert!(Graph::from_csr_parts(vec![0, 2, 3, 4], vec![2, 1, 0, 0]).is_err());
        // Self loop.
        assert!(Graph::from_csr_parts(vec![0, 1, 2], vec![0, 0]).is_err());
        // Out-of-range target.
        assert!(Graph::from_csr_parts(vec![0, 1, 2], vec![5, 0]).is_err());
        // Asymmetric: 0 lists 1, 1 does not list 0.
        assert!(Graph::from_csr_parts(vec![0, 1, 1], vec![1]).is_err());
        // Empty offsets.
        assert!(Graph::from_csr_parts(vec![], vec![]).is_err());
        // Valid empty graph.
        assert!(Graph::from_csr_parts(vec![0], vec![]).is_ok());
    }

    #[test]
    fn avg_degree() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }
}
