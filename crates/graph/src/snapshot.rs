//! Binary snapshot container (`.krb`).
//!
//! A snapshot stores a fully ingested dataset — densified CSR graph,
//! original-id map, attribute table — in one file with a verifiable
//! layout, so loading skips every parse/densify/sort/validate step the
//! text loaders pay (the data-skipping idea of the provenance literature
//! applied to load time). The layout is append-friendly and strictly
//! sequential to write (SSD-friendly: one pass, no seeks), and every
//! section payload starts on a 64-byte boundary so a future reader can
//! `mmap` the file and cast section bytes in place.
//!
//! ```text
//! offset 0   header (32 B)
//!            ┌──────┬───────┬───────┬───────┬──────────┬───────────┐
//!            │magic │ major │ minor │ flags │ sections │ total_len │ hdr_cksum
//!            │ KRBS │  u16  │  u16  │  u32  │   u32    │    u64    │   u64
//!            └──────┴───────┴───────┴───────┴──────────┴───────────┘
//! offset 32  section table (32 B per entry)
//!            ┌──────┬───────┬────────┬───────┬──────────┐
//!            │ kind │ flags │ offset │  len  │ checksum │   × section count
//!            │ u32  │  u32  │  u64   │  u64  │ fnv1a64  │
//!            └──────┴───────┴────────┴───────┴──────────┘
//! ...        section payloads, each 64-byte aligned, zero-padded
//! ```
//!
//! All integers are little-endian. Checksums are FNV-1a 64 (the header
//! checksum covers header bytes 0..24; each section checksum covers its
//! payload). **Versioning rules:** readers reject a different `major`
//! ([`SnapshotError::UnsupportedMajor`]); a higher `minor` is readable —
//! unknown sections flagged [`SECTION_FLAG_OPTIONAL`] are skipped, an
//! unknown *required* section is a typed error (a future writer marks a
//! section required exactly when old readers must not silently ignore
//! it).
//!
//! This module owns the generic container plus the graph-level sections;
//! `kr_similarity::snapshot` layers the attribute section and the
//! one-call dataset snapshot on top.

use crate::graph::Graph;
use crate::io::LoadedGraph;
use std::io::Write;
use std::path::Path;

/// File magic, first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"KRBS";
/// Format major version written (readers reject a mismatch).
pub const VERSION_MAJOR: u16 = 1;
/// Format minor version written (readers accept any minor).
pub const VERSION_MINOR: u16 = 0;
/// Section payload alignment: mmap-castable for 8-byte-wide entries.
pub const SECTION_ALIGN: u64 = 64;
/// Header length in bytes.
pub const HEADER_LEN: usize = 32;
/// Section-table entry length in bytes.
pub const SECTION_ENTRY_LEN: usize = 32;

/// Section flag: a reader that does not know the section's kind may skip
/// it. Unknown sections *without* this flag are load errors.
pub const SECTION_FLAG_OPTIONAL: u32 = 1;

/// Well-known section kinds.
pub mod section {
    /// Graph CSR offsets, `n + 1` entries of u64 LE.
    pub const GRAPH_OFFSETS: u32 = 1;
    /// Graph CSR neighbor arena, u32 LE entries.
    pub const GRAPH_NEIGHBORS: u32 = 2;
    /// Original (file) vertex ids, `n` entries of u64 LE.
    pub const ORIGINAL_IDS: u32 = 3;
    /// Attribute table (layout owned by `kr_similarity::snapshot`).
    pub const ATTRIBUTES: u32 = 4;
    /// (k,r)-core decomposition index (layout owned by
    /// `kr_core::decomp`). Always written with
    /// [`super::SECTION_FLAG_OPTIONAL`]: a reader that predates the
    /// index skips it and serves the snapshot unindexed.
    pub const DECOMP_INDEX: u32 = 5;
}

/// Typed snapshot failures. Corrupt or truncated input must surface as
/// one of these — never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's major version differs from [`VERSION_MAJOR`].
    UnsupportedMajor {
        /// Major version in the file.
        found: u16,
        /// Major version this reader speaks.
        supported: u16,
    },
    /// The file ends before `context` is complete.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the structure requires.
        needed: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// The header checksum does not match the header bytes.
    HeaderChecksumMismatch,
    /// A section's checksum does not match its payload.
    SectionChecksumMismatch {
        /// Section kind whose payload failed verification.
        kind: u32,
    },
    /// A section this reader does not know, not marked optional.
    UnknownRequiredSection {
        /// The unknown kind.
        kind: u32,
    },
    /// A section the decode requires is absent.
    MissingSection {
        /// The absent kind.
        kind: u32,
    },
    /// Structurally well-formed bytes that violate the format contract
    /// (bad flags, misaligned offsets, invalid CSR, ...).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            SnapshotError::UnsupportedMajor { found, supported } => {
                write!(
                    f,
                    "snapshot major version {found} (this build reads {supported})"
                )
            }
            SnapshotError::Truncated {
                context,
                needed,
                have,
            } => write!(f, "truncated {context}: need {needed} bytes, have {have}"),
            SnapshotError::HeaderChecksumMismatch => write!(f, "header checksum mismatch"),
            SnapshotError::SectionChecksumMismatch { kind } => {
                write!(f, "checksum mismatch in section kind {kind}")
            }
            SnapshotError::UnknownRequiredSection { kind } => {
                write!(f, "unknown required section kind {kind}")
            }
            SnapshotError::MissingSection { kind } => {
                write!(f, "required section kind {kind} is missing")
            }
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64 over `bytes` — dependency-free integrity check.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends a little-endian u32 (the format's integer codec — shared
/// with the attribute-section writer in `kr_similarity::snapshot`).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

/// Reads the little-endian u32 at byte offset `at`.
///
/// # Panics
/// Panics when fewer than four bytes remain — callers bound-check first.
pub fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

/// Reads the little-endian u64 at byte offset `at` (same contract as
/// [`get_u32`]).
pub fn get_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

/// Encodes u64 values as a little-endian section payload.
pub fn u64s_to_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        put_u64(&mut out, v);
    }
    out
}

/// Encodes u32 values as a little-endian section payload.
pub fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        put_u32(&mut out, v);
    }
    out
}

/// Decodes a little-endian u64 section payload.
pub fn bytes_to_u64s(bytes: &[u8], context: &'static str) -> Result<Vec<u64>, SnapshotError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SnapshotError::Malformed(format!(
            "{context}: length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    Ok(bytes.chunks_exact(8).map(|c| get_u64(c, 0)).collect())
}

/// Decodes a little-endian u32 section payload.
pub fn bytes_to_u32s(bytes: &[u8], context: &'static str) -> Result<Vec<u32>, SnapshotError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(SnapshotError::Malformed(format!(
            "{context}: length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    Ok(bytes.chunks_exact(4).map(|c| get_u32(c, 0)).collect())
}

/// Accumulates sections, then writes the whole container in one
/// sequential pass. Output is deterministic byte for byte — the golden
/// fixtures pin it.
pub struct SnapshotWriter {
    version_minor: u16,
    sections: Vec<(u32, u32, Vec<u8>)>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

impl SnapshotWriter {
    /// An empty writer at the current format version.
    pub fn new() -> Self {
        SnapshotWriter {
            version_minor: VERSION_MINOR,
            sections: Vec::new(),
        }
    }

    /// Overrides the minor version written (used by forward-compat tests
    /// to craft "file from the future" bytes).
    pub fn with_version_minor(mut self, minor: u16) -> Self {
        self.version_minor = minor;
        self
    }

    /// Appends a section. Order is preserved in the file.
    pub fn add_section(&mut self, kind: u32, flags: u32, payload: Vec<u8>) {
        self.sections.push((kind, flags, payload));
    }

    /// Serializes the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let count = self.sections.len();
        let table_end = (HEADER_LEN + count * SECTION_ENTRY_LEN) as u64;
        // Lay out payload offsets first (aligned, in order).
        let mut offsets = Vec::with_capacity(count);
        let mut cursor = table_end.next_multiple_of(SECTION_ALIGN);
        for (_, _, payload) in &self.sections {
            offsets.push(cursor);
            cursor = (cursor + payload.len() as u64).next_multiple_of(SECTION_ALIGN);
        }
        let total_len = self
            .sections
            .last()
            .map(|(_, _, p)| offsets[count - 1] + p.len() as u64)
            .unwrap_or(table_end);

        let mut out = Vec::with_capacity(total_len as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        out.extend_from_slice(&self.version_minor.to_le_bytes());
        put_u32(&mut out, 0); // header flags, none defined
        put_u32(&mut out, count as u32);
        put_u64(&mut out, total_len);
        let header_checksum = fnv1a64(&out[..24]);
        put_u64(&mut out, header_checksum);
        debug_assert_eq!(out.len(), HEADER_LEN);

        for (i, (kind, flags, payload)) in self.sections.iter().enumerate() {
            put_u32(&mut out, *kind);
            put_u32(&mut out, *flags);
            put_u64(&mut out, offsets[i]);
            put_u64(&mut out, payload.len() as u64);
            put_u64(&mut out, fnv1a64(payload));
        }
        for (i, (_, _, payload)) in self.sections.iter().enumerate() {
            out.resize(offsets[i] as usize, 0); // alignment padding
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len() as u64, total_len);
        out
    }

    /// Writes the container to `writer` in one sequential pass.
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<(), SnapshotError> {
        writer.write_all(&self.to_bytes())?;
        writer.flush()?;
        Ok(())
    }
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Section kind (see [`section`]).
    pub kind: u32,
    /// Section flags ([`SECTION_FLAG_OPTIONAL`]).
    pub flags: u32,
    offset: u64,
    len: u64,
}

/// A verified, loaded snapshot container. Owns the file bytes once and
/// hands out borrowed payload slices — decoding a section never copies
/// the container (the same access pattern a future `mmap`-backed reader
/// will keep).
pub struct Snapshot {
    bytes: Vec<u8>,
    version_minor: u16,
    sections: Vec<SectionInfo>,
}

impl Snapshot {
    /// Parses and fully verifies a snapshot: magic, version, header
    /// checksum, section-table bounds, alignment, and every known
    /// section's payload checksum. Typed errors, never panics.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapshotError> {
        let have = bytes.len() as u64;
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                context: "header",
                needed: HEADER_LEN as u64,
                have,
            });
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic {
                found: [bytes[0], bytes[1], bytes[2], bytes[3]],
            });
        }
        let major = get_u16(&bytes, 4);
        if major != VERSION_MAJOR {
            return Err(SnapshotError::UnsupportedMajor {
                found: major,
                supported: VERSION_MAJOR,
            });
        }
        let minor = get_u16(&bytes, 6);
        if get_u64(&bytes, 24) != fnv1a64(&bytes[..24]) {
            return Err(SnapshotError::HeaderChecksumMismatch);
        }
        let flags = get_u32(&bytes, 8);
        if flags != 0 {
            return Err(SnapshotError::Malformed(format!(
                "unknown header flags {flags:#x}"
            )));
        }
        let count = get_u32(&bytes, 12) as usize;
        let total_len = get_u64(&bytes, 16);
        if total_len > have {
            return Err(SnapshotError::Truncated {
                context: "file body",
                needed: total_len,
                have,
            });
        }
        if total_len < have {
            // Not truncation — the opposite (an interrupted rewrite or a
            // concatenation); say so instead of reporting a "truncated"
            // file that is too long.
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes beyond the declared total length {total_len}",
                have - total_len
            )));
        }
        let table_end = HEADER_LEN as u64 + (count as u64) * SECTION_ENTRY_LEN as u64;
        if table_end > have {
            return Err(SnapshotError::Truncated {
                context: "section table",
                needed: table_end,
                have,
            });
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let info = SectionInfo {
                kind: get_u32(&bytes, at),
                flags: get_u32(&bytes, at + 4),
                offset: get_u64(&bytes, at + 8),
                len: get_u64(&bytes, at + 16),
            };
            if !info.offset.is_multiple_of(SECTION_ALIGN) {
                return Err(SnapshotError::Malformed(format!(
                    "section kind {} payload at {} is not {}-byte aligned",
                    info.kind, info.offset, SECTION_ALIGN
                )));
            }
            if info.offset < table_end {
                return Err(SnapshotError::Malformed(format!(
                    "section kind {} payload at {} overlaps the section table",
                    info.kind, info.offset
                )));
            }
            let end = info.offset.checked_add(info.len).ok_or_else(|| {
                SnapshotError::Malformed(format!(
                    "section kind {} offset + len overflows",
                    info.kind
                ))
            })?;
            if end > have {
                return Err(SnapshotError::Truncated {
                    context: "section payload",
                    needed: end,
                    have,
                });
            }
            let payload = &bytes[info.offset as usize..end as usize];
            let stored = get_u64(&bytes, at + 24);
            if fnv1a64(payload) != stored {
                return Err(SnapshotError::SectionChecksumMismatch { kind: info.kind });
            }
            sections.push(info);
        }
        Ok(Snapshot {
            bytes,
            version_minor: minor,
            sections,
        })
    }

    /// Reads and verifies a snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_bytes(std::fs::read(path)?)
    }

    /// Minor version the file was written with.
    pub fn version_minor(&self) -> u16 {
        self.version_minor
    }

    /// The parsed section table, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Borrowed payload of the first section of `kind`, if present.
    pub fn section(&self, kind: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| &self.bytes[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// Payload of `kind`, or [`SnapshotError::MissingSection`].
    pub fn require(&self, kind: u32) -> Result<&[u8], SnapshotError> {
        self.section(kind)
            .ok_or(SnapshotError::MissingSection { kind })
    }

    /// Enforces the forward-compat contract against the caller's set of
    /// understood kinds: an unknown section is skippable only when
    /// flagged optional. Returns the kinds that were skipped.
    pub fn check_unknown_sections(&self, known: &[u32]) -> Result<Vec<u32>, SnapshotError> {
        let mut skipped = Vec::new();
        for s in &self.sections {
            if known.contains(&s.kind) {
                continue;
            }
            if s.flags & SECTION_FLAG_OPTIONAL == 0 {
                return Err(SnapshotError::UnknownRequiredSection { kind: s.kind });
            }
            skipped.push(s.kind);
        }
        Ok(skipped)
    }
}

/// Appends the graph sections (CSR offsets + neighbor arena +
/// original-id map) to `writer`.
pub fn add_graph_sections(writer: &mut SnapshotWriter, graph: &Graph, original_ids: &[u64]) {
    let (offsets, neighbors) = graph.csr_parts();
    let offsets64: Vec<u64> = offsets.iter().map(|&o| o as u64).collect();
    writer.add_section(section::GRAPH_OFFSETS, 0, u64s_to_bytes(&offsets64));
    writer.add_section(section::GRAPH_NEIGHBORS, 0, u32s_to_bytes(neighbors));
    writer.add_section(section::ORIGINAL_IDS, 0, u64s_to_bytes(original_ids));
}

/// Decodes and validates the graph sections of a verified snapshot.
pub fn read_graph_sections(snapshot: &Snapshot) -> Result<LoadedGraph, SnapshotError> {
    let offsets64 = bytes_to_u64s(snapshot.require(section::GRAPH_OFFSETS)?, "graph offsets")?;
    let neighbors = bytes_to_u32s(
        snapshot.require(section::GRAPH_NEIGHBORS)?,
        "graph neighbors",
    )?;
    let original_ids = bytes_to_u64s(snapshot.require(section::ORIGINAL_IDS)?, "original ids")?;
    let mut offsets = Vec::with_capacity(offsets64.len());
    for o in offsets64 {
        if o > usize::MAX as u64 {
            return Err(SnapshotError::Malformed(format!(
                "graph offset {o} exceeds this platform's address space"
            )));
        }
        offsets.push(o as usize);
    }
    let graph = Graph::from_csr_parts(offsets, neighbors).map_err(SnapshotError::Malformed)?;
    if original_ids.len() != graph.num_vertices() {
        return Err(SnapshotError::Malformed(format!(
            "original-id map covers {} vertices, graph has {}",
            original_ids.len(),
            graph.num_vertices()
        )));
    }
    let id_map = crate::io::build_id_map(&original_ids);
    Ok(LoadedGraph {
        graph,
        original_ids,
        id_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sample_graph() -> (Graph, Vec<u64>) {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        (g, vec![100, 200, 300, 7])
    }

    fn sample_bytes() -> Vec<u8> {
        let (g, ids) = sample_graph();
        let mut w = SnapshotWriter::new();
        add_graph_sections(&mut w, &g, &ids);
        w.to_bytes()
    }

    #[test]
    fn container_roundtrip() {
        let (g, ids) = sample_graph();
        let snap = Snapshot::from_bytes(sample_bytes()).unwrap();
        assert_eq!(snap.version_minor(), VERSION_MINOR);
        assert_eq!(snap.sections().len(), 3);
        let loaded = read_graph_sections(&snap).unwrap();
        assert_eq!(loaded.graph, g);
        assert_eq!(loaded.original_ids, ids);
    }

    #[test]
    fn writer_is_deterministic() {
        assert_eq!(sample_bytes(), sample_bytes());
    }

    #[test]
    fn sections_are_aligned() {
        let snap = Snapshot::from_bytes(sample_bytes()).unwrap();
        for s in snap.sections() {
            assert_eq!(s.offset % SECTION_ALIGN, 0);
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn major_version_mismatch_detected() {
        let mut bytes = sample_bytes();
        bytes[4] = 99; // major LE low byte
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::UnsupportedMajor { found: 99, .. })
        ));
    }

    #[test]
    fn header_corruption_detected_by_checksum() {
        // Flip the minor version: structurally plausible, caught only by
        // the header checksum.
        let mut bytes = sample_bytes();
        bytes[6] ^= 1;
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::HeaderChecksumMismatch)
        ));
    }

    #[test]
    fn payload_corruption_detected_by_section_checksum() {
        let mut bytes = sample_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::SectionChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_bytes();
        let cut = bytes.len() / 2;
        assert!(matches!(
            Snapshot::from_bytes(bytes[..cut].to_vec()),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_reported_as_oversize_not_truncation() {
        let mut bytes = sample_bytes();
        bytes.push(0);
        match Snapshot::from_bytes(bytes) {
            Err(SnapshotError::Malformed(msg)) => {
                assert!(msg.contains("trailing"), "{msg}")
            }
            Err(other) => panic!("expected Malformed(trailing bytes), got {other:?}"),
            Ok(_) => panic!("oversize file must not load"),
        }
    }

    #[test]
    fn unknown_optional_section_skipped_required_rejected() {
        let (g, ids) = sample_graph();
        let mut w = SnapshotWriter::new();
        add_graph_sections(&mut w, &g, &ids);
        w.add_section(909, SECTION_FLAG_OPTIONAL, vec![1, 2, 3]);
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        let known = [
            section::GRAPH_OFFSETS,
            section::GRAPH_NEIGHBORS,
            section::ORIGINAL_IDS,
        ];
        assert_eq!(snap.check_unknown_sections(&known).unwrap(), vec![909]);

        let mut w = SnapshotWriter::new();
        add_graph_sections(&mut w, &g, &ids);
        w.add_section(909, 0, vec![1, 2, 3]);
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            snap.check_unknown_sections(&known),
            Err(SnapshotError::UnknownRequiredSection { kind: 909 })
        ));
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = SnapshotWriter::new().to_bytes();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        assert!(snap.sections().is_empty());
        assert!(matches!(
            snap.require(section::GRAPH_OFFSETS),
            Err(SnapshotError::MissingSection { .. })
        ));
    }
}
