//! SNAP-style edge-list I/O.
//!
//! The paper's Gowalla/Brightkite/Pokec graphs come from SNAP as
//! whitespace-separated edge lists with `#` comment lines. We read and write
//! that format so real datasets can replace the synthetic presets.

use crate::graph::{Graph, GraphBuilder, VertexId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line did not contain two integer endpoints.
    Parse { line_no: usize, line: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line_no, line } => {
                write!(f, "parse error at line {line_no}: {line:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Result of loading an edge list: the graph plus the mapping from original
/// (possibly sparse) ids to dense `0..n` ids.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The loaded graph with densified vertex ids.
    pub graph: Graph,
    /// `original_ids[v]` is the id vertex `v` had in the file.
    pub original_ids: Vec<u64>,
}

/// Reads a whitespace-separated edge list with `#` comments from any reader.
/// Vertex ids in the file may be sparse; they are densified in first-seen
/// order.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut id_map: HashMap<u64, VertexId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        let (a, b): (u64, u64) = match (a.parse(), b.parse()) {
            (Ok(a), Ok(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        let mut dense = |orig: u64| -> VertexId {
            *id_map.entry(orig).or_insert_with(|| {
                let id = original_ids.len() as VertexId;
                original_ids.push(orig);
                id
            })
        };
        let (u, v) = (dense(a), dense(b));
        edges.push((u, v));
    }
    let mut b = GraphBuilder::with_capacity(original_ids.len(), edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(LoadedGraph {
        graph: b.build(),
        original_ids,
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<LoadedGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as a SNAP-style edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Undirected graph: {} nodes, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_basic_edge_list() {
        let data = "# comment\n0 1\n1 2\n\n2 0\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
    }

    #[test]
    fn densifies_sparse_ids() {
        let data = "100 200\n200 300\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.original_ids, vec![100, 200, 300]);
    }

    #[test]
    fn parse_error_reported_with_line() {
        let data = "0 1\nnot numbers\n";
        match read_edge_list(data.as_bytes()) {
            Err(IoError::Parse { line_no, .. }) => assert_eq!(line_no, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        assert_eq!(loaded.graph.num_edges(), 4);
        assert_eq!(loaded.graph.num_vertices(), 4);
    }

    #[test]
    fn tabs_and_duplicate_edges() {
        let data = "0\t1\n1\t0\n0\t1\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }
}
