//! SNAP-style edge-list I/O.
//!
//! The paper's Gowalla/Brightkite/Pokec graphs come from SNAP as
//! whitespace-separated edge lists with `#` comment lines. Two readers
//! share one parsing contract:
//!
//! * [`read_edge_list`] — the original line-buffered reader, kept as the
//!   behavioral reference (property tests pin the streaming reader to it);
//! * [`read_edge_list_streaming`] — the canonical ingestion path: fixed
//!   64 KiB chunks pulled through the gzip-agnostic [`ByteSource`] trait,
//!   lines reassembled across chunk boundaries, progress counters
//!   reported as the file streams by. Memory scales with the *graph*
//!   (id map + edge list), never with line length or file size.
//!
//! Both densify sparse file ids in first-seen order and fail with typed
//! [`IoError`]s instead of truncating: an input with no data lines is
//! [`IoError::Empty`], and more distinct vertices than [`VertexId`] can
//! number is [`IoError::TooManyVertices`] (previously a silent `as` cast).

use crate::graph::{Graph, GraphBuilder, VertexId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line did not contain two integer endpoints.
    Parse { line_no: usize, line: String },
    /// The input contained no data lines at all (empty file, or comments
    /// and blank lines only) — loading it would produce a zero-vertex
    /// graph, which is never what ingesting a dataset means.
    Empty,
    /// Densification ran out of [`VertexId`] space: the input has more
    /// distinct vertex ids than `limit`. Before this variant existed the
    /// dense id was produced by a silent `as` cast that wrapped around.
    TooManyVertices { line_no: usize, limit: usize },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line_no, line } => {
                write!(f, "parse error at line {line_no}: {line:?}")
            }
            IoError::Empty => write!(f, "edge list holds no data lines"),
            IoError::TooManyVertices { line_no, limit } => write!(
                f,
                "line {line_no} introduces vertex number {limit} but vertex ids only count to {}",
                limit.saturating_sub(1)
            ),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Largest number of distinct vertices an edge list may introduce: dense
/// ids are [`VertexId`]s, numbered from 0.
pub const MAX_DENSE_VERTICES: usize = VertexId::MAX as usize + 1;

/// Result of loading an edge list: the graph plus the mapping from original
/// (possibly sparse) ids to dense `0..n` ids — in both directions.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The loaded graph with densified vertex ids.
    pub graph: Graph,
    /// `original_ids[v]` is the id vertex `v` had in the file.
    pub original_ids: Vec<u64>,
    /// The inverse map, original file id → dense id: the join key the
    /// attribute loaders use (`kr_similarity::io::read_points_mapped`
    /// and friends) to attach sparse-id attribute rows to the densified
    /// graph. The loaders build this during densification anyway, so
    /// carrying it costs nothing.
    pub id_map: HashMap<u64, VertexId>,
}

/// Builds the original-id → dense-id map for an id list (used where a
/// `LoadedGraph` is reconstructed from parts, e.g. the snapshot reader).
pub fn build_id_map(original_ids: &[u64]) -> HashMap<u64, VertexId> {
    original_ids
        .iter()
        .enumerate()
        .map(|(dense, &orig)| (orig, dense as VertexId))
        .collect()
}

/// First-seen-order densifier with a typed capacity error.
struct Densifier {
    id_map: HashMap<u64, VertexId>,
    original_ids: Vec<u64>,
    limit: usize,
}

impl Densifier {
    fn new(limit: usize) -> Self {
        Densifier {
            id_map: HashMap::new(),
            original_ids: Vec::new(),
            limit,
        }
    }

    fn dense(&mut self, orig: u64, line_no: usize) -> Result<VertexId, IoError> {
        if let Some(&id) = self.id_map.get(&orig) {
            return Ok(id);
        }
        if self.original_ids.len() >= self.limit {
            return Err(IoError::TooManyVertices {
                line_no,
                limit: self.limit,
            });
        }
        let id = self.original_ids.len() as VertexId;
        self.original_ids.push(orig);
        self.id_map.insert(orig, id);
        Ok(id)
    }
}

/// Parses one data line into its two endpoint ids. `Ok(None)` means the
/// line carries no data (blank or `#` comment). Tokens beyond the second
/// are ignored, matching SNAP files with trailing columns.
fn parse_edge_line(t: &str, line_no: usize) -> Result<Option<(u64, u64)>, IoError> {
    if t.is_empty() || t.starts_with('#') {
        return Ok(None);
    }
    let mut it = t.split_whitespace();
    let (a, b) = match (it.next(), it.next()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(IoError::Parse {
                line_no,
                line: t.to_string(),
            })
        }
    };
    match (a.parse(), b.parse()) {
        (Ok(a), Ok(b)) => Ok(Some((a, b))),
        _ => Err(IoError::Parse {
            line_no,
            line: t.to_string(),
        }),
    }
}

/// Reads a whitespace-separated edge list with `#` comments from any reader.
/// Vertex ids in the file may be sparse; they are densified in first-seen
/// order.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, IoError> {
    read_edge_list_with_limit(reader, MAX_DENSE_VERTICES)
}

fn read_edge_list_with_limit<R: Read>(reader: R, limit: usize) -> Result<LoadedGraph, IoError> {
    let mut reader = BufReader::new(reader);
    let mut densifier = Densifier::new(limit);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut saw_data = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        if let Some((a, b)) = parse_edge_line(line.trim(), line_no)? {
            saw_data = true;
            let u = densifier.dense(a, line_no)?;
            let v = densifier.dense(b, line_no)?;
            edges.push((u, v));
        }
    }
    if !saw_data {
        return Err(IoError::Empty);
    }
    let mut b = GraphBuilder::with_capacity(densifier.original_ids.len(), edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(LoadedGraph {
        graph: b.build(),
        original_ids: densifier.original_ids,
        id_map: densifier.id_map,
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<LoadedGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// A chunked byte producer the streaming loader pulls from.
///
/// The blanket impl covers every [`std::io::Read`] — a plain `File`, an
/// in-memory slice, or (once a flate dependency exists) a gzip decoder
/// wrapping either. The loader never assumes seekability or a known
/// length, so compressed sources need no special handling.
pub trait ByteSource {
    /// Fills `buf` with the next chunk; `Ok(0)` is end of stream.
    fn read_chunk(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
}

impl<R: Read> ByteSource for R {
    fn read_chunk(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.read(buf) {
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }
}

/// Progress counters the streaming loader updates as bytes arrive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadProgress {
    /// Raw bytes consumed from the source.
    pub bytes: u64,
    /// Physical lines seen (including comments and blanks).
    pub lines: u64,
    /// Edge records parsed (before dedup).
    pub edges: u64,
    /// Distinct vertices densified so far.
    pub vertices: u64,
}

/// Chunk size of the streaming loader (one `read_chunk` request).
const STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// Streaming counterpart of [`read_edge_list`]: same grammar, same
/// densification order, same typed errors — pinned by property tests —
/// but fed by fixed-size chunks through [`ByteSource`] with no
/// line-buffered reader in between.
pub fn read_edge_list_streaming<S: ByteSource>(source: S) -> Result<LoadedGraph, IoError> {
    read_edge_list_streaming_with(source, u64::MAX, |_| {}).map(|(loaded, _)| loaded)
}

/// [`read_edge_list_streaming`] with progress reporting: `on_progress`
/// fires after every `progress_every_edges` edge records (and the final
/// counters are returned alongside the graph).
pub fn read_edge_list_streaming_with<S: ByteSource>(
    mut source: S,
    progress_every_edges: u64,
    mut on_progress: impl FnMut(&LoadProgress),
) -> Result<(LoadedGraph, LoadProgress), IoError> {
    read_streaming_impl(
        &mut source,
        MAX_DENSE_VERTICES,
        progress_every_edges,
        &mut on_progress,
    )
}

/// Streaming load from a file path.
pub fn read_edge_list_streaming_file(path: impl AsRef<Path>) -> Result<LoadedGraph, IoError> {
    read_edge_list_streaming(std::fs::File::open(path)?)
}

fn read_streaming_impl<S: ByteSource>(
    source: &mut S,
    limit: usize,
    progress_every_edges: u64,
    on_progress: &mut dyn FnMut(&LoadProgress),
) -> Result<(LoadedGraph, LoadProgress), IoError> {
    let mut densifier = Densifier::new(limit);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut progress = LoadProgress::default();
    let mut next_report = progress_every_edges.max(1);
    let mut buf = vec![0u8; STREAM_CHUNK_BYTES];
    // Holds the partial line a chunk boundary cut through; only boundary
    // lines are ever copied, complete in-chunk lines parse in place.
    let mut carry: Vec<u8> = Vec::new();
    let mut line_no = 0usize;

    let process = |bytes: &[u8],
                   line_no: usize,
                   densifier: &mut Densifier,
                   edges: &mut Vec<(VertexId, VertexId)>,
                   progress: &mut LoadProgress|
     -> Result<(), IoError> {
        // Same error class as the reference reader: `BufRead::read_line`
        // surfaces invalid UTF-8 as an InvalidData i/o error, so the
        // streaming path must too (the readers share one contract).
        let text = std::str::from_utf8(bytes).map_err(|_| {
            IoError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("stream did not contain valid UTF-8 (line {line_no})"),
            ))
        })?;
        if let Some((a, b)) = parse_edge_line(text.trim(), line_no)? {
            let u = densifier.dense(a, line_no)?;
            let v = densifier.dense(b, line_no)?;
            edges.push((u, v));
            progress.edges += 1;
        }
        progress.vertices = densifier.original_ids.len() as u64;
        Ok(())
    };

    loop {
        let n = source.read_chunk(&mut buf)?;
        if n == 0 {
            break;
        }
        progress.bytes += n as u64;
        let mut rest = &buf[..n];
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..];
            line_no += 1;
            progress.lines += 1;
            if carry.is_empty() {
                process(head, line_no, &mut densifier, &mut edges, &mut progress)?;
            } else {
                carry.extend_from_slice(head);
                process(&carry, line_no, &mut densifier, &mut edges, &mut progress)?;
                carry.clear();
            }
            if progress.edges >= next_report {
                on_progress(&progress);
                next_report = progress.edges.saturating_add(progress_every_edges.max(1));
            }
        }
        carry.extend_from_slice(rest);
    }
    if !carry.is_empty() {
        line_no += 1;
        progress.lines += 1;
        process(&carry, line_no, &mut densifier, &mut edges, &mut progress)?;
    }
    if progress.edges == 0 {
        return Err(IoError::Empty);
    }
    on_progress(&progress);

    let mut b = GraphBuilder::with_capacity(densifier.original_ids.len(), edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok((
        LoadedGraph {
            graph: b.build(),
            original_ids: densifier.original_ids,
            id_map: densifier.id_map,
        },
        progress,
    ))
}

/// Writes the graph as a SNAP-style edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Undirected graph: {} nodes, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_basic_edge_list() {
        let data = "# comment\n0 1\n1 2\n\n2 0\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
    }

    #[test]
    fn densifies_sparse_ids() {
        let data = "100 200\n200 300\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.original_ids, vec![100, 200, 300]);
        assert_eq!(loaded.id_map[&300], 2);
    }

    #[test]
    fn parse_error_reported_with_line() {
        let data = "0 1\nnot numbers\n";
        match read_edge_list(data.as_bytes()) {
            Err(IoError::Parse { line_no, .. }) => assert_eq!(line_no, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        assert_eq!(loaded.graph.num_edges(), 4);
        assert_eq!(loaded.graph.num_vertices(), 4);
    }

    #[test]
    fn tabs_and_duplicate_edges() {
        let data = "0\t1\n1\t0\n0\t1\n";
        let loaded = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        for data in ["", "# only a comment\n", "\n\n", "# a\n\n# b"] {
            assert!(
                matches!(read_edge_list(data.as_bytes()), Err(IoError::Empty)),
                "{data:?}"
            );
            assert!(
                matches!(
                    read_edge_list_streaming(data.as_bytes()),
                    Err(IoError::Empty)
                ),
                "{data:?} (streaming)"
            );
        }
    }

    #[test]
    fn vertex_overflow_is_a_typed_error() {
        // Third distinct id with room for only two.
        let data = "10 20\n10 30\n";
        match read_edge_list_with_limit(data.as_bytes(), 2) {
            Err(IoError::TooManyVertices { line_no, limit }) => {
                assert_eq!((line_no, limit), (2, 2));
            }
            other => panic!("expected TooManyVertices, got {other:?}"),
        }
        let mut src = data.as_bytes();
        match read_streaming_impl(&mut src, 2, u64::MAX, &mut |_| {}) {
            Err(IoError::TooManyVertices { line_no, limit }) => {
                assert_eq!((line_no, limit), (2, 2));
            }
            other => panic!("expected TooManyVertices, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_an_io_error_in_both_readers() {
        let data: &[u8] = b"0 1\n\xFF\xFE not text\n";
        for result in [read_edge_list(data), read_edge_list_streaming(data)] {
            match result {
                Err(IoError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::InvalidData)
                }
                other => panic!("expected InvalidData i/o error, got {other:?}"),
            }
        }
    }

    #[test]
    fn streaming_matches_reference_reader() {
        let data = "# header\r\n100   200\r\n200\t300\n\n300 100\n7 100 trailing cols\n";
        let a = read_edge_list(data.as_bytes()).unwrap();
        let b = read_edge_list_streaming(data.as_bytes()).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.original_ids, b.original_ids);
    }

    #[test]
    fn streaming_handles_chunk_boundary_lines() {
        // One-byte chunks force every line to span chunk boundaries.
        struct OneByte<'a>(&'a [u8]);
        impl ByteSource for OneByte<'_> {
            fn read_chunk(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.split_first() {
                    Some((&b, rest)) => {
                        buf[0] = b;
                        self.0 = rest;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        let data = "# c\n1000000 2000000\n2000000 3000000";
        let mut src = OneByte(data.as_bytes());
        let (loaded, progress) =
            read_streaming_impl(&mut src, MAX_DENSE_VERTICES, u64::MAX, &mut |_| {}).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(loaded.original_ids, vec![1_000_000, 2_000_000, 3_000_000]);
        assert_eq!(progress.bytes, data.len() as u64);
        assert_eq!(progress.lines, 3);
        assert_eq!(progress.edges, 2);
        assert_eq!(progress.vertices, 3);
    }

    #[test]
    fn streaming_progress_fires() {
        let data = "0 1\n1 2\n2 3\n3 4\n";
        let mut reports = Vec::new();
        let (_, final_progress) =
            read_edge_list_streaming_with(data.as_bytes(), 2, |p| reports.push(p.edges)).unwrap();
        assert_eq!(final_progress.edges, 4);
        // One report at >= 2 edges, one at >= 4, plus the final flush.
        assert!(reports.len() >= 2, "{reports:?}");
        assert_eq!(*reports.last().unwrap(), 4);
    }
}
