//! # kr-graph
//!
//! Graph substrate for the `(k,r)`-core reproduction: a compact undirected
//! graph representation together with the classic graph machinery the paper's
//! algorithms depend on:
//!
//! * [`Graph`] — an immutable, CSR-backed undirected simple graph.
//! * [`Csr`] — reusable offsets-plus-arena storage for per-vertex lists
//!   (the `kr-core` search arena and the dissimilarity lists are built on
//!   it).
//! * [`GraphBuilder`] — incremental construction with duplicate/self-loop
//!   elimination.
//! * [`kcore`] — the Batagelj–Zaversnik linear core decomposition and k-core
//!   extraction (Algorithm 1 line 3 of the paper, Theorem 2 pruning,
//!   and both core-based size upper bounds).
//! * [`components`] — connected components / connectivity checks.
//! * [`maintain`] — incremental coreness maintenance under edge updates
//!   (subcore-bounded traversal repair) plus the mutable
//!   [`AdjacencyList`] companion to the immutable CSR graph.
//! * [`coloring`] — greedy coloring used by the color-based upper bound.
//! * [`order`] — degeneracy ordering (used by clique enumeration and
//!   coloring heuristics).
//! * [`io`] — SNAP-style edge-list reading/writing (line-buffered reference
//!   reader plus the chunked streaming loader real ingestion uses) so that
//!   real datasets can be dropped in for the synthetic ones.
//! * [`snapshot`] — the `.krb` binary snapshot container: checksummed,
//!   64-byte-aligned little-endian sections holding the densified CSR
//!   graph, original-id map, and (via `kr_similarity`) attributes.
//! * [`subgraph`] — induced-subgraph extraction with vertex renumbering.

pub mod coloring;
pub mod components;
pub mod csr;
pub mod graph;
pub mod io;
pub mod kcore;
pub mod maintain;
pub mod order;
pub mod snapshot;
pub mod subgraph;

pub use coloring::{greedy_coloring, greedy_coloring_in_order};
pub use components::{connected_components, is_connected, ComponentLabels};
pub use csr::Csr;
pub use graph::{Graph, GraphBuilder, VertexId};
pub use io::{
    read_edge_list, read_edge_list_file, read_edge_list_streaming, read_edge_list_streaming_file,
    read_edge_list_streaming_with, ByteSource, IoError, LoadProgress, LoadedGraph,
};
pub use kcore::{
    core_decomposition, k_core, k_core_of_subset, k_core_on, k_core_parallel, CoreDecomposition,
};
pub use maintain::{coreness_after_insert, coreness_after_remove, AdjacencyList, NeighborSource};
pub use order::degeneracy_order;
pub use snapshot::{Snapshot, SnapshotError, SnapshotWriter};
pub use subgraph::InducedSubgraph;
