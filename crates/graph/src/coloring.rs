//! Greedy graph coloring.
//!
//! Section 6.2 of the paper uses a color-based upper bound for the maximum
//! (k,r)-core size: a k-clique of the similarity graph needs k colors, so
//! the number of colors used by any proper coloring of the similarity graph
//! bounds the clique number from above. We implement first-fit greedy
//! coloring with pluggable vertex order; reverse degeneracy order guarantees
//! at most `degeneracy + 1` colors.

use crate::graph::{Graph, VertexId};
use crate::order::degeneracy_order;

/// Greedy first-fit coloring in reverse degeneracy order.
///
/// Returns `(colors, num_colors)` with `colors[v]` in `0..num_colors`.
pub fn greedy_coloring(g: &Graph) -> (Vec<u32>, u32) {
    let (mut order, _) = degeneracy_order(g);
    order.reverse();
    greedy_coloring_in_order(g, &order)
}

/// Greedy first-fit coloring in the given vertex order.
///
/// `order` must contain each vertex of `g` exactly once.
pub fn greedy_coloring_in_order(g: &Graph, order: &[VertexId]) -> (Vec<u32>, u32) {
    let n = g.num_vertices();
    debug_assert_eq!(order.len(), n);
    let mut colors = vec![u32::MAX; n];
    let mut used = Vec::new(); // scratch: colors seen on neighbors
    let mut num_colors = 0u32;
    for &v in order {
        used.clear();
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if c != u32::MAX {
                used.push(c);
            }
        }
        used.sort_unstable();
        used.dedup();
        // First gap in the sorted list of used colors.
        let mut c = 0u32;
        for &uc in &used {
            if uc == c {
                c += 1;
            } else if uc > c {
                break;
            }
        }
        colors[v as usize] = c;
        num_colors = num_colors.max(c + 1);
    }
    (colors, num_colors)
}

/// Validates that `colors` is a proper coloring of `g`.
pub fn is_proper_coloring(g: &Graph, colors: &[u32]) -> bool {
    g.edges()
        .all(|(u, v)| colors[u as usize] != colors[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn clique(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn clique_needs_n_colors() {
        let g = clique(5);
        let (colors, k) = greedy_coloring(&g);
        assert_eq!(k, 5);
        assert!(is_proper_coloring(&g, &colors));
    }

    #[test]
    fn bipartite_needs_two() {
        // 4-cycle is bipartite.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (colors, k) = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert_eq!(k, 2);
    }

    #[test]
    fn empty_graph_zero_colors() {
        let g = Graph::empty(0);
        let (_, k) = greedy_coloring(&g);
        assert_eq!(k, 0);
    }

    #[test]
    fn edgeless_graph_one_color() {
        let g = Graph::empty(4);
        let (colors, k) = greedy_coloring(&g);
        assert_eq!(k, 1);
        assert!(colors.iter().all(|&c| c == 0));
    }

    #[test]
    fn coloring_bounded_by_degeneracy_plus_one() {
        // Wheel graph W5: hub 0 connected to cycle 1-2-3-4-5. Degeneracy 3.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 1),
            ],
        );
        let (_, d) = degeneracy_order(&g);
        let (colors, k) = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert!(k <= d + 1);
    }

    #[test]
    fn custom_order_still_proper() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let order: Vec<VertexId> = (0..5).rev().collect();
        let (colors, k) = greedy_coloring_in_order(&g, &order);
        assert!(is_proper_coloring(&g, &colors));
        assert!(k >= 3); // contains a triangle 0-1-2? no: edges 0-1,1-2,0-2 yes triangle.
    }
}
