//! Degeneracy ordering.
//!
//! A degeneracy ordering repeatedly removes a minimum-degree vertex; it is a
//! by-product of core decomposition. Bron–Kerbosch over the outer loop in
//! degeneracy order gives the classic near-optimal maximal clique bound, and
//! greedy coloring in *reverse* degeneracy order uses at most
//! `degeneracy + 1` colors — useful for the color-based size upper bound.

use crate::graph::{Graph, VertexId};
use crate::kcore::core_decomposition;

/// Returns `(order, degeneracy)`: the peeling order of vertices (first
/// removed first) and the graph degeneracy (= maximum core number).
pub fn degeneracy_order(g: &Graph) -> (Vec<VertexId>, u32) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let decomp = core_decomposition(g);
    // A correct degeneracy order is obtained by re-running the bucketed
    // peel; reproduce it here with explicit removal order tracking.
    let mut deg: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max_deg = *deg.iter().max().unwrap();
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[deg[v]].push(v as VertexId);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = 0usize;
    while order.len() < n {
        // Find the lowest non-empty bucket; degrees only decrease, but a
        // vertex may appear in stale buckets — skip entries whose recorded
        // degree is out of date.
        while cur <= max_deg {
            match buckets[cur].pop() {
                Some(v) => {
                    if removed[v as usize] || deg[v as usize] != cur {
                        continue;
                    }
                    removed[v as usize] = true;
                    order.push(v);
                    for &u in g.neighbors(v) {
                        if !removed[u as usize] {
                            deg[u as usize] -= 1;
                            buckets[deg[u as usize]].push(u);
                            if deg[u as usize] < cur {
                                cur = deg[u as usize];
                            }
                        }
                    }
                    break;
                }
                None => cur += 1,
            }
        }
    }
    (order, decomp.max_core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degeneracy_of_clique() {
        let mut b = crate::graph::GraphBuilder::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 3);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 1);
        assert_eq!(order.len(), 5);
        // Property: when v is removed, its remaining degree is <= degeneracy.
        check_order_property(&g, &order, d);
    }

    #[test]
    fn order_property_on_mixed_graph() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 2);
        check_order_property(&g, &order, d);
    }

    #[test]
    fn empty_graph_order() {
        let (order, d) = degeneracy_order(&Graph::empty(0));
        assert!(order.is_empty());
        assert_eq!(d, 0);
    }

    /// When each vertex is removed, its degree among not-yet-removed
    /// vertices must be at most the degeneracy.
    fn check_order_property(g: &Graph, order: &[VertexId], d: u32) {
        let n = g.num_vertices();
        let mut removed = vec![false; n];
        for &v in order {
            let deg_rem = g
                .neighbors(v)
                .iter()
                .filter(|&&u| !removed[u as usize])
                .count();
            assert!(
                deg_rem as u32 <= d,
                "vertex {v} removed at degree {deg_rem} > {d}"
            );
            removed[v as usize] = true;
        }
        assert!(removed.iter().all(|&r| r));
    }
}
