//! Connected components and connectivity checks.
//!
//! Algorithm 1 processes each connected subgraph of the k-core separately;
//! (k,r)-cores are required to be connected, so leaf solutions of the search
//! are split into components as well.

use crate::graph::{Graph, VertexId};

/// Component labelling of a (sub)graph.
#[derive(Debug, Clone)]
pub struct ComponentLabels {
    /// `label[v]` is the component id of `v`, or `u32::MAX` if `v` is not in
    /// the labelled vertex set.
    pub label: Vec<u32>,
    /// Number of components found.
    pub count: usize,
}

impl ComponentLabels {
    /// Groups the labelled vertices by component, each group sorted.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &l) in self.label.iter().enumerate() {
            if l != u32::MAX {
                out[l as usize].push(v as VertexId);
            }
        }
        out
    }
}

/// Connected components of the whole graph (isolated vertices are their own
/// components). BFS, `O(n + m)`.
pub fn connected_components(g: &Graph) -> ComponentLabels {
    let all: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    connected_components_of_subset(g, &all)
}

/// Connected components of the subgraph induced by `subset`.
pub fn connected_components_of_subset(g: &Graph, subset: &[VertexId]) -> ComponentLabels {
    let n = g.num_vertices();
    let mut in_set = vec![false; n];
    for &v in subset {
        in_set[v as usize] = true;
    }
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for &s in subset {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = count;
        queue.push(s);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if in_set[u as usize] && label[u as usize] == u32::MAX {
                    label[u as usize] = count;
                    queue.push(u);
                }
            }
        }
        count += 1;
    }
    ComponentLabels {
        label,
        count: count as usize,
    }
}

/// True iff the subgraph induced by `subset` is connected (the empty set is
/// vacuously connected; a singleton is connected).
pub fn is_connected(g: &Graph, subset: &[VertexId]) -> bool {
    if subset.len() <= 1 {
        return true;
    }
    connected_components_of_subset(g, subset).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let cc = connected_components(&g);
        assert_eq!(cc.count, 2);
        let groups = cc.groups();
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3, 4]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = Graph::empty(3);
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3);
    }

    #[test]
    fn subset_components_ignore_outside_paths() {
        // 0-1-2 path; subset {0, 2} is disconnected (1 not in subset).
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let cc = connected_components_of_subset(&g, &[0, 2]);
        assert_eq!(cc.count, 2);
        assert!(!is_connected(&g, &[0, 2]));
        assert!(is_connected(&g, &[0, 1, 2]));
    }

    #[test]
    fn trivial_sets_connected() {
        let g = Graph::empty(3);
        assert!(is_connected(&g, &[]));
        assert!(is_connected(&g, &[1]));
        assert!(!is_connected(&g, &[0, 1]));
    }

    #[test]
    fn labels_outside_subset_are_max() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let cc = connected_components_of_subset(&g, &[0, 1]);
        assert_eq!(cc.label[2], u32::MAX);
        assert_eq!(cc.label[3], u32::MAX);
        assert_eq!(cc.count, 1);
    }
}
