//! Induced subgraphs with vertex renumbering.
//!
//! The (k,r)-core search operates on connected components of the
//! preprocessed k-core; renumbering each component to `0..n_local` lets the
//! search state use dense arrays instead of hash maps.

use crate::graph::{Graph, GraphBuilder, VertexId};

/// An induced subgraph with a bidirectional vertex mapping back to the
/// parent graph.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The renumbered subgraph (vertices `0..local_to_global.len()`).
    pub graph: Graph,
    /// `local_to_global[local]` = original vertex id.
    pub local_to_global: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Extracts the subgraph of `g` induced by `vertices` (need not be
    /// sorted; duplicates are not allowed).
    pub fn new(g: &Graph, vertices: &[VertexId]) -> Self {
        let mut local_to_global = vertices.to_vec();
        local_to_global.sort_unstable();
        debug_assert!(
            local_to_global.windows(2).all(|w| w[0] < w[1]),
            "duplicate vertices in induced subgraph"
        );
        let mut global_to_local = vec![u32::MAX; g.num_vertices()];
        for (i, &v) in local_to_global.iter().enumerate() {
            global_to_local[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(local_to_global.len());
        for (i, &v) in local_to_global.iter().enumerate() {
            for &u in g.neighbors(v) {
                let lu = global_to_local[u as usize];
                if lu != u32::MAX && lu > i as u32 {
                    b.add_edge(i as u32, lu);
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            local_to_global,
        }
    }

    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.local_to_global.len()
    }

    /// True iff the subgraph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.local_to_global.is_empty()
    }

    /// Maps a local vertex id back to the parent graph.
    #[inline]
    pub fn to_global(&self, local: VertexId) -> VertexId {
        self.local_to_global[local as usize]
    }

    /// Maps a set of local ids back to (sorted) global ids.
    pub fn globalize(&self, locals: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = locals.iter().map(|&l| self.to_global(l)).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induces_correct_edges() {
        // Square with diagonal: 0-1-2-3-0 and 0-2; induce {0, 2, 3}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let s = InducedSubgraph::new(&g, &[3, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.local_to_global, vec![0, 2, 3]);
        // Local: 0 -> global 0, 1 -> global 2, 2 -> global 3.
        assert_eq!(s.graph.num_edges(), 3); // 0-2, 2-3, 3-0 all inside
        assert!(s.graph.has_edge(0, 1));
        assert!(s.graph.has_edge(1, 2));
        assert!(s.graph.has_edge(0, 2));
    }

    #[test]
    fn excludes_outside_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = InducedSubgraph::new(&g, &[0, 2]);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn globalize_roundtrip() {
        let g = Graph::from_edges(5, &[(1, 3), (3, 4)]);
        let s = InducedSubgraph::new(&g, &[1, 3, 4]);
        assert_eq!(s.globalize(&[0, 1, 2]), vec![1, 3, 4]);
        assert_eq!(s.to_global(1), 3);
    }

    #[test]
    fn empty_subgraph() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let s = InducedSubgraph::new(&g, &[]);
        assert!(s.is_empty());
        assert_eq!(s.graph.num_vertices(), 0);
    }
}
