//! Property-based tests for the graph substrate.

use kr_graph::kcore::{core_decomposition, k_core, k_core_naive};
use kr_graph::{
    connected_components, degeneracy_order, greedy_coloring, Graph, InducedSubgraph, VertexId,
};
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `n_max` vertices.
fn arb_graph(n_max: usize) -> impl Strategy<Value = Graph> {
    (2..=n_max).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges.min(60))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #[test]
    fn kcore_matches_naive(g in arb_graph(14), k in 0u32..5) {
        prop_assert_eq!(k_core(&g, k), k_core_naive(&g, k));
    }

    #[test]
    fn kcore_vertices_have_min_degree(g in arb_graph(14), k in 1u32..5) {
        let core = k_core(&g, k);
        let inset: std::collections::HashSet<_> = core.iter().copied().collect();
        for &v in &core {
            let d = g.neighbors(v).iter().filter(|u| inset.contains(u)).count();
            prop_assert!(d as u32 >= k, "vertex {} has degree {} < {}", v, d, k);
        }
    }

    #[test]
    fn kcore_is_maximal(g in arb_graph(12), k in 1u32..4) {
        // No vertex outside the k-core can be added while keeping all
        // degrees >= k: adding the full complement and re-peeling must give
        // the same set.
        let core = k_core(&g, k);
        prop_assert_eq!(&core, &k_core_naive(&g, k));
        // Re-peel from everything: fixpoint.
        let again = kr_graph::k_core_of_subset(&g, k, &core);
        prop_assert_eq!(again, core);
    }

    #[test]
    fn core_numbers_monotone_under_k(g in arb_graph(12)) {
        let d = core_decomposition(&g);
        for k in 0..=d.max_core {
            let a = d.k_core_vertices(k + 1);
            let b = d.k_core_vertices(k);
            let bs: std::collections::HashSet<_> = b.into_iter().collect();
            for v in a {
                prop_assert!(bs.contains(&v));
            }
        }
    }

    #[test]
    fn coloring_is_proper(g in arb_graph(14)) {
        let (colors, k) = greedy_coloring(&g);
        for (u, v) in g.edges() {
            prop_assert_ne!(colors[u as usize], colors[v as usize]);
        }
        let used: std::collections::HashSet<_> = colors.iter().copied().collect();
        prop_assert!(used.len() as u32 <= k.max(1));
    }

    #[test]
    fn coloring_bounded_by_degeneracy(g in arb_graph(14)) {
        let (_, d) = degeneracy_order(&g);
        let (_, k) = greedy_coloring(&g);
        if g.num_vertices() > 0 {
            prop_assert!(k <= d + 1);
        }
    }

    #[test]
    fn components_partition_vertices(g in arb_graph(14)) {
        let cc = connected_components(&g);
        let groups = cc.groups();
        let total: usize = groups.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.num_vertices());
        // No edges between different components.
        for (u, v) in g.edges() {
            prop_assert_eq!(cc.label[u as usize], cc.label[v as usize]);
        }
    }

    #[test]
    fn induced_subgraph_edge_consistency(g in arb_graph(12)) {
        let n = g.num_vertices();
        let subset: Vec<VertexId> = (0..n as VertexId).step_by(2).collect();
        let s = InducedSubgraph::new(&g, &subset);
        for (lu, lv) in s.graph.edges() {
            prop_assert!(g.has_edge(s.to_global(lu), s.to_global(lv)));
        }
        // Every in-subset edge appears.
        let inset: std::collections::HashSet<_> = subset.iter().copied().collect();
        let expected = g
            .edges()
            .filter(|(u, v)| inset.contains(u) && inset.contains(v))
            .count();
        prop_assert_eq!(s.graph.num_edges(), expected);
    }

    #[test]
    fn degeneracy_order_visits_all(g in arb_graph(14)) {
        let (order, _) = degeneracy_order(&g);
        let mut seen = vec![false; g.num_vertices()];
        for v in order {
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
