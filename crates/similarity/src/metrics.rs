//! Similarity / distance metrics.
//!
//! The paper uses (weighted) Jaccard similarity on keyword multisets and
//! Euclidean distance on geo-locations; cosine is included as a common
//! extra for dense vectors.

use crate::attributes::AttributeTable;
use serde::{Deserialize, Serialize};

/// Which metric to evaluate between two vertices' attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Unweighted Jaccard over keyword *sets* (weights ignored).
    Jaccard,
    /// Weighted Jaccard over keyword multisets:
    /// `sum(min(w_u, w_v)) / sum(max(w_u, w_v))`.
    WeightedJaccard,
    /// Euclidean distance over points or vectors (a *distance*: smaller is
    /// more similar; pair with [`crate::Threshold::MaxDistance`]).
    Euclidean,
    /// Cosine similarity over dense vectors.
    Cosine,
}

impl Metric {
    /// True when the metric is a distance (smaller = more similar) rather
    /// than a similarity (larger = more similar).
    pub fn is_distance(self) -> bool {
        matches!(self, Metric::Euclidean)
    }

    /// Evaluates the metric between vertices `u` and `v` of the table.
    ///
    /// # Panics
    /// Panics if the metric is incompatible with the attribute family
    /// (e.g. Jaccard over points).
    pub fn evaluate(self, attrs: &AttributeTable, u: u32, v: u32) -> f64 {
        match (self, attrs) {
            (Metric::Jaccard, AttributeTable::Keywords(lists)) => {
                jaccard(&lists[u as usize], &lists[v as usize])
            }
            (Metric::WeightedJaccard, AttributeTable::Keywords(lists)) => {
                weighted_jaccard(&lists[u as usize], &lists[v as usize])
            }
            (Metric::Euclidean, AttributeTable::Points(pts)) => {
                let (ax, ay) = pts[u as usize];
                let (bx, by) = pts[v as usize];
                ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
            }
            (Metric::Euclidean, AttributeTable::Vectors(vs)) => {
                euclidean(&vs[u as usize], &vs[v as usize])
            }
            (Metric::Cosine, AttributeTable::Vectors(vs)) => {
                cosine(&vs[u as usize], &vs[v as usize])
            }
            (m, t) => panic!(
                "metric {m:?} is not defined over attribute family {}",
                match t {
                    AttributeTable::Keywords(_) => "Keywords",
                    AttributeTable::Points(_) => "Points",
                    AttributeTable::Vectors(_) => "Vectors",
                }
            ),
        }
    }
}

/// Unweighted Jaccard similarity of two sorted keyword lists
/// (`|A ∩ B| / |A ∪ B|`; 1.0 for two empty sets by convention).
pub fn jaccard(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Weighted Jaccard similarity of two sorted `(keyword, weight)` lists:
/// `Σ min(w_a, w_b) / Σ max(w_a, w_b)` over the keyword union.
/// Returns 1.0 for two all-zero / empty multisets by convention.
pub fn weighted_jaccard(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    let (mut num, mut den) = (0.0f64, 0.0f64);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                den += a[i].1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                den += b[j].1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                num += a[i].1.min(b[j].1);
                den += a[i].1.max(b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    den += a[i..].iter().map(|&(_, w)| w).sum::<f64>();
    den += b[j..].iter().map(|&(_, w)| w).sum::<f64>();
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Euclidean distance of two equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity of two equal-length vectors (0.0 if either is zero).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(ids: &[(u32, f64)]) -> Vec<(u32, f64)> {
        ids.to_vec()
    }

    #[test]
    fn jaccard_basics() {
        let a = kw(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        let b = kw(&[(2, 1.0), (3, 1.0), (4, 1.0)]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &[]), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn weighted_jaccard_basics() {
        let a = kw(&[(1, 2.0), (2, 1.0)]);
        let b = kw(&[(1, 1.0), (3, 1.0)]);
        // num = min(2,1) = 1; den = max(2,1) + 1 + 1 = 4.
        assert!((weighted_jaccard(&a, &b) - 0.25).abs() < 1e-12);
        assert_eq!(weighted_jaccard(&a, &a), 1.0);
        assert_eq!(weighted_jaccard(&[], &[]), 1.0);
        assert_eq!(weighted_jaccard(&a, &[]), 0.0);
    }

    #[test]
    fn weighted_jaccard_reduces_to_jaccard_on_unit_weights() {
        let a = kw(&[(1, 1.0), (2, 1.0), (5, 1.0)]);
        let b = kw(&[(2, 1.0), (5, 1.0), (9, 1.0)]);
        assert!((weighted_jaccard(&a, &b) - jaccard(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn euclidean_basics() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn metric_dispatch() {
        let t = AttributeTable::points(vec![(0.0, 0.0), (3.0, 4.0)]);
        assert!((Metric::Euclidean.evaluate(&t, 0, 1) - 5.0).abs() < 1e-12);
        let t = AttributeTable::keywords(vec![vec![(1, 1.0)], vec![(1, 1.0)]]);
        assert_eq!(Metric::WeightedJaccard.evaluate(&t, 0, 1), 1.0);
        assert_eq!(Metric::Jaccard.evaluate(&t, 0, 1), 1.0);
    }

    #[test]
    #[should_panic]
    fn incompatible_metric_panics() {
        let t = AttributeTable::points(vec![(0.0, 0.0)]);
        Metric::Jaccard.evaluate(&t, 0, 0);
    }

    #[test]
    fn is_distance_flags() {
        assert!(Metric::Euclidean.is_distance());
        assert!(!Metric::Jaccard.is_distance());
        assert!(!Metric::WeightedJaccard.is_distance());
        assert!(!Metric::Cosine.is_distance());
    }
}
