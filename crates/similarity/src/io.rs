//! Attribute-table I/O (TSV).
//!
//! Real datasets arrive as per-vertex attribute files next to the SNAP
//! edge list: Brightkite/Gowalla ship check-in locations, DBLP/Pokec ship
//! keyword lists. These loaders let real data replace the synthetic
//! presets without touching any algorithm code.
//!
//! Formats (one line per vertex, `#` comments ignored):
//!
//! * points:   `vertex_id <TAB> x <TAB> y`
//! * keywords: `vertex_id <TAB> kw:weight <TAB> kw:weight ...`
//!   (bare `kw` means weight 1)

use crate::attributes::AttributeTable;
use kr_graph::VertexId;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised while parsing attribute files.
#[derive(Debug)]
pub enum AttrIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed data line.
    Parse { line_no: usize, msg: String },
}

impl std::fmt::Display for AttrIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrIoError::Io(e) => write!(f, "i/o error: {e}"),
            AttrIoError::Parse { line_no, msg } => write!(f, "line {line_no}: {msg}"),
        }
    }
}

impl std::error::Error for AttrIoError {}

impl From<std::io::Error> for AttrIoError {
    fn from(e: std::io::Error) -> Self {
        AttrIoError::Io(e)
    }
}

fn parse_err(line_no: usize, msg: impl Into<String>) -> AttrIoError {
    AttrIoError::Parse {
        line_no,
        msg: msg.into(),
    }
}

/// Reads a point table covering vertices `0..n`. Missing vertices default
/// to the origin; out-of-range ids are an error.
pub fn read_points<R: Read>(reader: R, n: usize) -> Result<AttributeTable, AttrIoError> {
    let mut pts = vec![(0.0f64, 0.0f64); n];
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let line_no = line_no + 1;
        let id: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing vertex id"))?;
        if id >= n {
            return Err(parse_err(line_no, format!("vertex {id} out of range {n}")));
        }
        let x: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing x"))?;
        let y: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing y"))?;
        pts[id] = (x, y);
    }
    Ok(AttributeTable::points(pts))
}

/// Reads a keyword table covering vertices `0..n`. Missing vertices get
/// empty keyword lists.
pub fn read_keywords<R: Read>(reader: R, n: usize) -> Result<AttributeTable, AttrIoError> {
    let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let line_no = line_no + 1;
        let mut it = t.split_whitespace();
        let id: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing vertex id"))?;
        if id >= n {
            return Err(parse_err(line_no, format!("vertex {id} out of range {n}")));
        }
        let mut list = Vec::new();
        for token in it {
            let (kw, w) = match token.split_once(':') {
                Some((kw, w)) => {
                    let w: f64 = w
                        .parse()
                        .map_err(|_| parse_err(line_no, format!("bad weight in {token:?}")))?;
                    (kw, w)
                }
                None => (token, 1.0),
            };
            let kw: u32 = kw
                .parse()
                .map_err(|_| parse_err(line_no, format!("bad keyword id in {token:?}")))?;
            list.push((kw, w));
        }
        lists[id] = list;
    }
    Ok(AttributeTable::keywords(lists))
}

/// Join statistics of a mapped attribute load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttrJoinStats {
    /// Data lines seen (comments and blanks excluded).
    pub lines: u64,
    /// Lines whose vertex id joined against the graph's id map.
    pub matched: u64,
    /// Lines whose vertex id does not appear in the graph (real SNAP
    /// attribute dumps routinely cover users the edge list dropped);
    /// skipped, not errors.
    pub unmatched: u64,
}

/// Shared line loop of the mapped loaders: streams `reader` line by line
/// (one reused buffer, no per-line allocation), joins the leading
/// original id through `id_map`, and hands matched rows to `row`.
fn read_mapped_rows<R: Read>(
    reader: R,
    id_map: &HashMap<u64, VertexId>,
    n: usize,
    mut row: impl FnMut(VertexId, &mut std::str::SplitWhitespace<'_>, usize) -> Result<(), AttrIoError>,
) -> Result<AttrJoinStats, AttrIoError> {
    let mut reader = BufReader::new(reader);
    let mut stats = AttrJoinStats::default();
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(stats);
        }
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        stats.lines += 1;
        let mut it = t.split_whitespace();
        let id: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing vertex id"))?;
        match id_map.get(&id) {
            Some(&dense) if (dense as usize) < n => {
                stats.matched += 1;
                row(dense, &mut it, line_no)?;
            }
            Some(&dense) => {
                return Err(parse_err(
                    line_no,
                    format!("id map sends {id} to dense id {dense}, out of range {n}"),
                ));
            }
            None => stats.unmatched += 1,
        }
    }
}

/// Reads a point table keyed by **original** (file) vertex ids, joining
/// each row against the graph's id map (see
/// `kr_graph::io::LoadedGraph::id_map`). Vertices without a row default
/// to the origin; rows for unknown ids are counted and skipped.
pub fn read_points_mapped<R: Read>(
    reader: R,
    id_map: &HashMap<u64, VertexId>,
    n: usize,
) -> Result<(AttributeTable, AttrJoinStats), AttrIoError> {
    let mut pts = vec![(0.0f64, 0.0f64); n];
    let stats = read_mapped_rows(reader, id_map, n, |dense, it, line_no| {
        let x: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing x"))?;
        let y: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing y"))?;
        pts[dense as usize] = (x, y);
        Ok(())
    })?;
    Ok((AttributeTable::points(pts), stats))
}

/// Reads a weighted keyword table keyed by **original** vertex ids (same
/// join semantics as [`read_points_mapped`]; token grammar of
/// [`read_keywords`]). Vertices without a row get empty keyword lists.
pub fn read_keywords_mapped<R: Read>(
    reader: R,
    id_map: &HashMap<u64, VertexId>,
    n: usize,
) -> Result<(AttributeTable, AttrJoinStats), AttrIoError> {
    let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let stats = read_mapped_rows(reader, id_map, n, |dense, it, line_no| {
        let mut list = Vec::new();
        for token in it {
            let (kw, w) = match token.split_once(':') {
                Some((kw, w)) => {
                    let w: f64 = w
                        .parse()
                        .map_err(|_| parse_err(line_no, format!("bad weight in {token:?}")))?;
                    (kw, w)
                }
                None => (token, 1.0),
            };
            let kw: u32 = kw
                .parse()
                .map_err(|_| parse_err(line_no, format!("bad keyword id in {token:?}")))?;
            list.push((kw, w));
        }
        lists[dense as usize] = list;
        Ok(())
    })?;
    Ok((AttributeTable::keywords(lists), stats))
}

/// Writes an attribute table in the matching TSV format.
pub fn write_attributes<W: Write>(table: &AttributeTable, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    match table {
        AttributeTable::Points(pts) => {
            writeln!(w, "# vertex\tx\ty")?;
            for (i, (x, y)) in pts.iter().enumerate() {
                writeln!(w, "{i}\t{x}\t{y}")?;
            }
        }
        AttributeTable::Keywords(lists) => {
            writeln!(w, "# vertex\tkw:weight ...")?;
            for (i, list) in lists.iter().enumerate() {
                write!(w, "{i}")?;
                for (kw, weight) in list {
                    write!(w, "\t{kw}:{weight}")?;
                }
                writeln!(w)?;
            }
        }
        AttributeTable::Vectors(vecs) => {
            writeln!(w, "# vertex\tv0 v1 ...")?;
            for (i, v) in vecs.iter().enumerate() {
                write!(w, "{i}")?;
                for x in v {
                    write!(w, "\t{x}")?;
                }
                writeln!(w)?;
            }
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_roundtrip() {
        let t = AttributeTable::points(vec![(1.0, 2.0), (3.5, -4.25)]);
        let mut buf = Vec::new();
        write_attributes(&t, &mut buf).unwrap();
        let back = read_points(&buf[..], 2).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn keywords_roundtrip() {
        let t = AttributeTable::keywords(vec![vec![(3, 2.0), (1, 1.0)], vec![], vec![(7, 0.5)]]);
        let mut buf = Vec::new();
        write_attributes(&t, &mut buf).unwrap();
        let back = read_keywords(&buf[..], 3).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn bare_keyword_defaults_to_unit_weight() {
        let data = "0\t5\t6:2.5\n";
        let t = read_keywords(data.as_bytes(), 1).unwrap();
        match t {
            AttributeTable::Keywords(lists) => {
                assert_eq!(lists[0], vec![(5, 1.0), (6, 2.5)]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn missing_vertices_defaulted() {
        let data = "1\t9.0\t9.0\n";
        let t = read_points(data.as_bytes(), 3).unwrap();
        match t {
            AttributeTable::Points(p) => {
                assert_eq!(p[0], (0.0, 0.0));
                assert_eq!(p[1], (9.0, 9.0));
                assert_eq!(p[2], (0.0, 0.0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn out_of_range_vertex_rejected() {
        let data = "5\t1.0\t1.0\n";
        assert!(read_points(data.as_bytes(), 3).is_err());
    }

    #[test]
    fn bad_weight_rejected() {
        let data = "0\t5:abc\n";
        assert!(read_keywords(data.as_bytes(), 1).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let data = "# header\n\n0\t1.0\t2.0\n";
        assert!(read_points(data.as_bytes(), 1).is_ok());
    }

    fn sparse_id_map() -> HashMap<u64, VertexId> {
        // Original ids 100/200/300 → dense 0/1/2.
        [(100u64, 0u32), (200, 1), (300, 2)].into_iter().collect()
    }

    #[test]
    fn mapped_points_join_and_count() {
        let data = "# id x y\n300\t9.0\t8.0\n100\t1.0\t2.0\n999\t5.0\t5.0\n";
        let (t, stats) = read_points_mapped(data.as_bytes(), &sparse_id_map(), 3).unwrap();
        assert_eq!(
            stats,
            AttrJoinStats {
                lines: 3,
                matched: 2,
                unmatched: 1
            }
        );
        match t {
            AttributeTable::Points(p) => {
                assert_eq!(p, vec![(1.0, 2.0), (0.0, 0.0), (9.0, 8.0)]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn mapped_keywords_join_and_count() {
        let data = "200\t5:2.5\t7\n12345\t1\n";
        let (t, stats) = read_keywords_mapped(data.as_bytes(), &sparse_id_map(), 3).unwrap();
        assert_eq!((stats.matched, stats.unmatched), (1, 1));
        match t {
            AttributeTable::Keywords(lists) => {
                assert!(lists[0].is_empty());
                assert_eq!(lists[1], vec![(5, 2.5), (7, 1.0)]);
                assert!(lists[2].is_empty());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn mapped_loader_rejects_inconsistent_map() {
        // Map says dense id 7, but the table only covers 3 vertices.
        let map: HashMap<u64, VertexId> = [(100u64, 7u32)].into_iter().collect();
        assert!(read_points_mapped("100 1 2\n".as_bytes(), &map, 3).is_err());
    }

    #[test]
    fn mapped_loader_propagates_parse_errors() {
        let data = "200\tnot-a-number\t3.0\n";
        match read_points_mapped(data.as_bytes(), &sparse_id_map(), 3) {
            Err(AttrIoError::Parse { line_no, .. }) => assert_eq!(line_no, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
