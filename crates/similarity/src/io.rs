//! Attribute-table I/O (TSV).
//!
//! Real datasets arrive as per-vertex attribute files next to the SNAP
//! edge list: Brightkite/Gowalla ship check-in locations, DBLP/Pokec ship
//! keyword lists. These loaders let real data replace the synthetic
//! presets without touching any algorithm code.
//!
//! Formats (one line per vertex, `#` comments ignored):
//!
//! * points:   `vertex_id <TAB> x <TAB> y`
//! * keywords: `vertex_id <TAB> kw:weight <TAB> kw:weight ...`
//!   (bare `kw` means weight 1)

use crate::attributes::AttributeTable;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised while parsing attribute files.
#[derive(Debug)]
pub enum AttrIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed data line.
    Parse { line_no: usize, msg: String },
}

impl std::fmt::Display for AttrIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrIoError::Io(e) => write!(f, "i/o error: {e}"),
            AttrIoError::Parse { line_no, msg } => write!(f, "line {line_no}: {msg}"),
        }
    }
}

impl std::error::Error for AttrIoError {}

impl From<std::io::Error> for AttrIoError {
    fn from(e: std::io::Error) -> Self {
        AttrIoError::Io(e)
    }
}

fn parse_err(line_no: usize, msg: impl Into<String>) -> AttrIoError {
    AttrIoError::Parse {
        line_no,
        msg: msg.into(),
    }
}

/// Reads a point table covering vertices `0..n`. Missing vertices default
/// to the origin; out-of-range ids are an error.
pub fn read_points<R: Read>(reader: R, n: usize) -> Result<AttributeTable, AttrIoError> {
    let mut pts = vec![(0.0f64, 0.0f64); n];
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let line_no = line_no + 1;
        let id: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing vertex id"))?;
        if id >= n {
            return Err(parse_err(line_no, format!("vertex {id} out of range {n}")));
        }
        let x: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing x"))?;
        let y: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing y"))?;
        pts[id] = (x, y);
    }
    Ok(AttributeTable::points(pts))
}

/// Reads a keyword table covering vertices `0..n`. Missing vertices get
/// empty keyword lists.
pub fn read_keywords<R: Read>(reader: R, n: usize) -> Result<AttributeTable, AttrIoError> {
    let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let line_no = line_no + 1;
        let mut it = t.split_whitespace();
        let id: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "missing vertex id"))?;
        if id >= n {
            return Err(parse_err(line_no, format!("vertex {id} out of range {n}")));
        }
        let mut list = Vec::new();
        for token in it {
            let (kw, w) = match token.split_once(':') {
                Some((kw, w)) => {
                    let w: f64 = w
                        .parse()
                        .map_err(|_| parse_err(line_no, format!("bad weight in {token:?}")))?;
                    (kw, w)
                }
                None => (token, 1.0),
            };
            let kw: u32 = kw
                .parse()
                .map_err(|_| parse_err(line_no, format!("bad keyword id in {token:?}")))?;
            list.push((kw, w));
        }
        lists[id] = list;
    }
    Ok(AttributeTable::keywords(lists))
}

/// Writes an attribute table in the matching TSV format.
pub fn write_attributes<W: Write>(table: &AttributeTable, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    match table {
        AttributeTable::Points(pts) => {
            writeln!(w, "# vertex\tx\ty")?;
            for (i, (x, y)) in pts.iter().enumerate() {
                writeln!(w, "{i}\t{x}\t{y}")?;
            }
        }
        AttributeTable::Keywords(lists) => {
            writeln!(w, "# vertex\tkw:weight ...")?;
            for (i, list) in lists.iter().enumerate() {
                write!(w, "{i}")?;
                for (kw, weight) in list {
                    write!(w, "\t{kw}:{weight}")?;
                }
                writeln!(w)?;
            }
        }
        AttributeTable::Vectors(vecs) => {
            writeln!(w, "# vertex\tv0 v1 ...")?;
            for (i, v) in vecs.iter().enumerate() {
                write!(w, "{i}")?;
                for x in v {
                    write!(w, "\t{x}")?;
                }
                writeln!(w)?;
            }
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_roundtrip() {
        let t = AttributeTable::points(vec![(1.0, 2.0), (3.5, -4.25)]);
        let mut buf = Vec::new();
        write_attributes(&t, &mut buf).unwrap();
        let back = read_points(&buf[..], 2).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn keywords_roundtrip() {
        let t = AttributeTable::keywords(vec![vec![(3, 2.0), (1, 1.0)], vec![], vec![(7, 0.5)]]);
        let mut buf = Vec::new();
        write_attributes(&t, &mut buf).unwrap();
        let back = read_keywords(&buf[..], 3).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn bare_keyword_defaults_to_unit_weight() {
        let data = "0\t5\t6:2.5\n";
        let t = read_keywords(data.as_bytes(), 1).unwrap();
        match t {
            AttributeTable::Keywords(lists) => {
                assert_eq!(lists[0], vec![(5, 1.0), (6, 2.5)]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn missing_vertices_defaulted() {
        let data = "1\t9.0\t9.0\n";
        let t = read_points(data.as_bytes(), 3).unwrap();
        match t {
            AttributeTable::Points(p) => {
                assert_eq!(p[0], (0.0, 0.0));
                assert_eq!(p[1], (9.0, 9.0));
                assert_eq!(p[2], (0.0, 0.0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn out_of_range_vertex_rejected() {
        let data = "5\t1.0\t1.0\n";
        assert!(read_points(data.as_bytes(), 3).is_err());
    }

    #[test]
    fn bad_weight_rejected() {
        let data = "0\t5:abc\n";
        assert!(read_keywords(data.as_bytes(), 1).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let data = "# header\n\n0\t1.0\t2.0\n";
        assert!(read_points(data.as_bytes(), 1).is_ok());
    }
}
