//! Metric-aware candidate-pair generation.
//!
//! Preprocessing (Algorithm 1) needs, for every vertex group, the set of
//! *dissimilar* pairs — but evaluating the metric on all `|group|²/2`
//! pairs is the dominant cold-query cost. The indexes here invert that:
//! generate a small **candidate** set of possibly-similar pairs from the
//! attribute structure, verify only those with the oracle, and classify
//! every pair *outside* the candidate set as dissimilar with **zero**
//! metric evaluations.
//!
//! Soundness contract: an index partitions the pairs three ways —
//! *known-similar* (provably within the threshold, no evaluation),
//! *candidates* (uncertain, one verification each), and everything else
//! (provably dissimilar, no evaluation). Both certain classes must be
//! provable; when in doubt a pair goes into the candidate set, and the
//! builders below fall back to [`AllPairs`] entirely whenever a
//! precondition for their pruning argument does not hold (non-positive
//! thresholds, negative weights, astronomically scaled coordinates).
//!
//! * [`GridCandidates`] — uniform spatial grid for Euclidean points with
//!   cell side `r / 16`: the axis-aligned distance bounds between two
//!   cell rectangles classify whole cell pairs at once (max possible
//!   distance ≤ `r` ⇒ every cross pair known-similar; min possible
//!   distance > `r` ⇒ every cross pair dissimilar), so only pairs in
//!   the thin annulus of cell pairs straddling distance `r` are ever
//!   verified. Sub-`r` cells matter: real clusters are *denser* than
//!   `r`, and classifying their pairs similar for free is where most of
//!   the evaluation saving comes from.
//! * [`InvertedIndexCandidates`] — inverted keyword index for (weighted)
//!   Jaccard: a score-accumulation join. Walking the shared-token
//!   postings accumulates each touched pair's exact intersection weight,
//!   which determines the similarity (`num / (W_u + W_v - num)`) up to
//!   float summation order; margin bounds then classify every touched
//!   pair, untouched pairs share no keyword (similarity 0, dissimilar
//!   for free), and only knife-edge pairs are verified.
//! * [`AllPairs`] — brute-force fallback (Cosine, custom oracles, or any
//!   input outside an index's preconditions).

use std::collections::HashMap;

/// A sound over-approximation of the similar pairs among `0..n` local
/// indices: every pair **not** produced is guaranteed dissimilar under
/// the threshold the index was built for.
pub trait CandidatePairs {
    /// Number of candidate pairs (= metric evaluations a consumer pays).
    fn num_candidates(&self) -> usize;

    /// Visits every candidate pair `(i, j)` with `i < j`, each exactly
    /// once. Visit order is unspecified.
    fn for_each(&self, visit: &mut dyn FnMut(u32, u32));

    /// Short name for diagnostics ("grid", "inverted", "all-pairs").
    fn strategy(&self) -> &'static str;

    /// The materialized pair list, when the index stores one (lets the
    /// sharded verifier chunk without re-collecting).
    fn as_pairs(&self) -> Option<&[(u32, u32)]> {
        None
    }

    /// Pairs the index *proved* similar — the consumer records them as
    /// similar without any metric evaluation. Disjoint from the
    /// candidate set; `(i, j)` with `i < j`, each exactly once.
    fn known_similar(&self) -> &[(u32, u32)] {
        &[]
    }
}

/// Brute-force fallback: every pair is a candidate.
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
}

impl AllPairs {
    /// All pairs over `n` vertices.
    pub fn new(n: usize) -> Self {
        AllPairs { n }
    }
}

impl CandidatePairs for AllPairs {
    fn num_candidates(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    fn for_each(&self, visit: &mut dyn FnMut(u32, u32)) {
        for i in 0..self.n as u32 {
            for j in (i + 1)..self.n as u32 {
                visit(i, j);
            }
        }
    }

    fn strategy(&self) -> &'static str {
        "all-pairs"
    }
}

/// Materialized candidate list (what the index builders produce).
#[derive(Debug, Clone)]
pub struct PairList {
    pairs: Vec<(u32, u32)>,
    known_similar: Vec<(u32, u32)>,
    strategy: &'static str,
}

impl CandidatePairs for PairList {
    fn num_candidates(&self) -> usize {
        self.pairs.len()
    }

    fn for_each(&self, visit: &mut dyn FnMut(u32, u32)) {
        for &(i, j) in &self.pairs {
            visit(i, j);
        }
    }

    fn strategy(&self) -> &'static str {
        self.strategy
    }

    fn as_pairs(&self) -> Option<&[(u32, u32)]> {
        Some(&self.pairs)
    }

    fn known_similar(&self) -> &[(u32, u32)] {
        &self.known_similar
    }
}

/// Coordinate-to-cell guard: beyond this many cells from the origin the
/// `x / side` quotient loses enough float precision that the cell-bound
/// arguments fray, so the builder falls back to brute force instead.
/// Real data sits many orders of magnitude below (a 5000 km world at
/// r = 2 km and `r/16` cells is ~40 000 cells).
const MAX_CELLS: f64 = (1u64 << 20) as f64;

/// Cells per threshold radius: cell side is `r / GRID_SUBDIV`. Finer
/// cells tighten both distance bounds (the verify annulus has width
/// ~2·diag = `2√2·r/GRID_SUBDIV`) at the cost of more occupied-cell
/// pairs to classify; 16 cuts ~8x of the metric evaluations on the
/// gowalla-like preset while the cell-pair classification stays well
/// under the saved evaluation cost.
const GRID_SUBDIV: f64 = 16.0;

/// Relative slack on the cell distance bounds: a pair is only classified
/// without verification when the bound clears the threshold by this
/// margin, so float error in the `x / side` quotients (bounded via
/// [`MAX_CELLS`]) and in the oracle's own metric evaluation can never
/// make a certain classification disagree with the oracle.
const GRID_MARGIN: f64 = 1e-9;

/// Uniform spatial grid for Euclidean 2-D points, cell side
/// `r / GRID_SUBDIV`.
pub struct GridCandidates;

impl GridCandidates {
    /// Builds the grid classification for `points` under max-distance
    /// `r`: known-similar pairs (cell rectangles provably within `r`),
    /// candidates (bounds straddle `r`), everything else provably
    /// dissimilar.
    ///
    /// Returns `None` when the grid argument is unsound for the input
    /// (`r == 0`, or any coordinate non-finite / past `MAX_CELLS` cells)
    /// — the caller must fall back to [`AllPairs`]. For `r < 0` (or NaN)
    /// no pair can satisfy `dist ≤ r`, so every pair is dissimilar and
    /// both certain sets are empty.
    pub fn try_new(points: &[(f64, f64)], r: f64) -> Option<PairList> {
        if r < 0.0 || r.is_nan() {
            return Some(PairList {
                pairs: Vec::new(),
                known_similar: Vec::new(),
                strategy: "grid",
            });
        }
        if r == 0.0 {
            return None;
        }
        let side = r / GRID_SUBDIV;
        let cell = |c: f64| -> Option<i64> {
            let q = c / side;
            if q.is_finite() && q.abs() < MAX_CELLS {
                Some(q.floor() as i64)
            } else {
                None
            }
        };
        // Sort-based cell grouping: no hash map on the hot path, and the
        // occupied-cell list comes out in deterministic key order with
        // each cell's members ascending.
        let mut tagged: Vec<((i64, i64), u32)> = Vec::with_capacity(points.len());
        for (i, &(x, y)) in points.iter().enumerate() {
            tagged.push(((cell(x)?, cell(y)?), i as u32));
        }
        tagged.sort_unstable();
        let mut occupied: Vec<((i64, i64), std::ops::Range<usize>)> = Vec::new();
        let mut start = 0usize;
        for i in 1..=tagged.len() {
            if i == tagged.len() || tagged[i].0 != tagged[start].0 {
                occupied.push((tagged[start].0, start..i));
                start = i;
            }
        }
        // Conservative classification thresholds (squared). If r² itself
        // overflows to infinity the bound comparisons degenerate
        // (`inf <= inf` would classify pairs past r as known-similar):
        // such thresholds are outside the grid's soundness precondition,
        // like out-of-range coordinates.
        let r_lo2 = (r * (1.0 - GRID_MARGIN)).powi(2);
        let r_hi2 = (r * (1.0 + GRID_MARGIN)).powi(2);
        if !r_hi2.is_finite() {
            return None;
        }
        // Beyond this Chebyshev cell distance the minimum possible
        // separation already exceeds r.
        let reach = GRID_SUBDIV as i64 + 1;
        // Rank-space row index over the occupied cells: they are sorted
        // by (cx, cy), so each distinct cx is one contiguous range of
        // indices. A cell's neighbors-within-reach are then found by a
        // binary search over rows and one over the cy span per row —
        // the window of occupied cells the classification actually
        // inspects — instead of scanning all `occupied²/2` pairs. On
        // giant sparse inputs (occupied ≈ n) the pair scan's cheap
        // integer rejects dominate preprocessing; this removes them
        // while producing pairs in the exact same order.
        let mut rows: Vec<(i64, std::ops::Range<usize>)> = Vec::new();
        let mut row_start = 0usize;
        for i in 1..=occupied.len() {
            if i == occupied.len() || occupied[i].0 .0 != occupied[row_start].0 .0 {
                rows.push((occupied[row_start].0 .0, row_start..i));
                row_start = i;
            }
        }
        let mut pairs = Vec::new();
        let mut known_similar = Vec::new();
        let members =
            |range: &std::ops::Range<usize>| tagged[range.clone()].iter().map(|&(_, i)| i);
        let push_cross =
            |out: &mut Vec<(u32, u32)>, a: &std::ops::Range<usize>, b: &std::ops::Range<usize>| {
                for (_, i) in &tagged[a.clone()] {
                    for (_, j) in &tagged[b.clone()] {
                        out.push(if i < j { (*i, *j) } else { (*j, *i) });
                    }
                }
            };
        for (a, ((ax, ay), arange)) in occupied.iter().enumerate() {
            // Within-cell pairs: max separation is one cell diagonal,
            // far inside r at this subdivision.
            debug_assert!(2.0 * side * side <= r_lo2);
            let cell_members: Vec<u32> = members(arange).collect();
            for (pos, &i) in cell_members.iter().enumerate() {
                for &j in &cell_members[pos + 1..] {
                    known_similar.push((i, j));
                }
            }
            // Distance bounds between two half-open cell rectangles:
            // axis separation lies in ((|d|-1)·side, (|d|+1)·side).
            // Rows ascending in cx, cells ascending in cy: later cells
            // are visited in ascending occupied index, matching the
            // order the full pair scan produced.
            let first_row = rows.partition_point(|&(cx, _)| cx < ax - reach);
            for (bx, range) in &rows[first_row..] {
                if *bx > ax + reach {
                    break;
                }
                let cells = &occupied[range.clone()];
                let lo = cells.partition_point(|((_, cy), _)| *cy < ay - reach);
                let hi = cells.partition_point(|((_, cy), _)| *cy <= ay + reach);
                for (off, ((bx, by), brange)) in cells[lo..hi].iter().enumerate() {
                    if range.start + lo + off <= a {
                        continue; // unordered pairs: handled from the other side
                    }
                    let (dx, dy) = (bx - ax, by - ay);
                    debug_assert!(dx.abs() <= reach && dy.abs() <= reach);
                    let gap = |d: i64| (d.abs() - 1).max(0) as f64 * side;
                    let span = |d: i64| (d.abs() + 1) as f64 * side;
                    let min2 = gap(dx).powi(2) + gap(dy).powi(2);
                    if min2 > r_hi2 {
                        continue; // provably dissimilar, zero evals
                    }
                    let max2 = span(dx).powi(2) + span(dy).powi(2);
                    if max2 <= r_lo2 {
                        push_cross(&mut known_similar, arange, brange);
                    } else {
                        push_cross(&mut pairs, arange, brange);
                    }
                }
            }
        }
        Some(PairList {
            pairs,
            known_similar,
            strategy: "grid",
        })
    }
}

/// Relative slack on the accumulated-similarity bounds: a pair is only
/// classified without verification when its index-side similarity clears
/// the threshold by this margin. The accumulated sums contain exactly
/// the same terms as the oracle's merge, just in a different order, so
/// the disagreement is bounded by ~`len·ε ≈ 1e-14` relative — six
/// orders of magnitude inside the margin.
const SIM_MARGIN: f64 = 1e-9;

/// Inverted keyword index for (weighted) Jaccard: an exact
/// score-accumulation join in the style of prefix-filter similarity
/// joins.
///
/// Vertices are scanned in order; each probes the postings of its
/// predecessors, accumulating the pair's intersection weight
/// `num = Σ min(w_u, w_v)` token by token. Since
/// `sim = num / (W_u + W_v - num)`, every *touched* pair is classified
/// from the accumulator alone (known-similar / candidate / dissimilar,
/// with `SIM_MARGIN` slack), and every untouched pair shares no
/// keyword — similarity 0, dissimilar for free. Total work is
/// `O(shared-token incidences)`, which never exceeds (and on sparsely
/// overlapping sets is far below) the `Σ (len_u + len_v)` the brute
/// merge pays over all pairs.
pub struct InvertedIndexCandidates;

impl InvertedIndexCandidates {
    /// Builds the classification for sorted `(keyword, weight)` `lists`
    /// under min-similarity `r`. `unweighted` treats every keyword as
    /// weight 1 (plain Jaccard).
    ///
    /// Returns `None` when the accumulation argument does not hold:
    /// `r ≤ 0` (or NaN) makes similarity 0 pass the threshold,
    /// negative / non-finite weights break the weight algebra, and an
    /// unsorted or duplicated keyword list means the oracle's own merge
    /// is ill-defined — the caller must fall back to [`AllPairs`] for
    /// all of these.
    pub fn try_new(lists: &[&[(u32, f64)]], unweighted: bool, r: f64) -> Option<PairList> {
        if r.is_nan() || r <= 0.0 {
            return None;
        }
        if !unweighted
            && lists
                .iter()
                .any(|l| l.iter().any(|&(_, w)| !w.is_finite() || w < 0.0))
        {
            return None;
        }
        // The merge semantics of the oracle (and of the accumulator)
        // require strictly sorted, duplicate-free token lists.
        if lists.iter().any(|l| l.windows(2).any(|w| w[0].0 >= w[1].0)) {
            return None;
        }
        let n = lists.len();
        let weight = |w: f64| if unweighted { 1.0 } else { w };
        let totals: Vec<f64> = lists
            .iter()
            .map(|l| l.iter().map(|&(_, w)| weight(w)).sum())
            .collect();
        let sim_lo = r * (1.0 - SIM_MARGIN);
        let sim_hi = r * (1.0 + SIM_MARGIN);
        let mut pairs = Vec::new();
        let mut known_similar = Vec::new();
        // Classifies a pair from an index-side similarity value.
        let mut classify = |pair: (u32, u32), sim: f64| {
            if sim >= sim_hi {
                known_similar.push(pair);
            } else if sim > sim_lo {
                pairs.push(pair); // uncertainty band: verify
            } // else provably dissimilar, zero evals
        };
        // token -> (vertex, effective weight) postings of earlier vertices.
        let mut index: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
        // Dense per-probe accumulators, reset lazily via stamps.
        let mut acc: Vec<f64> = vec![0.0; n];
        let mut stamp: Vec<u32> = vec![u32::MAX; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut zero_weight: Vec<u32> = Vec::new();
        for v in 0..n {
            let wv = totals[v];
            if wv <= 0.0 {
                // Zero total weight (empty multiset): similarity is 1.0
                // to other zero-weight vertices (the paper's convention)
                // and 0.0 to everyone else.
                for &u in &zero_weight {
                    classify((u, v as u32), 1.0);
                }
                zero_weight.push(v as u32);
                continue;
            }
            touched.clear();
            for &(t, w) in lists[v] {
                let wv_t = weight(w);
                if let Some(postings) = index.get(&t) {
                    for &(u, wu_t) in postings {
                        if stamp[u as usize] != v as u32 {
                            stamp[u as usize] = v as u32;
                            acc[u as usize] = 0.0;
                            touched.push(u);
                        }
                        acc[u as usize] += wv_t.min(wu_t);
                    }
                }
            }
            for &u in &touched {
                let wu = totals[u as usize];
                if wu <= 0.0 {
                    continue; // zero-weight partner: handled above (sim 0)
                }
                let num = acc[u as usize];
                // den = Σ max(w_u, w_v) = W_u + W_v - Σ min(w_u, w_v),
                // strictly positive because wv > 0.
                let sim = num / (wu + wv - num);
                classify((u, v as u32), sim);
            }
            for &(t, w) in lists[v] {
                index.entry(t).or_default().push((v as u32, weight(w)));
            }
        }
        Some(PairList {
            pairs,
            known_similar,
            strategy: "inverted",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(c: &dyn CandidatePairs) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        c.for_each(&mut |i, j| out.push((i, j)));
        out.sort_unstable();
        out
    }

    #[test]
    fn all_pairs_enumerates_everything() {
        let c = AllPairs::new(4);
        assert_eq!(c.num_candidates(), 6);
        assert_eq!(
            collect(&c),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
        assert_eq!(AllPairs::new(0).num_candidates(), 0);
        assert_eq!(c.strategy(), "all-pairs");
    }

    /// Candidates ∪ known-similar, sorted (what a consumer treats as
    /// possibly-or-certainly similar).
    fn not_pruned(c: &dyn CandidatePairs) -> Vec<(u32, u32)> {
        let mut out = collect(c);
        out.extend_from_slice(c.known_similar());
        out.sort_unstable();
        out
    }

    #[test]
    fn grid_classifies_three_ways() {
        // Two tight clusters 100 apart, r = 2: cross-cluster pairs are
        // pruned outright, intra-cluster pairs at distance ~1.1 « r are
        // proved similar without any metric evaluation.
        let pts = vec![(0.0, 0.0), (1.0, 0.5), (100.0, 0.0), (101.0, 0.5)];
        let g = GridCandidates::try_new(&pts, 2.0).expect("grid applies");
        let known = g.known_similar();
        assert!(known.contains(&(0, 1)));
        assert!(known.contains(&(2, 3)));
        let survivors = not_pruned(&g);
        assert!(!survivors.contains(&(0, 2)));
        assert!(!survivors.contains(&(1, 3)));
        assert_eq!(g.strategy(), "grid");
        assert!(g.as_pairs().is_some());
    }

    #[test]
    fn grid_boundary_pairs_are_verified_not_assumed() {
        // Pairs at distance exactly r sit in the uncertainty annulus:
        // they must be candidates (verified), never silently classified.
        let pts = vec![(0.9, 0.0), (1.9, 0.0), (0.0, 0.9), (0.0, 1.9)];
        let g = GridCandidates::try_new(&pts, 1.0).expect("grid applies");
        let got = collect(&g);
        assert!(got.contains(&(0, 1)));
        assert!(got.contains(&(2, 3)));
        assert!(!g.known_similar().contains(&(0, 1)));
    }

    #[test]
    fn grid_rank_space_window_is_sound_on_scatter() {
        // Deterministic scatter across many grid rows: every truly
        // similar pair must survive (candidate or known-similar), and
        // every known-similar pair must truly be similar — the rank-space
        // neighbor window may skip only provably-dissimilar cell pairs.
        let mut pts = Vec::new();
        let mut s = 0x12345678u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 16) % 1000) as f64 / 10.0
        };
        for _ in 0..200 {
            let x = next();
            let y = next();
            pts.push((x, y));
        }
        let r = 7.0;
        let g = GridCandidates::try_new(&pts, r).expect("grid applies");
        let survivors = not_pruned(&g);
        let known: std::collections::HashSet<(u32, u32)> =
            g.known_similar().iter().copied().collect();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                let pair = (i as u32, j as u32);
                if d2 <= r * r * (1.0 - 1e-6) {
                    assert!(
                        survivors.binary_search(&pair).is_ok(),
                        "similar pair {pair:?} was pruned"
                    );
                }
                if known.contains(&pair) {
                    assert!(d2 <= r * r * (1.0 + 1e-6), "{pair:?} known but dissimilar");
                }
            }
        }
    }

    #[test]
    fn grid_rejects_unsound_inputs() {
        assert!(GridCandidates::try_new(&[(0.0, 0.0)], 0.0).is_none());
        assert!(GridCandidates::try_new(&[(f64::NAN, 0.0)], 1.0).is_none());
        assert!(GridCandidates::try_new(&[(f64::INFINITY, 0.0)], 1.0).is_none());
        // Quotient past the cell guard: fall back.
        assert!(GridCandidates::try_new(&[(1e18, 0.0)], 1e-6).is_none());
        // r² overflows to infinity: the bound comparisons would
        // degenerate (a pair at distance 1.0625·r was classified
        // known-similar) — must fall back.
        let r = 1e160;
        assert!(GridCandidates::try_new(&[(0.0, 0.0), (17.0 * r / 16.0, 0.0)], r).is_none());
    }

    #[test]
    fn grid_negative_r_prunes_everything() {
        let g = GridCandidates::try_new(&[(0.0, 0.0), (0.0, 0.0)], -1.0).expect("empty set");
        assert_eq!(g.num_candidates(), 0);
    }

    #[test]
    fn inverted_classifies_three_ways() {
        let a: &[(u32, f64)] = &[(1, 1.0), (2, 1.0)];
        let b: &[(u32, f64)] = &[(1, 1.0), (3, 1.0)];
        let c: &[(u32, f64)] = &[(7, 1.0), (8, 1.0)];
        let ix = InvertedIndexCandidates::try_new(&[a, b, c], false, 0.2).expect("index applies");
        // WJ(a, b) = 1/3 ≥ 0.2: the accumulator proves it similar with
        // zero metric evaluations.
        assert!(ix.known_similar().contains(&(0, 1)));
        // Disjoint keyword sets never touch the accumulator: dissimilar
        // for free.
        let survivors = not_pruned(&ix);
        assert!(!survivors.contains(&(0, 2)));
        assert!(!survivors.contains(&(1, 2)));
    }

    #[test]
    fn inverted_empty_lists_pair_with_each_other() {
        let e: &[(u32, f64)] = &[];
        let a: &[(u32, f64)] = &[(1, 1.0)];
        let ix = InvertedIndexCandidates::try_new(&[e, a, e], false, 0.5).expect("index applies");
        // Empty-vs-empty similarity is 1.0 by convention: known similar.
        // Empty-vs-nonempty is 0.0: pruned.
        assert!(ix.known_similar().contains(&(0, 2)));
        let survivors = not_pruned(&ix);
        assert!(!survivors.contains(&(0, 1)));
        assert!(!survivors.contains(&(1, 2)));
    }

    #[test]
    fn inverted_threshold_above_one_prunes_everything() {
        let a: &[(u32, f64)] = &[(1, 1.0)];
        let ix = InvertedIndexCandidates::try_new(&[a, a], false, 1.5).expect("index applies");
        assert_eq!(ix.num_candidates(), 0);
        assert!(ix.known_similar().is_empty());
    }

    #[test]
    fn inverted_exact_threshold_hits_are_verified_not_assumed() {
        // Identical lists at r = 1.0 sit exactly on the threshold: the
        // uncertainty band must send them to verification.
        let a: &[(u32, f64)] = &[(1, 2.0), (5, 1.0)];
        let ix = InvertedIndexCandidates::try_new(&[a, a], false, 1.0).expect("index applies");
        assert_eq!(collect(&ix), vec![(0, 1)]);
        assert!(ix.known_similar().is_empty());
    }

    #[test]
    fn inverted_rejects_unsound_inputs() {
        let a: &[(u32, f64)] = &[(1, 1.0)];
        let neg: &[(u32, f64)] = &[(1, -1.0)];
        let unsorted: &[(u32, f64)] = &[(5, 1.0), (1, 1.0)];
        let dup: &[(u32, f64)] = &[(1, 1.0), (1, 2.0)];
        assert!(InvertedIndexCandidates::try_new(&[a], false, 0.0).is_none());
        assert!(InvertedIndexCandidates::try_new(&[a], false, -0.5).is_none());
        assert!(InvertedIndexCandidates::try_new(&[a], false, f64::NAN).is_none());
        assert!(InvertedIndexCandidates::try_new(&[a, neg], false, 0.5).is_none());
        assert!(InvertedIndexCandidates::try_new(&[a, unsorted], false, 0.5).is_none());
        assert!(InvertedIndexCandidates::try_new(&[a, dup], true, 0.5).is_none());
        // Unweighted Jaccard ignores weights, so negative weights are fine.
        assert!(InvertedIndexCandidates::try_new(&[a, neg], true, 0.5).is_some());
    }

    #[test]
    fn inverted_prunes_size_skew() {
        // |A| = 1, |B| = 10 sharing a keyword: Jaccard = 1/10 < 0.5, so
        // the accumulator proves the pair dissimilar with zero
        // evaluations.
        let small: &[(u32, f64)] = &[(1, 1.0)];
        let big: Vec<(u32, f64)> = (1..=10).map(|t| (t, 1.0)).collect();
        let ix = InvertedIndexCandidates::try_new(&[small, &big], true, 0.5).expect("index");
        assert_eq!(ix.num_candidates(), 0);
        assert!(ix.known_similar().is_empty());
    }
}
