//! Dataset snapshots: the attribute section and the one-call dataset
//! writer/reader on top of the `kr_graph::snapshot` container.
//!
//! A dataset snapshot is one `.krb` file holding the densified graph,
//! the original-id map, and the attribute table with its natural metric
//! — everything `kr-server` needs to host a real dataset without
//! re-parsing text files. The graph sections belong to `kr_graph`; this
//! module owns the `ATTRIBUTES` section payload:
//!
//! ```text
//! family  u32 LE   1 = keywords, 2 = points, 3 = vectors
//! metric  u32 LE   1 = jaccard, 2 = weighted jaccard, 3 = euclidean, 4 = cosine
//! n       u64 LE   vertices covered
//! points:   n × (x f64, y f64)            (f64 = IEEE-754 bits, LE)
//! keywords: (n + 1) × offset u64, then per entry (keyword u32, weight f64)
//! vectors:  dim u64, then n × dim × f64
//! ```
//!
//! Decoding rebuilds the table through the validating constructors, so a
//! crafted payload that passes the checksum still cannot smuggle in an
//! unsorted keyword list or ragged vector rows.

use crate::attributes::AttributeTable;
use crate::metrics::Metric;
use kr_graph::io::LoadedGraph;
use kr_graph::snapshot::{
    add_graph_sections, get_u32, get_u64, put_u32, put_u64, read_graph_sections, section, Snapshot,
    SnapshotError, SnapshotWriter,
};
use kr_graph::Graph;
use std::io::Write;
use std::path::Path;

/// Attribute family codes in the section payload.
mod family {
    pub const KEYWORDS: u32 = 1;
    pub const POINTS: u32 = 2;
    pub const VECTORS: u32 = 3;
}

fn metric_code(metric: Metric) -> u32 {
    match metric {
        Metric::Jaccard => 1,
        Metric::WeightedJaccard => 2,
        Metric::Euclidean => 3,
        Metric::Cosine => 4,
    }
}

fn metric_from_code(code: u32) -> Result<Metric, SnapshotError> {
    match code {
        1 => Ok(Metric::Jaccard),
        2 => Ok(Metric::WeightedJaccard),
        3 => Ok(Metric::Euclidean),
        4 => Ok(Metric::Cosine),
        other => Err(SnapshotError::Malformed(format!(
            "unknown metric code {other}"
        ))),
    }
}

/// True when `metric` can evaluate over the attribute family (mirrors
/// the `Metric::evaluate` match arms).
fn metric_compatible(metric: Metric, attrs: &AttributeTable) -> bool {
    matches!(
        (metric, attrs),
        (Metric::Jaccard, AttributeTable::Keywords(_))
            | (Metric::WeightedJaccard, AttributeTable::Keywords(_))
            | (Metric::Euclidean, AttributeTable::Points(_))
            | (Metric::Euclidean, AttributeTable::Vectors(_))
            | (Metric::Cosine, AttributeTable::Vectors(_))
    )
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(SnapshotError::Malformed(format!(
                "attribute section ends inside {what}"
            ))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        self.take(4, what).map(|b| get_u32(b, 0))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        self.take(8, what).map(|b| get_u64(b, 0))
    }

    fn f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn count(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .ok()
            // An honest count can never exceed the section byte length,
            // so this also rejects allocation-bomb counts up front.
            .filter(|&v| v <= self.bytes.len())
            .ok_or_else(|| {
                SnapshotError::Malformed(format!("{what} count {v} exceeds the section payload"))
            })
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(format!(
                "attribute section has {} trailing bytes",
                self.bytes.len() - self.at
            )))
        }
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Encodes the attribute table + metric as an `ATTRIBUTES` section
/// payload.
///
/// # Panics
/// Panics when the metric cannot evaluate over the attribute family —
/// such a pair is unusable everywhere in the system, so writing it into
/// a snapshot is a caller bug, not a data condition.
pub fn encode_attributes(attrs: &AttributeTable, metric: Metric) -> Vec<u8> {
    assert!(
        metric_compatible(metric, attrs),
        "metric {metric:?} cannot evaluate over {attrs:?}"
    );
    let mut out = Vec::new();
    match attrs {
        AttributeTable::Keywords(lists) => {
            put_u32(&mut out, family::KEYWORDS);
            put_u32(&mut out, metric_code(metric));
            put_u64(&mut out, lists.len() as u64);
            let mut acc = 0u64;
            put_u64(&mut out, 0);
            for list in lists {
                acc += list.len() as u64;
                put_u64(&mut out, acc);
            }
            for list in lists {
                for &(kw, w) in list {
                    put_u32(&mut out, kw);
                    put_f64(&mut out, w);
                }
            }
        }
        AttributeTable::Points(pts) => {
            put_u32(&mut out, family::POINTS);
            put_u32(&mut out, metric_code(metric));
            put_u64(&mut out, pts.len() as u64);
            for &(x, y) in pts {
                put_f64(&mut out, x);
                put_f64(&mut out, y);
            }
        }
        AttributeTable::Vectors(vecs) => {
            put_u32(&mut out, family::VECTORS);
            put_u32(&mut out, metric_code(metric));
            put_u64(&mut out, vecs.len() as u64);
            let dim = vecs.first().map_or(0, Vec::len);
            put_u64(&mut out, dim as u64);
            for v in vecs {
                for &x in v {
                    put_f64(&mut out, x);
                }
            }
        }
    }
    out
}

/// Decodes an `ATTRIBUTES` section payload. Every structural property is
/// re-validated; corrupt input yields a typed error, never a panic.
pub fn decode_attributes(bytes: &[u8]) -> Result<(AttributeTable, Metric), SnapshotError> {
    let mut c = Cursor { bytes, at: 0 };
    let fam = c.u32("attribute family")?;
    let metric = metric_from_code(c.u32("metric code")?)?;
    let n = c.count("vertex")?;
    let table = match fam {
        family::KEYWORDS => {
            let mut offsets = Vec::with_capacity(n + 1);
            for _ in 0..=n {
                offsets.push(c.u64("keyword offsets")?);
            }
            if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(SnapshotError::Malformed(
                    "keyword offsets are not monotone from 0".to_string(),
                ));
            }
            let total = offsets[n];
            let total = usize::try_from(total)
                .ok()
                .filter(|&t| t <= bytes.len())
                .ok_or_else(|| {
                    SnapshotError::Malformed(format!(
                        "keyword entry count {total} exceeds the section payload"
                    ))
                })?;
            let mut lists = Vec::with_capacity(n);
            let mut flat = Vec::with_capacity(total);
            for _ in 0..total {
                let kw = c.u32("keyword id")?;
                let w = c.f64("keyword weight")?;
                if !w.is_finite() || w < 0.0 {
                    return Err(SnapshotError::Malformed(format!(
                        "keyword weight {w} is not a finite non-negative number"
                    )));
                }
                flat.push((kw, w));
            }
            for v in 0..n {
                let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
                lists.push(flat[start..end].to_vec());
            }
            // The constructor re-sorts and merges duplicates: a
            // well-formed payload passes through byte-identically, a
            // crafted unsorted one is repaired instead of breaking the
            // merge-based metrics downstream.
            AttributeTable::keywords(lists)
        }
        family::POINTS => {
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                let x = c.f64("point x")?;
                let y = c.f64("point y")?;
                pts.push((x, y));
            }
            AttributeTable::points(pts)
        }
        family::VECTORS => {
            let dim = c.count("vector dimension")?;
            let mut vecs = Vec::with_capacity(n);
            for _ in 0..n {
                let mut v = Vec::with_capacity(dim);
                for _ in 0..dim {
                    v.push(c.f64("vector entry")?);
                }
                vecs.push(v);
            }
            // Rows are rectangular by construction, so the panicking
            // dimension check in the constructor cannot fire.
            AttributeTable::vectors(vecs)
        }
        other => {
            return Err(SnapshotError::Malformed(format!(
                "unknown attribute family {other}"
            )))
        }
    };
    c.done()?;
    if !metric_compatible(metric, &table) {
        return Err(SnapshotError::Malformed(format!(
            "metric {metric:?} cannot evaluate over the stored attribute family"
        )));
    }
    Ok((table, metric))
}

/// A fully decoded dataset snapshot.
#[derive(Debug)]
pub struct DatasetSnapshot {
    /// The densified graph.
    pub graph: Graph,
    /// `original_ids[v]` is the id vertex `v` had in the source files.
    pub original_ids: Vec<u64>,
    /// Vertex attributes.
    pub attributes: AttributeTable,
    /// The natural metric for the attributes.
    pub metric: Metric,
    /// Unknown optional section kinds skipped on load (forward compat:
    /// written by a newer minor version).
    pub skipped_sections: Vec<u32>,
}

/// The section kinds this reader understands.
const KNOWN_SECTIONS: [u32; 4] = [
    section::GRAPH_OFFSETS,
    section::GRAPH_NEIGHBORS,
    section::ORIGINAL_IDS,
    section::ATTRIBUTES,
];

/// Serializes a dataset snapshot to bytes. Deterministic byte for byte —
/// the golden fixtures pin the output.
///
/// # Panics
/// Panics when `original_ids`/`attributes` do not cover the graph's
/// vertices or the metric does not fit the attribute family (caller
/// bugs; see [`encode_attributes`]).
pub fn snapshot_to_bytes(
    graph: &Graph,
    original_ids: &[u64],
    attributes: &AttributeTable,
    metric: Metric,
) -> Vec<u8> {
    assert_eq!(
        original_ids.len(),
        graph.num_vertices(),
        "original-id map must cover every vertex"
    );
    assert_eq!(
        attributes.len(),
        graph.num_vertices(),
        "attribute table must cover every vertex"
    );
    let mut w = SnapshotWriter::new();
    add_graph_sections(&mut w, graph, original_ids);
    w.add_section(
        section::ATTRIBUTES,
        0,
        encode_attributes(attributes, metric),
    );
    w.to_bytes()
}

/// Writes a dataset snapshot to `writer` in one sequential pass.
pub fn write_snapshot<W: Write>(
    mut writer: W,
    graph: &Graph,
    original_ids: &[u64],
    attributes: &AttributeTable,
    metric: Metric,
) -> Result<(), SnapshotError> {
    writer.write_all(&snapshot_to_bytes(graph, original_ids, attributes, metric))?;
    writer.flush()?;
    Ok(())
}

/// Writes a dataset snapshot file.
pub fn write_snapshot_file(
    path: impl AsRef<Path>,
    graph: &Graph,
    original_ids: &[u64],
    attributes: &AttributeTable,
    metric: Metric,
) -> Result<(), SnapshotError> {
    write_snapshot(
        std::fs::File::create(path)?,
        graph,
        original_ids,
        attributes,
        metric,
    )
}

/// Decodes a dataset from a verified container.
pub fn read_snapshot(snapshot: &Snapshot) -> Result<DatasetSnapshot, SnapshotError> {
    let skipped_sections = snapshot.check_unknown_sections(&KNOWN_SECTIONS)?;
    let LoadedGraph {
        graph,
        original_ids,
        ..
    } = read_graph_sections(snapshot)?;
    let (attributes, metric) = decode_attributes(snapshot.require(section::ATTRIBUTES)?)?;
    if attributes.len() != graph.num_vertices() {
        return Err(SnapshotError::Malformed(format!(
            "attribute table covers {} vertices, graph has {}",
            attributes.len(),
            graph.num_vertices()
        )));
    }
    Ok(DatasetSnapshot {
        graph,
        original_ids,
        attributes,
        metric,
        skipped_sections,
    })
}

/// Parses, verifies, and decodes a dataset snapshot from raw bytes.
pub fn read_snapshot_bytes(bytes: Vec<u8>) -> Result<DatasetSnapshot, SnapshotError> {
    read_snapshot(&Snapshot::from_bytes(bytes)?)
}

/// Reads a dataset snapshot file.
pub fn read_snapshot_file(path: impl AsRef<Path>) -> Result<DatasetSnapshot, SnapshotError> {
    read_snapshot_bytes(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_dataset() -> (Graph, Vec<u64>, AttributeTable, Metric) {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        (
            g,
            vec![10, 20, 30],
            AttributeTable::points(vec![(0.0, 0.0), (1.5, -2.25), (100.0, 3.0)]),
            Metric::Euclidean,
        )
    }

    fn keyword_dataset() -> (Graph, Vec<u64>, AttributeTable, Metric) {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        (
            g,
            vec![7, 8, 9],
            AttributeTable::keywords(vec![
                vec![(1, 2.0), (5, 0.5)],
                vec![],
                vec![(1, 1.0), (2, 1.0), (9, 4.0)],
            ]),
            Metric::WeightedJaccard,
        )
    }

    #[test]
    fn dataset_roundtrip_points_and_keywords() {
        for (g, ids, attrs, metric) in [point_dataset(), keyword_dataset()] {
            let bytes = snapshot_to_bytes(&g, &ids, &attrs, metric);
            let ds = read_snapshot_bytes(bytes).unwrap();
            assert_eq!(ds.graph, g);
            assert_eq!(ds.original_ids, ids);
            assert_eq!(ds.attributes, attrs);
            assert_eq!(ds.metric, metric);
            assert!(ds.skipped_sections.is_empty());
        }
    }

    #[test]
    fn vectors_roundtrip() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let attrs = AttributeTable::vectors(vec![vec![1.0, 2.0, 3.0], vec![-4.0, 0.5, 0.0]]);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let bytes = snapshot_to_bytes(&g, &[1, 2], &attrs, metric);
            let ds = read_snapshot_bytes(bytes).unwrap();
            assert_eq!(ds.attributes, attrs);
            assert_eq!(ds.metric, metric);
        }
    }

    #[test]
    fn writing_is_deterministic() {
        let (g, ids, attrs, metric) = keyword_dataset();
        assert_eq!(
            snapshot_to_bytes(&g, &ids, &attrs, metric),
            snapshot_to_bytes(&g, &ids, &attrs, metric)
        );
    }

    #[test]
    fn incompatible_metric_rejected_on_decode() {
        // Euclidean over keywords: forge the metric code.
        let attrs = AttributeTable::keywords(vec![vec![(1, 1.0)]]);
        let mut payload = encode_attributes(&attrs, Metric::Jaccard);
        payload[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            decode_attributes(&payload),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn attribute_payload_corruption_is_typed() {
        let (_, _, attrs, metric) = keyword_dataset();
        let good = encode_attributes(&attrs, metric);
        // Truncate at every byte boundary: typed error or (for a prefix
        // that happens to decode) a structurally valid table — never a
        // panic. The container checksum normally rejects these before
        // decode; this exercises the decoder's own bounds checks.
        for cut in 0..good.len() {
            let _ = decode_attributes(&good[..cut]);
        }
        // Unknown family code.
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(&77u32.to_le_bytes());
        assert!(matches!(
            decode_attributes(&bad),
            Err(SnapshotError::Malformed(_))
        ));
        // Unknown metric code.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_attributes(&bad),
            Err(SnapshotError::Malformed(_))
        ));
        // Non-finite keyword weight.
        let mut bad = good;
        let weight_at = bad.len() - 8;
        bad[weight_at..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            decode_attributes(&bad),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn mismatched_attribute_coverage_rejected() {
        // Hand-assemble a container whose attribute table covers fewer
        // vertices than the graph.
        let (g, ids, _, _) = point_dataset();
        let mut w = SnapshotWriter::new();
        add_graph_sections(&mut w, &g, &ids);
        let small = AttributeTable::points(vec![(0.0, 0.0)]);
        w.add_section(
            section::ATTRIBUTES,
            0,
            encode_attributes(&small, Metric::Euclidean),
        );
        assert!(matches!(
            read_snapshot_bytes(w.to_bytes()),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
