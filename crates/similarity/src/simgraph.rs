//! Similarity-graph and dissimilarity-list materialization.
//!
//! Section 3 defines the *similarity graph* `G'`: same vertices, an edge
//! between every similar pair. The clique-based baseline materializes `G'`
//! per component; the advanced search instead stores only the (sparse)
//! **dissimilar** pairs inside each candidate component, which is exactly
//! what the `DP(·)` counters of the paper range over.

use crate::oracle::SimilarityOracle;
use kr_graph::{Csr, Graph, GraphBuilder, VertexId};

/// Dissimilarity lists over a renumbered vertex set `0..n`, stored in CSR
/// form: `row(v)` holds the vertices dissimilar to `v` (sorted), backed by
/// one flat arena instead of `n` separate allocations.
#[derive(Debug, Clone)]
pub struct DissimilarityLists {
    /// Per-vertex sorted dissimilar partners in CSR form.
    pub csr: Csr,
    /// Total number of dissimilar (unordered) pairs.
    pub num_pairs: usize,
}

impl DissimilarityLists {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.csr.num_rows()
    }

    /// True iff there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.csr.is_empty()
    }

    /// Sorted dissimilar partners of `u`.
    pub fn row(&self, u: VertexId) -> &[VertexId] {
        self.csr.row(u)
    }

    /// Whether `u` and `v` are dissimilar, via binary search.
    pub fn are_dissimilar(&self, u: VertexId, v: VertexId) -> bool {
        self.csr.contains(u, v)
    }
}

/// Builds the similarity graph over `members` (a set of *global* vertex
/// ids), renumbered to `0..members.len()` in the order given.
///
/// `O(|members|^2)` metric evaluations — this is the cost the clique-based
/// baseline pays and the paper's advanced algorithms avoid.
pub fn build_similarity_graph<O: SimilarityOracle>(oracle: &O, members: &[VertexId]) -> Graph {
    let n = members.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if oracle.is_similar(members[i], members[j]) {
                b.add_edge(i as VertexId, j as VertexId);
            }
        }
    }
    b.build()
}

/// Builds dissimilarity lists over `members` (global ids), renumbered to
/// local ids `0..members.len()` in the order given.
///
/// Emits CSR directly: one oracle pass collects the directed pairs, then
/// a counting sort lays them into the flat arena — no intermediate
/// `Vec<Vec<_>>` and no per-vertex allocations.
pub fn build_dissimilarity_lists<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
) -> DissimilarityLists {
    let n = members.len();
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if !oracle.is_similar(members[i], members[j]) {
                pairs.push((i as VertexId, j as VertexId));
                pairs.push((j as VertexId, i as VertexId));
            }
        }
    }
    let num_pairs = pairs.len() / 2;
    DissimilarityLists {
        csr: Csr::from_pairs(n, &pairs),
        num_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeTable;
    use crate::metrics::Metric;
    use crate::oracle::{TableOracle, Threshold};

    fn geo_oracle() -> TableOracle {
        TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(2.5),
        )
    }

    #[test]
    fn similarity_graph_edges() {
        let o = geo_oracle();
        let g = build_similarity_graph(&o, &[0, 1, 2, 3]);
        // 0-1, 0-2, 1-2 similar; 3 is far from everyone.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn dissimilarity_lists_complement() {
        let o = geo_oracle();
        let d = build_dissimilarity_lists(&o, &[0, 1, 2, 3]);
        assert_eq!(d.num_pairs, 3); // 3 vs each of 0,1,2
        assert_eq!(d.row(3), &[0, 1, 2]);
        assert!(d.are_dissimilar(0, 3));
        assert!(!d.are_dissimilar(0, 1));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn renumbering_respects_member_order() {
        let o = geo_oracle();
        // Members in reversed order: local 0 = global 3.
        let d = build_dissimilarity_lists(&o, &[3, 2, 1, 0]);
        assert_eq!(d.row(0), &[1, 2, 3]);
        assert_eq!(d.num_pairs, 3);
    }

    #[test]
    fn simgraph_and_dissim_partition_pairs() {
        let o = geo_oracle();
        let members = [0, 1, 2, 3];
        let g = build_similarity_graph(&o, &members);
        let d = build_dissimilarity_lists(&o, &members);
        let n = members.len();
        assert_eq!(g.num_edges() + d.num_pairs, n * (n - 1) / 2);
    }

    #[test]
    fn empty_members() {
        let o = geo_oracle();
        let g = build_similarity_graph(&o, &[]);
        assert_eq!(g.num_vertices(), 0);
        let d = build_dissimilarity_lists(&o, &[]);
        assert!(d.is_empty());
    }
}
