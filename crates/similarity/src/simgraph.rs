//! Similarity-graph and dissimilarity-list materialization.
//!
//! Section 3 defines the *similarity graph* `G'`: same vertices, an edge
//! between every similar pair. The clique-based baseline materializes `G'`
//! per component; the advanced search instead stores only the (sparse)
//! **dissimilar** pairs inside each candidate component, which is exactly
//! what the `DP(·)` counters of the paper range over.
//!
//! Since PR 4 both builders are **index-accelerated**: the oracle's
//! [`SimilarityOracle::candidates`] hook produces a sound candidate set
//! (spatial grid for Euclidean, inverted keyword index for Jaccard — see
//! [`crate::candidates`]), only candidates are verified with the metric,
//! and every out-of-candidate pair is classified dissimilar for free. The
//! output is **byte-identical** to the brute-force reference (kept as
//! [`build_similarity_graph_brute`] / [`build_dissimilarity_lists_brute`]
//! and property-tested against the indexed path); only the number of
//! metric evaluations changes, which [`DissimilarityLists::oracle_evals`]
//! records.

use crate::oracle::SimilarityOracle;
use kr_graph::{Csr, Graph, GraphBuilder, VertexId};

/// Dissimilarity lists over a renumbered vertex set `0..n`, stored in CSR
/// form: `row(v)` holds the vertices dissimilar to `v` (sorted), backed by
/// one flat arena instead of `n` separate allocations.
#[derive(Debug, Clone)]
pub struct DissimilarityLists {
    /// Per-vertex sorted dissimilar partners in CSR form.
    pub csr: Csr,
    /// Total number of dissimilar (unordered) pairs.
    pub num_pairs: usize,
    /// Metric evaluations the build spent (brute force pays
    /// `n·(n-1)/2`; the candidate indexes pay one per candidate pair).
    pub oracle_evals: u64,
}

impl DissimilarityLists {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.csr.num_rows()
    }

    /// True iff there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.csr.is_empty()
    }

    /// Sorted dissimilar partners of `u`.
    pub fn row(&self, u: VertexId) -> &[VertexId] {
        self.csr.row(u)
    }

    /// Whether `u` and `v` are dissimilar, via binary search.
    pub fn are_dissimilar(&self, u: VertexId, v: VertexId) -> bool {
        self.csr.contains(u, v)
    }
}

/// Process-global `similarity.*` registry counters (see `kr_obs`):
/// cumulative metric evaluations, dissimilarity-list builds, and
/// materialized dissimilar pairs. Per-query figures stay on
/// [`DissimilarityLists::oracle_evals`] and flow into the server's
/// stats frame; these aggregates feed the `metrics` wire request.
struct SimObs {
    oracle_evals: std::sync::Arc<kr_obs::Counter>,
    dissim_builds: std::sync::Arc<kr_obs::Counter>,
    dissim_pairs: std::sync::Arc<kr_obs::Counter>,
}

fn sim_obs() -> &'static SimObs {
    static OBS: std::sync::OnceLock<SimObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = kr_obs::global();
        SimObs {
            oracle_evals: reg.counter("similarity.oracle_evals"),
            dissim_builds: reg.counter("similarity.dissim_builds"),
            dissim_pairs: reg.counter("similarity.dissim_pairs"),
        }
    })
}

/// Verifies the candidate set serially; returns the similar pairs — the
/// index's known-similar pairs (free) followed by the verified
/// candidates, as local `(i, j)`, `i < j` — and the number of metric
/// evaluations spent.
fn verify_candidates<O: SimilarityOracle + ?Sized>(
    oracle: &O,
    members: &[VertexId],
) -> (Vec<(VertexId, VertexId)>, u64) {
    let index = oracle.candidates(members);
    let mut similar = index.known_similar().to_vec();
    let mut evals = 0u64;
    index.for_each(&mut |i, j| {
        evals += 1;
        if oracle.is_similar(members[i as usize], members[j as usize]) {
            similar.push((i, j));
        }
    });
    (similar, evals)
}

/// Candidate count below which sharding is pure overhead.
const MIN_SHARDED_CANDIDATES: usize = 2048;

/// [`verify_candidates`], shard-split across `pool`: the candidate list
/// is chunked, each chunk verified on a worker, and the per-chunk results
/// concatenated in chunk order — the output is identical to the serial
/// path, including order.
fn verify_candidates_on<O: SimilarityOracle + Sync + ?Sized>(
    oracle: &O,
    members: &[VertexId],
    pool: &rayon::ThreadPool,
) -> (Vec<(VertexId, VertexId)>, u64) {
    let threads = pool.current_num_threads();
    if threads <= 1 {
        return verify_candidates(oracle, members);
    }
    let index = oracle.candidates(members);
    // Only indexes that already hold a materialized pair list are worth
    // sharding; collecting a lazy index (the all-pairs fallback) would
    // allocate an O(n²) transient just to chunk it — stream it serially
    // instead, exactly like the pre-index preprocessing did.
    let Some(candidates) = index.as_pairs() else {
        let mut similar = index.known_similar().to_vec();
        let mut evals = 0u64;
        index.for_each(&mut |i, j| {
            evals += 1;
            if oracle.is_similar(members[i as usize], members[j as usize]) {
                similar.push((i, j));
            }
        });
        return (similar, evals);
    };
    if candidates.len() < MIN_SHARDED_CANDIDATES {
        let mut similar = index.known_similar().to_vec();
        similar.extend(
            candidates
                .iter()
                .copied()
                .filter(|&(i, j)| oracle.is_similar(members[i as usize], members[j as usize])),
        );
        return (similar, candidates.len() as u64);
    }
    let chunk = (candidates.len() / (threads * 4)).max(MIN_SHARDED_CANDIDATES / 4);
    // Slot 0 holds the index's known-similar pairs so the concatenation
    // matches the serial path's order exactly (known first, then the
    // verified candidates in candidate order).
    let mut slots: Vec<Vec<(u32, u32)>> = vec![Vec::new(); candidates.len().div_ceil(chunk) + 1];
    slots[0] = index.known_similar().to_vec();
    pool.scope(|s| {
        for (slot, shard) in slots[1..].iter_mut().zip(candidates.chunks(chunk)) {
            s.spawn(move |_| {
                *slot = shard
                    .iter()
                    .copied()
                    .filter(|&(i, j)| oracle.is_similar(members[i as usize], members[j as usize]))
                    .collect();
            });
        }
    });
    (slots.concat(), candidates.len() as u64)
}

/// Builds the similarity graph over `members` (a set of *global* vertex
/// ids), renumbered to `0..members.len()` in the order given.
///
/// Index-accelerated: only candidate pairs are verified (see module
/// docs); the result equals [`build_similarity_graph_brute`].
pub fn build_similarity_graph<O: SimilarityOracle>(oracle: &O, members: &[VertexId]) -> Graph {
    let (similar, evals) = verify_candidates(oracle, members);
    sim_obs().oracle_evals.add(evals);
    let mut b = GraphBuilder::with_capacity(members.len(), similar.len());
    for (i, j) in similar {
        b.add_edge(i, j);
    }
    b.build()
}

/// Brute-force reference for [`build_similarity_graph`]:
/// `O(|members|²)` metric evaluations — this is the cost the clique-based
/// baseline used to pay and the candidate indexes avoid.
pub fn build_similarity_graph_brute<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
) -> Graph {
    let n = members.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if oracle.is_similar(members[i], members[j]) {
                b.add_edge(i as VertexId, j as VertexId);
            }
        }
    }
    b.build()
}

/// Components up to this many vertices take the bitmap complement path
/// (`n²/8` bytes of scratch, 2 MiB at the cap); larger ones fall back to
/// the CSR-merge complement.
const BITMAP_COMPLEMENT_MAX_N: usize = 4096;

/// Lays similar pairs out as the complementary dissimilarity CSR: every
/// unordered non-similar pair is emitted in both directions and packed
/// with the same counting sort the brute-force path used, so the layout
/// is byte-identical regardless of how the pairs were discovered.
fn complement_to_csr(
    n: usize,
    similar: Vec<(VertexId, VertexId)>,
    oracle_evals: u64,
) -> DissimilarityLists {
    let num_similar = similar.len();
    let total = n * n.saturating_sub(1) / 2;
    let num_pairs = total - num_similar;
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(num_pairs * 2);
    if n <= BITMAP_COMPLEMENT_MAX_N {
        // Dense n×n bitmap: no sorting anywhere — flags set per similar
        // pair, complement rows emitted in naturally ascending order.
        let mut bits = vec![0u64; (n * n).div_ceil(64)];
        let mut set = |i: usize, j: usize| {
            let at = i * n + j;
            bits[at / 64] |= 1u64 << (at % 64);
        };
        for &(i, j) in &similar {
            set(i as usize, j as usize);
            set(j as usize, i as usize);
        }
        for u in 0..n {
            for v in 0..n {
                let at = u * n + v;
                if v != u && bits[at / 64] & (1u64 << (at % 64)) == 0 {
                    pairs.push((u as VertexId, v as VertexId));
                }
            }
        }
    } else {
        let mut directed = Vec::with_capacity(num_similar * 2);
        for &(i, j) in &similar {
            directed.push((i, j));
            directed.push((j, i));
        }
        let sim = Csr::from_pairs(n, &directed);
        for u in 0..n as VertexId {
            let row = sim.row(u);
            let mut p = 0usize;
            for v in 0..n as VertexId {
                if v == u {
                    continue;
                }
                if p < row.len() && row[p] == v {
                    p += 1;
                    continue;
                }
                pairs.push((u, v));
            }
        }
    }
    debug_assert_eq!(pairs.len(), num_pairs * 2);
    let obs = sim_obs();
    obs.oracle_evals.add(oracle_evals);
    obs.dissim_builds.inc();
    obs.dissim_pairs.add(num_pairs as u64);
    DissimilarityLists {
        csr: Csr::from_pairs(n, &pairs),
        num_pairs,
        oracle_evals,
    }
}

/// Builds dissimilarity lists over `members` (global ids), renumbered to
/// local ids `0..members.len()` in the order given.
///
/// Index-accelerated: candidates from [`SimilarityOracle::candidates`]
/// are verified with the metric; every other pair goes straight into the
/// dissimilarity CSR with zero evaluations. Output is identical to
/// [`build_dissimilarity_lists_brute`], with
/// [`DissimilarityLists::oracle_evals`] recording the saving.
pub fn build_dissimilarity_lists<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
) -> DissimilarityLists {
    let (similar, evals) = verify_candidates(oracle, members);
    complement_to_csr(members.len(), similar, evals)
}

/// [`build_dissimilarity_lists`] with candidate verification shard-split
/// across `pool` (the query's one-pool-per-query worker pool). The result
/// — including the CSR layout — is identical to the serial build.
pub fn build_dissimilarity_lists_on<O: SimilarityOracle + Sync>(
    oracle: &O,
    members: &[VertexId],
    pool: &rayon::ThreadPool,
) -> DissimilarityLists {
    let (similar, evals) = verify_candidates_on(oracle, members, pool);
    complement_to_csr(members.len(), similar, evals)
}

/// Brute-force reference for [`build_dissimilarity_lists`]: one oracle
/// pass over all `|members|²/2` pairs, collecting the directed dissimilar
/// pairs, then a counting sort into the flat arena.
pub fn build_dissimilarity_lists_brute<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
) -> DissimilarityLists {
    let n = members.len();
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    let mut evals = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            evals += 1;
            if !oracle.is_similar(members[i], members[j]) {
                pairs.push((i as VertexId, j as VertexId));
                pairs.push((j as VertexId, i as VertexId));
            }
        }
    }
    let num_pairs = pairs.len() / 2;
    let obs = sim_obs();
    obs.oracle_evals.add(evals);
    obs.dissim_builds.inc();
    obs.dissim_pairs.add(num_pairs as u64);
    DissimilarityLists {
        csr: Csr::from_pairs(n, &pairs),
        num_pairs,
        oracle_evals: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeTable;
    use crate::metrics::Metric;
    use crate::oracle::{TableOracle, Threshold};

    fn geo_oracle() -> TableOracle {
        TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(2.5),
        )
    }

    #[test]
    fn similarity_graph_edges() {
        let o = geo_oracle();
        let g = build_similarity_graph(&o, &[0, 1, 2, 3]);
        // 0-1, 0-2, 1-2 similar; 3 is far from everyone.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn dissimilarity_lists_complement() {
        let o = geo_oracle();
        let d = build_dissimilarity_lists(&o, &[0, 1, 2, 3]);
        assert_eq!(d.num_pairs, 3); // 3 vs each of 0,1,2
        assert_eq!(d.row(3), &[0, 1, 2]);
        assert!(d.are_dissimilar(0, 3));
        assert!(!d.are_dissimilar(0, 1));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn indexed_build_skips_certain_pairs() {
        let o = geo_oracle();
        let d = build_dissimilarity_lists(&o, &[0, 1, 2, 3]);
        let brute = build_dissimilarity_lists_brute(&o, &[0, 1, 2, 3]);
        assert_eq!(brute.oracle_evals, 6);
        // Vertex 3 sits 48km from the cluster (provably dissimilar) and
        // the cluster pairs are within 2km « r (provably similar): the
        // grid classifies every pair without a single metric evaluation.
        assert_eq!(d.oracle_evals, 0);
        assert_eq!(d.csr, brute.csr);
        assert_eq!(d.num_pairs, brute.num_pairs);
    }

    #[test]
    fn sharded_build_matches_serial() {
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|i| ((i % 7) as f64 * 3.0, (i / 7) as f64 * 3.0))
            .collect();
        let o = TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(4.0),
        );
        let members: Vec<VertexId> = (0..40).collect();
        let serial = build_dissimilarity_lists(&o, &members);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("pool");
        let sharded = build_dissimilarity_lists_on(&o, &members, &pool);
        assert_eq!(serial.csr, sharded.csr);
        assert_eq!(serial.num_pairs, sharded.num_pairs);
        assert_eq!(serial.oracle_evals, sharded.oracle_evals);
    }

    #[test]
    fn renumbering_respects_member_order() {
        let o = geo_oracle();
        // Members in reversed order: local 0 = global 3.
        let d = build_dissimilarity_lists(&o, &[3, 2, 1, 0]);
        assert_eq!(d.row(0), &[1, 2, 3]);
        assert_eq!(d.num_pairs, 3);
    }

    #[test]
    fn simgraph_and_dissim_partition_pairs() {
        let o = geo_oracle();
        let members = [0, 1, 2, 3];
        let g = build_similarity_graph(&o, &members);
        let d = build_dissimilarity_lists(&o, &members);
        let n = members.len();
        assert_eq!(g.num_edges() + d.num_pairs, n * (n - 1) / 2);
    }

    #[test]
    fn empty_members() {
        let o = geo_oracle();
        let g = build_similarity_graph(&o, &[]);
        assert_eq!(g.num_vertices(), 0);
        let d = build_dissimilarity_lists(&o, &[]);
        assert!(d.is_empty());
        assert_eq!(d.oracle_evals, 0);
    }
}
