//! Similarity-graph and dissimilarity-list materialization.
//!
//! Section 3 defines the *similarity graph* `G'`: same vertices, an edge
//! between every similar pair. The clique-based baseline materializes `G'`
//! per component; the advanced search instead stores only the (sparse)
//! **dissimilar** pairs inside each candidate component, which is exactly
//! what the `DP(·)` counters of the paper range over.
//!
//! Since PR 4 both builders are **index-accelerated**: the oracle's
//! [`SimilarityOracle::candidates`] hook produces a sound candidate set
//! (spatial grid for Euclidean, inverted keyword index for Jaccard — see
//! [`crate::candidates`]), only candidates are verified with the metric,
//! and every out-of-candidate pair is classified dissimilar for free. The
//! output is **byte-identical** to the brute-force reference (kept as
//! [`build_similarity_graph_brute`] / [`build_dissimilarity_lists_brute`]
//! and property-tested against the indexed path); only the number of
//! metric evaluations changes, which [`DissimilarityLists::oracle_evals`]
//! records.

use crate::oracle::SimilarityOracle;
use kr_graph::{Csr, Graph, GraphBuilder, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Dissimilarity lists over a renumbered vertex set `0..n`, stored in CSR
/// form: `row(v)` holds the vertices dissimilar to `v` (sorted), backed by
/// one flat arena instead of `n` separate allocations.
#[derive(Debug, Clone)]
pub struct DissimilarityLists {
    /// Per-vertex sorted dissimilar partners in CSR form.
    pub csr: Csr,
    /// Total number of dissimilar (unordered) pairs.
    pub num_pairs: usize,
    /// Metric evaluations the build spent (brute force pays
    /// `n·(n-1)/2`; the candidate indexes pay one per candidate pair).
    pub oracle_evals: u64,
}

impl DissimilarityLists {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.csr.num_rows()
    }

    /// True iff there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.csr.is_empty()
    }

    /// Sorted dissimilar partners of `u`.
    pub fn row(&self, u: VertexId) -> &[VertexId] {
        self.csr.row(u)
    }

    /// Whether `u` and `v` are dissimilar, via binary search.
    pub fn are_dissimilar(&self, u: VertexId, v: VertexId) -> bool {
        self.csr.contains(u, v)
    }
}

/// Process-global `similarity.*` registry counters (see `kr_obs`):
/// cumulative metric evaluations, dissimilarity-list builds, and
/// materialized dissimilar pairs. Per-query figures stay on
/// [`DissimilarityLists::oracle_evals`] and flow into the server's
/// stats frame; these aggregates feed the `metrics` wire request.
/// `dissim_pairs` counts *materialized* pairs in both modes: the whole
/// complement for an eager build, only memoized rows for a lazy one —
/// `lazy_rows_materialized` / `lazy_rows_skipped` break the lazy
/// traffic down further.
struct SimObs {
    oracle_evals: std::sync::Arc<kr_obs::Counter>,
    dissim_builds: std::sync::Arc<kr_obs::Counter>,
    dissim_pairs: std::sync::Arc<kr_obs::Counter>,
    lazy_rows_materialized: std::sync::Arc<kr_obs::Counter>,
    lazy_rows_skipped: std::sync::Arc<kr_obs::Counter>,
}

fn sim_obs() -> &'static SimObs {
    static OBS: OnceLock<SimObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = kr_obs::global();
        SimObs {
            oracle_evals: reg.counter("similarity.oracle_evals"),
            dissim_builds: reg.counter("similarity.dissim_builds"),
            dissim_pairs: reg.counter("similarity.dissim_pairs"),
            lazy_rows_materialized: reg.counter("similarity.lazy_rows_materialized"),
            lazy_rows_skipped: reg.counter("similarity.lazy_rows_skipped"),
        }
    })
}

/// Lazily materialized dissimilarity lists: the complement of the
/// (sparse) similarity CSR, with per-vertex rows memoized on first
/// slice access.
///
/// On dissimilarity-heavy components the eager complement is `O(n²)`
/// output while the search only ever *slices* the rows of vertices it
/// branches on — everything else (counter updates, bounds, maximal
/// checks) is answered by streaming the complement of the similarity
/// row ([`LazyDissimilarity::for_each`]) or by arithmetic
/// ([`LazyDissimilarity::count`] is `n - 1 - |sim(u)|`). Streaming
/// visits partners in ascending order, exactly like an eager CSR row,
/// so consumers observe identical sequences in both modes.
#[derive(Debug)]
pub struct LazyDissimilarity {
    /// Similarity adjacency (both directions), the complement's source.
    sim: Csr,
    /// Total number of dissimilar (unordered) pairs — known exactly
    /// without materializing anything: `n(n-1)/2 - |sim|`.
    num_pairs: usize,
    /// Metric evaluations spent classifying the candidate pairs.
    oracle_evals: u64,
    /// Memoized complement rows; `OnceLock` makes materialization safe
    /// under concurrent sharing (`Arc<LocalComponent>` in the server).
    rows: Vec<OnceLock<Box<[VertexId]>>>,
    /// Rows materialized so far (monotone).
    materialized_rows: AtomicUsize,
    /// Total entries across materialized rows (monotone).
    materialized_entries: AtomicUsize,
}

impl LazyDissimilarity {
    /// Builds from the verified similar pairs (local `(i, j)`, `i < j`)
    /// over `n` vertices. No complement output is produced here.
    pub fn from_similar(n: usize, similar: &[(VertexId, VertexId)], oracle_evals: u64) -> Self {
        let mut directed = Vec::with_capacity(similar.len() * 2);
        for &(i, j) in similar {
            directed.push((i, j));
            directed.push((j, i));
        }
        let sim = Csr::from_pairs(n, &directed);
        let num_similar = sim.total_targets() / 2;
        let obs = sim_obs();
        obs.oracle_evals.add(oracle_evals);
        obs.dissim_builds.inc();
        LazyDissimilarity {
            num_pairs: n * n.saturating_sub(1) / 2 - num_similar,
            sim,
            oracle_evals,
            rows: (0..n).map(|_| OnceLock::new()).collect(),
            materialized_rows: AtomicUsize::new(0),
            materialized_entries: AtomicUsize::new(0),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.sim.num_rows()
    }

    /// True iff there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Total dissimilar (unordered) pairs — exact, `O(1)`.
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Metric evaluations the build spent.
    pub fn oracle_evals(&self) -> u64 {
        self.oracle_evals
    }

    /// Sorted dissimilar partners of `u`, materializing and memoizing
    /// the row on first access.
    pub fn row(&self, u: VertexId) -> &[VertexId] {
        self.rows[u as usize].get_or_init(|| {
            let mut out = Vec::with_capacity(self.count(u));
            self.complement_walk(u, |w| out.push(w));
            let obs = sim_obs();
            obs.lazy_rows_materialized.inc();
            obs.dissim_pairs.add(out.len() as u64);
            self.materialized_rows.fetch_add(1, Ordering::Relaxed);
            self.materialized_entries
                .fetch_add(out.len(), Ordering::Relaxed);
            out.into_boxed_slice()
        })
    }

    /// Streams the dissimilar partners of `u` in ascending order
    /// *without* memoizing: the memoized row if one exists, else a
    /// complement walk over the similarity row.
    pub fn for_each(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        if let Some(row) = self.rows[u as usize].get() {
            for &w in row.iter() {
                f(w);
            }
        } else {
            sim_obs().lazy_rows_skipped.inc();
            self.complement_walk(u, f);
        }
    }

    /// The memoized row of `u`, if a slice access already built it.
    /// Never materializes.
    #[inline]
    pub fn resident_row(&self, u: VertexId) -> Option<&[VertexId]> {
        self.rows[u as usize].get().map(|r| &r[..])
    }

    /// True iff any dissimilar partner of `u` satisfies `pred`. Stops at
    /// the first hit (unlike [`LazyDissimilarity::for_each`]) and never
    /// memoizes — the short-circuiting maximality checks rely on this.
    pub fn any_where(&self, u: VertexId, mut pred: impl FnMut(VertexId) -> bool) -> bool {
        if let Some(row) = self.rows[u as usize].get() {
            return row.iter().any(|&w| pred(w));
        }
        sim_obs().lazy_rows_skipped.inc();
        let row = self.sim.row(u);
        let mut p = 0usize;
        for v in 0..self.sim.num_rows() as VertexId {
            if v == u {
                continue;
            }
            if p < row.len() && row[p] == v {
                p += 1;
                continue;
            }
            if pred(v) {
                return true;
            }
        }
        false
    }

    /// Ascending walk of `{0..n} \ (sim(u) ∪ {u})`.
    fn complement_walk(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        let row = self.sim.row(u);
        let mut p = 0usize;
        for v in 0..self.sim.num_rows() as VertexId {
            if v == u {
                continue;
            }
            if p < row.len() && row[p] == v {
                p += 1;
                continue;
            }
            f(v);
        }
    }

    /// Whether `u` and `v` are dissimilar (`O(log |sim(u)|)`, no
    /// materialization).
    pub fn are_dissimilar(&self, u: VertexId, v: VertexId) -> bool {
        u != v && !self.sim.contains(u, v)
    }

    /// Number of dissimilar partners of `u` (`O(1)`, no
    /// materialization).
    pub fn count(&self, u: VertexId) -> usize {
        self.sim.num_rows() - 1 - self.sim.row_len(u)
    }

    /// Rows memoized so far.
    pub fn materialized_rows(&self) -> usize {
        self.materialized_rows.load(Ordering::Relaxed)
    }

    /// Directed entries across memoized rows (each unordered pair a row
    /// holds counts once here; a pair counts twice only once both
    /// endpoint rows materialize).
    pub fn materialized_entries(&self) -> usize {
        self.materialized_entries.load(Ordering::Relaxed)
    }

    /// Current heap footprint: the similarity CSR, the row table, and
    /// every memoized row. **Grows** as the search materializes rows —
    /// cache accounting must re-read it, not snapshot it at build time.
    pub fn heap_bytes(&self) -> usize {
        self.sim.heap_bytes()
            + self.rows.capacity() * std::mem::size_of::<OnceLock<Box<[VertexId]>>>()
            + self.materialized_entries() * std::mem::size_of::<VertexId>()
    }
}

impl Clone for LazyDissimilarity {
    fn clone(&self) -> Self {
        LazyDissimilarity {
            sim: self.sim.clone(),
            num_pairs: self.num_pairs,
            oracle_evals: self.oracle_evals,
            rows: self.rows.clone(),
            materialized_rows: AtomicUsize::new(self.materialized_rows()),
            materialized_entries: AtomicUsize::new(self.materialized_entries()),
        }
    }
}

impl PartialEq for LazyDissimilarity {
    /// Semantic equality: same complement, regardless of which rows
    /// happen to be memoized.
    fn eq(&self, other: &Self) -> bool {
        self.sim == other.sim
    }
}

impl Eq for LazyDissimilarity {}

/// How a component's dissimilarity structure is represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DissimMode {
    /// Pick per component: lazy for large dissimilarity-heavy
    /// components (≥ [`LAZY_MIN_N`] vertices with at least half of all
    /// pairs dissimilar), eager otherwise.
    #[default]
    Auto,
    /// Always materialize the full complement CSR up front.
    Eager,
    /// Always build the lazy view (tests force this on small inputs).
    Lazy,
}

/// Smallest component `Auto` will consider for the lazy representation:
/// below this the full complement is at most a few MB and the eager
/// build's single pass beats per-row bookkeeping.
pub const LAZY_MIN_N: usize = 1024;

/// Eager-or-lazy dissimilarity lists behind one interface. Eager
/// components keep byte-identical behavior (same CSR, same slices);
/// lazy ones answer everything from the similarity CSR, memoizing a
/// complement row only when [`DissimilarityView::row`] is called.
#[derive(Debug, Clone)]
pub enum DissimilarityView {
    /// Fully materialized complement (small or similarity-heavy
    /// components, and the brute-force reference path).
    Eager(DissimilarityLists),
    /// Complement-on-demand over the similarity CSR.
    Lazy(LazyDissimilarity),
}

impl DissimilarityView {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        match self {
            DissimilarityView::Eager(d) => d.len(),
            DissimilarityView::Lazy(d) => d.len(),
        }
    }

    /// True iff there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted dissimilar partners of `u` as a slice. Lazy views
    /// materialize and memoize the row on first access — callers that
    /// only need to *visit* the partners should use
    /// [`DissimilarityView::for_each`] instead.
    pub fn row(&self, u: VertexId) -> &[VertexId] {
        match self {
            DissimilarityView::Eager(d) => d.row(u),
            DissimilarityView::Lazy(d) => d.row(u),
        }
    }

    /// Visits the dissimilar partners of `u` in ascending order without
    /// materializing anything.
    #[inline(always)]
    pub fn for_each(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        match self {
            DissimilarityView::Eager(d) => {
                for &w in d.row(u) {
                    f(w);
                }
            }
            DissimilarityView::Lazy(d) => d.for_each(u, f),
        }
    }

    /// The row of `u` when it is resident in memory — always for eager
    /// views, memoized rows only for lazy ones. Never materializes.
    /// Hot per-node loops iterate the slice when one exists (measurably
    /// tighter codegen than the streamed visit) and fall back to
    /// [`DissimilarityView::for_each`] when it would force a build.
    #[inline]
    pub fn resident_row(&self, u: VertexId) -> Option<&[VertexId]> {
        match self {
            DissimilarityView::Eager(d) => Some(d.row(u)),
            DissimilarityView::Lazy(d) => d.resident_row(u),
        }
    }

    /// True iff any dissimilar partner of `u` satisfies `pred`,
    /// short-circuiting at the first hit. Never materializes.
    #[inline]
    pub fn any_where(&self, u: VertexId, mut pred: impl FnMut(VertexId) -> bool) -> bool {
        match self {
            DissimilarityView::Eager(d) => d.row(u).iter().any(|&w| pred(w)),
            DissimilarityView::Lazy(d) => d.any_where(u, pred),
        }
    }

    /// Whether `u` and `v` are dissimilar.
    pub fn are_dissimilar(&self, u: VertexId, v: VertexId) -> bool {
        match self {
            DissimilarityView::Eager(d) => d.are_dissimilar(u, v),
            DissimilarityView::Lazy(d) => d.are_dissimilar(u, v),
        }
    }

    /// Number of dissimilar partners of `u` (`O(1)` in both modes).
    pub fn count(&self, u: VertexId) -> usize {
        match self {
            DissimilarityView::Eager(d) => d.csr.row_len(u),
            DissimilarityView::Lazy(d) => d.count(u),
        }
    }

    /// Total dissimilar (unordered) pairs.
    pub fn num_pairs(&self) -> usize {
        match self {
            DissimilarityView::Eager(d) => d.num_pairs,
            DissimilarityView::Lazy(d) => d.num_pairs(),
        }
    }

    /// Metric evaluations the build spent.
    pub fn oracle_evals(&self) -> u64 {
        match self {
            DissimilarityView::Eager(d) => d.oracle_evals,
            DissimilarityView::Lazy(d) => d.oracle_evals(),
        }
    }

    /// True for the lazy representation.
    pub fn is_lazy(&self) -> bool {
        matches!(self, DissimilarityView::Lazy(_))
    }

    /// Rows memoized so far (0 for eager views — their rows were never
    /// *lazily* materialized).
    pub fn materialized_rows(&self) -> usize {
        match self {
            DissimilarityView::Eager(_) => 0,
            DissimilarityView::Lazy(d) => d.materialized_rows(),
        }
    }

    /// Directed dissimilar entries currently resident: the whole
    /// complement for eager views, only memoized rows for lazy ones.
    pub fn materialized_entries(&self) -> usize {
        match self {
            DissimilarityView::Eager(d) => d.csr.total_targets(),
            DissimilarityView::Lazy(d) => d.materialized_entries(),
        }
    }

    /// Current heap footprint in bytes. Lazy views grow as rows
    /// materialize.
    pub fn heap_bytes(&self) -> usize {
        match self {
            DissimilarityView::Eager(d) => d.csr.heap_bytes(),
            DissimilarityView::Lazy(d) => d.heap_bytes(),
        }
    }
}

impl PartialEq for DissimilarityView {
    /// Semantic equality: two views are equal iff they describe the
    /// same dissimilar-pair set, regardless of representation or
    /// memoization state (an eager build equals the lazy build over the
    /// same oracle verdicts).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DissimilarityView::Eager(a), DissimilarityView::Eager(b)) => a.csr == b.csr,
            (DissimilarityView::Lazy(a), DissimilarityView::Lazy(b)) => a == b,
            (a, b) => {
                if a.len() != b.len() || a.num_pairs() != b.num_pairs() {
                    return false;
                }
                (0..a.len() as VertexId).all(|u| {
                    let mut rows_match = true;
                    let mut bw: Vec<VertexId> = Vec::new();
                    b.for_each(u, |w| bw.push(w));
                    let mut i = 0usize;
                    a.for_each(u, |w| {
                        if i >= bw.len() || bw[i] != w {
                            rows_match = false;
                        }
                        i += 1;
                    });
                    rows_match && i == bw.len()
                })
            }
        }
    }
}

impl Eq for DissimilarityView {}

/// Verifies the candidate set serially; returns the similar pairs — the
/// index's known-similar pairs (free) followed by the verified
/// candidates, as local `(i, j)`, `i < j` — and the number of metric
/// evaluations spent.
fn verify_candidates<O: SimilarityOracle + ?Sized>(
    oracle: &O,
    members: &[VertexId],
) -> (Vec<(VertexId, VertexId)>, u64) {
    let index = oracle.candidates(members);
    let mut similar = index.known_similar().to_vec();
    let mut evals = 0u64;
    index.for_each(&mut |i, j| {
        evals += 1;
        if oracle.is_similar(members[i as usize], members[j as usize]) {
            similar.push((i, j));
        }
    });
    (similar, evals)
}

/// Candidate count below which sharding is pure overhead.
const MIN_SHARDED_CANDIDATES: usize = 2048;

/// [`verify_candidates`], shard-split across `pool`: the candidate list
/// is chunked, each chunk verified on a worker, and the per-chunk results
/// concatenated in chunk order — the output is identical to the serial
/// path, including order.
fn verify_candidates_on<O: SimilarityOracle + Sync + ?Sized>(
    oracle: &O,
    members: &[VertexId],
    pool: &rayon::ThreadPool,
) -> (Vec<(VertexId, VertexId)>, u64) {
    let threads = pool.current_num_threads();
    if threads <= 1 {
        return verify_candidates(oracle, members);
    }
    let index = oracle.candidates(members);
    // Only indexes that already hold a materialized pair list are worth
    // sharding; collecting a lazy index (the all-pairs fallback) would
    // allocate an O(n²) transient just to chunk it — stream it serially
    // instead, exactly like the pre-index preprocessing did.
    let Some(candidates) = index.as_pairs() else {
        let mut similar = index.known_similar().to_vec();
        let mut evals = 0u64;
        index.for_each(&mut |i, j| {
            evals += 1;
            if oracle.is_similar(members[i as usize], members[j as usize]) {
                similar.push((i, j));
            }
        });
        return (similar, evals);
    };
    if candidates.len() < MIN_SHARDED_CANDIDATES {
        let mut similar = index.known_similar().to_vec();
        similar.extend(
            candidates
                .iter()
                .copied()
                .filter(|&(i, j)| oracle.is_similar(members[i as usize], members[j as usize])),
        );
        return (similar, candidates.len() as u64);
    }
    let chunk = (candidates.len() / (threads * 4)).max(MIN_SHARDED_CANDIDATES / 4);
    // Slot 0 holds the index's known-similar pairs so the concatenation
    // matches the serial path's order exactly (known first, then the
    // verified candidates in candidate order).
    let mut slots: Vec<Vec<(u32, u32)>> = vec![Vec::new(); candidates.len().div_ceil(chunk) + 1];
    slots[0] = index.known_similar().to_vec();
    pool.scope(|s| {
        for (slot, shard) in slots[1..].iter_mut().zip(candidates.chunks(chunk)) {
            s.spawn(move |_| {
                *slot = shard
                    .iter()
                    .copied()
                    .filter(|&(i, j)| oracle.is_similar(members[i as usize], members[j as usize]))
                    .collect();
            });
        }
    });
    (slots.concat(), candidates.len() as u64)
}

/// Builds the similarity graph over `members` (a set of *global* vertex
/// ids), renumbered to `0..members.len()` in the order given.
///
/// Index-accelerated: only candidate pairs are verified (see module
/// docs); the result equals [`build_similarity_graph_brute`].
pub fn build_similarity_graph<O: SimilarityOracle>(oracle: &O, members: &[VertexId]) -> Graph {
    let (similar, evals) = verify_candidates(oracle, members);
    sim_obs().oracle_evals.add(evals);
    let mut b = GraphBuilder::with_capacity(members.len(), similar.len());
    for (i, j) in similar {
        b.add_edge(i, j);
    }
    b.build()
}

/// Brute-force reference for [`build_similarity_graph`]:
/// `O(|members|²)` metric evaluations — this is the cost the clique-based
/// baseline used to pay and the candidate indexes avoid.
pub fn build_similarity_graph_brute<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
) -> Graph {
    let n = members.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if oracle.is_similar(members[i], members[j]) {
                b.add_edge(i as VertexId, j as VertexId);
            }
        }
    }
    b.build()
}

/// Components up to this many vertices take the bitmap complement path
/// (`n²/8` bytes of scratch, 2 MiB at the cap); larger ones fall back to
/// the CSR-merge complement.
const BITMAP_COMPLEMENT_MAX_N: usize = 4096;

/// Lays similar pairs out as the complementary dissimilarity CSR: every
/// unordered non-similar pair is emitted in both directions and packed
/// with the same counting sort the brute-force path used, so the layout
/// is byte-identical regardless of how the pairs were discovered.
fn complement_to_csr(
    n: usize,
    similar: Vec<(VertexId, VertexId)>,
    oracle_evals: u64,
) -> DissimilarityLists {
    let num_similar = similar.len();
    let total = n * n.saturating_sub(1) / 2;
    let num_pairs = total - num_similar;
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(num_pairs * 2);
    if n <= BITMAP_COMPLEMENT_MAX_N {
        // Dense n×n bitmap: no sorting anywhere — flags set per similar
        // pair, complement rows emitted in naturally ascending order.
        let mut bits = vec![0u64; (n * n).div_ceil(64)];
        let mut set = |i: usize, j: usize| {
            let at = i * n + j;
            bits[at / 64] |= 1u64 << (at % 64);
        };
        for &(i, j) in &similar {
            set(i as usize, j as usize);
            set(j as usize, i as usize);
        }
        for u in 0..n {
            for v in 0..n {
                let at = u * n + v;
                if v != u && bits[at / 64] & (1u64 << (at % 64)) == 0 {
                    pairs.push((u as VertexId, v as VertexId));
                }
            }
        }
    } else {
        let mut directed = Vec::with_capacity(num_similar * 2);
        for &(i, j) in &similar {
            directed.push((i, j));
            directed.push((j, i));
        }
        let sim = Csr::from_pairs(n, &directed);
        for u in 0..n as VertexId {
            let row = sim.row(u);
            let mut p = 0usize;
            for v in 0..n as VertexId {
                if v == u {
                    continue;
                }
                if p < row.len() && row[p] == v {
                    p += 1;
                    continue;
                }
                pairs.push((u, v));
            }
        }
    }
    debug_assert_eq!(pairs.len(), num_pairs * 2);
    let obs = sim_obs();
    obs.oracle_evals.add(oracle_evals);
    obs.dissim_builds.inc();
    obs.dissim_pairs.add(num_pairs as u64);
    DissimilarityLists {
        csr: Csr::from_pairs(n, &pairs),
        num_pairs,
        oracle_evals,
    }
}

/// Builds dissimilarity lists over `members` (global ids), renumbered to
/// local ids `0..members.len()` in the order given.
///
/// Index-accelerated: candidates from [`SimilarityOracle::candidates`]
/// are verified with the metric; every other pair goes straight into the
/// dissimilarity CSR with zero evaluations. Output is identical to
/// [`build_dissimilarity_lists_brute`], with
/// [`DissimilarityLists::oracle_evals`] recording the saving.
pub fn build_dissimilarity_lists<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
) -> DissimilarityLists {
    let (similar, evals) = verify_candidates(oracle, members);
    complement_to_csr(members.len(), similar, evals)
}

/// [`build_dissimilarity_lists`] with candidate verification shard-split
/// across `pool` (the query's one-pool-per-query worker pool). The result
/// — including the CSR layout — is identical to the serial build.
pub fn build_dissimilarity_lists_on<O: SimilarityOracle + Sync>(
    oracle: &O,
    members: &[VertexId],
    pool: &rayon::ThreadPool,
) -> DissimilarityLists {
    let (similar, evals) = verify_candidates_on(oracle, members, pool);
    complement_to_csr(members.len(), similar, evals)
}

/// Whether `Auto` picks the lazy representation: only components large
/// enough for the `O(n²)` complement to hurt, and only when the
/// complement actually dominates (at least half of all pairs
/// dissimilar) — otherwise the eager CSR is small and its single
/// counting-sort pass wins.
fn auto_picks_lazy(n: usize, num_similar: usize) -> bool {
    let total = n * n.saturating_sub(1) / 2;
    n >= LAZY_MIN_N && 2 * (total - num_similar) >= total
}

/// Builds a [`DissimilarityView`] over `members` (global ids),
/// renumbered to local ids `0..members.len()` in the order given.
///
/// Candidate verification is identical in both modes (same candidate
/// index, same `oracle_evals`); `mode` only decides whether the
/// complement is materialized now ([`DissimilarityView::Eager`], equal
/// to [`build_dissimilarity_lists`]) or on demand
/// ([`DissimilarityView::Lazy`]).
pub fn build_dissimilarity_view<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
    mode: DissimMode,
) -> DissimilarityView {
    let (similar, evals) = verify_candidates(oracle, members);
    view_from_similar(members.len(), similar, evals, mode)
}

/// [`build_dissimilarity_view`] with candidate verification shard-split
/// across `pool`. The result is identical to the serial build.
pub fn build_dissimilarity_view_on<O: SimilarityOracle + Sync>(
    oracle: &O,
    members: &[VertexId],
    pool: &rayon::ThreadPool,
    mode: DissimMode,
) -> DissimilarityView {
    let (similar, evals) = verify_candidates_on(oracle, members, pool);
    view_from_similar(members.len(), similar, evals, mode)
}

fn view_from_similar(
    n: usize,
    similar: Vec<(VertexId, VertexId)>,
    evals: u64,
    mode: DissimMode,
) -> DissimilarityView {
    let lazy = match mode {
        DissimMode::Eager => false,
        DissimMode::Lazy => true,
        DissimMode::Auto => auto_picks_lazy(n, similar.len()),
    };
    if lazy {
        DissimilarityView::Lazy(LazyDissimilarity::from_similar(n, &similar, evals))
    } else {
        DissimilarityView::Eager(complement_to_csr(n, similar, evals))
    }
}

/// Brute-force reference for [`build_dissimilarity_lists`]: one oracle
/// pass over all `|members|²/2` pairs, collecting the directed dissimilar
/// pairs, then a counting sort into the flat arena.
pub fn build_dissimilarity_lists_brute<O: SimilarityOracle>(
    oracle: &O,
    members: &[VertexId],
) -> DissimilarityLists {
    let n = members.len();
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    let mut evals = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            evals += 1;
            if !oracle.is_similar(members[i], members[j]) {
                pairs.push((i as VertexId, j as VertexId));
                pairs.push((j as VertexId, i as VertexId));
            }
        }
    }
    let num_pairs = pairs.len() / 2;
    let obs = sim_obs();
    obs.oracle_evals.add(evals);
    obs.dissim_builds.inc();
    obs.dissim_pairs.add(num_pairs as u64);
    DissimilarityLists {
        csr: Csr::from_pairs(n, &pairs),
        num_pairs,
        oracle_evals: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeTable;
    use crate::metrics::Metric;
    use crate::oracle::{TableOracle, Threshold};

    fn geo_oracle() -> TableOracle {
        TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(2.5),
        )
    }

    #[test]
    fn similarity_graph_edges() {
        let o = geo_oracle();
        let g = build_similarity_graph(&o, &[0, 1, 2, 3]);
        // 0-1, 0-2, 1-2 similar; 3 is far from everyone.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn dissimilarity_lists_complement() {
        let o = geo_oracle();
        let d = build_dissimilarity_lists(&o, &[0, 1, 2, 3]);
        assert_eq!(d.num_pairs, 3); // 3 vs each of 0,1,2
        assert_eq!(d.row(3), &[0, 1, 2]);
        assert!(d.are_dissimilar(0, 3));
        assert!(!d.are_dissimilar(0, 1));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn indexed_build_skips_certain_pairs() {
        let o = geo_oracle();
        let d = build_dissimilarity_lists(&o, &[0, 1, 2, 3]);
        let brute = build_dissimilarity_lists_brute(&o, &[0, 1, 2, 3]);
        assert_eq!(brute.oracle_evals, 6);
        // Vertex 3 sits 48km from the cluster (provably dissimilar) and
        // the cluster pairs are within 2km « r (provably similar): the
        // grid classifies every pair without a single metric evaluation.
        assert_eq!(d.oracle_evals, 0);
        assert_eq!(d.csr, brute.csr);
        assert_eq!(d.num_pairs, brute.num_pairs);
    }

    #[test]
    fn sharded_build_matches_serial() {
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|i| ((i % 7) as f64 * 3.0, (i / 7) as f64 * 3.0))
            .collect();
        let o = TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(4.0),
        );
        let members: Vec<VertexId> = (0..40).collect();
        let serial = build_dissimilarity_lists(&o, &members);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("pool");
        let sharded = build_dissimilarity_lists_on(&o, &members, &pool);
        assert_eq!(serial.csr, sharded.csr);
        assert_eq!(serial.num_pairs, sharded.num_pairs);
        assert_eq!(serial.oracle_evals, sharded.oracle_evals);
    }

    #[test]
    fn renumbering_respects_member_order() {
        let o = geo_oracle();
        // Members in reversed order: local 0 = global 3.
        let d = build_dissimilarity_lists(&o, &[3, 2, 1, 0]);
        assert_eq!(d.row(0), &[1, 2, 3]);
        assert_eq!(d.num_pairs, 3);
    }

    #[test]
    fn simgraph_and_dissim_partition_pairs() {
        let o = geo_oracle();
        let members = [0, 1, 2, 3];
        let g = build_similarity_graph(&o, &members);
        let d = build_dissimilarity_lists(&o, &members);
        let n = members.len();
        assert_eq!(g.num_edges() + d.num_pairs, n * (n - 1) / 2);
    }

    #[test]
    fn empty_members() {
        let o = geo_oracle();
        let g = build_similarity_graph(&o, &[]);
        assert_eq!(g.num_vertices(), 0);
        let d = build_dissimilarity_lists(&o, &[]);
        assert!(d.is_empty());
        assert_eq!(d.oracle_evals, 0);
    }

    #[test]
    fn lazy_view_matches_eager() {
        let o = geo_oracle();
        let members = [0, 1, 2, 3];
        let eager = build_dissimilarity_view(&o, &members, DissimMode::Eager);
        let lazy = build_dissimilarity_view(&o, &members, DissimMode::Lazy);
        assert!(!eager.is_lazy());
        assert!(lazy.is_lazy());
        assert_eq!(eager.num_pairs(), lazy.num_pairs());
        assert_eq!(eager.oracle_evals(), lazy.oracle_evals());
        assert_eq!(eager, lazy, "semantic equality across representations");
        for u in 0..4u32 {
            assert_eq!(eager.count(u), lazy.count(u));
            let mut streamed = Vec::new();
            lazy.for_each(u, |w| streamed.push(w));
            assert_eq!(eager.row(u), streamed.as_slice(), "streamed row {u}");
            for v in 0..4u32 {
                assert_eq!(eager.are_dissimilar(u, v), lazy.are_dissimilar(u, v));
            }
        }
        // Nothing above materialized a row.
        assert_eq!(lazy.materialized_rows(), 0);
    }

    #[test]
    fn lazy_rows_memoize_and_grow_footprint() {
        let o = geo_oracle();
        let lazy = build_dissimilarity_view(&o, &[0, 1, 2, 3], DissimMode::Lazy);
        let before = lazy.heap_bytes();
        assert_eq!(lazy.row(3), &[0, 1, 2]);
        assert_eq!(lazy.materialized_rows(), 1);
        assert_eq!(lazy.materialized_entries(), 3);
        assert!(
            lazy.heap_bytes() > before,
            "footprint must grow with materialization"
        );
        // Second slice access hits the memo (counters unchanged).
        assert_eq!(lazy.row(3), &[0, 1, 2]);
        assert_eq!(lazy.materialized_rows(), 1);
        // Streaming a memoized row uses the memo, not the complement walk.
        let mut streamed = Vec::new();
        lazy.for_each(3, |w| streamed.push(w));
        assert_eq!(streamed, vec![0, 1, 2]);
    }

    #[test]
    fn lazy_num_pairs_is_exact_without_materialization() {
        let o = geo_oracle();
        let eager = build_dissimilarity_lists(&o, &[0, 1, 2, 3]);
        let lazy = build_dissimilarity_view(&o, &[0, 1, 2, 3], DissimMode::Lazy);
        assert_eq!(lazy.num_pairs(), eager.num_pairs);
        assert_eq!(lazy.materialized_rows(), 0);
    }

    #[test]
    fn auto_mode_small_component_stays_eager() {
        let o = geo_oracle();
        let auto = build_dissimilarity_view(&o, &[0, 1, 2, 3], DissimMode::Auto);
        assert!(!auto.is_lazy(), "4 vertices is far below LAZY_MIN_N");
    }

    #[test]
    fn auto_threshold_rule() {
        // Large + dissimilarity-heavy -> lazy; large + similarity-heavy
        // or small -> eager.
        assert!(auto_picks_lazy(LAZY_MIN_N, 0));
        assert!(!auto_picks_lazy(LAZY_MIN_N - 1, 0));
        let n = LAZY_MIN_N;
        let total = n * (n - 1) / 2;
        assert!(auto_picks_lazy(n, total / 2));
        assert!(!auto_picks_lazy(n, total / 2 + 1));
    }

    #[test]
    fn lazy_clone_and_equality_ignore_memo_state() {
        let o = geo_oracle();
        let a = build_dissimilarity_view(&o, &[0, 1, 2, 3], DissimMode::Lazy);
        let b = a.clone();
        let _ = a.row(0);
        assert_eq!(a, b, "memoization must not affect equality");
        assert_eq!(b.materialized_rows(), 0, "clone is independent");
    }
}
