//! Pairwise-similarity quantile calibration.
//!
//! The paper's DBLP and Pokec experiments do not sweep raw `r` values;
//! they sweep the *top-x‰* of the pairwise similarity distribution in
//! decreasing order ("r = top 3‰" means: pick `r` so that 3 per thousand of
//! vertex pairs are similar). We implement an exact variant for small
//! graphs and a reservoir-sampled variant for large ones.

use crate::oracle::SimilarityOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact `q`-quantile (from the top, `0 < q <= 1`) of the pairwise metric
/// values over all `n(n-1)/2` vertex pairs of `0..n`.
///
/// For similarity metrics, returns the value `r` such that a fraction `q`
/// of pairs have `value >= r`. `O(n^2 log n)` — intended for `n` up to a
/// few thousands.
pub fn similarity_quantile_exact<O: SimilarityOracle>(oracle: &O, n: usize, q: f64) -> f64 {
    assert!(n >= 2, "need at least two vertices");
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
    let mut vals = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            vals.push(oracle.value(u, v));
        }
    }
    quantile_from_top(&mut vals, q)
}

/// Sampled variant of [`similarity_quantile_exact`]: evaluates the metric on
/// `samples` uniformly random vertex pairs (seeded, reproducible).
pub fn similarity_quantile_sampled<O: SimilarityOracle>(
    oracle: &O,
    n: usize,
    q: f64,
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(n >= 2, "need at least two vertices");
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vals = Vec::with_capacity(samples);
    while vals.len() < samples {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            vals.push(oracle.value(u, v));
        }
    }
    quantile_from_top(&mut vals, q)
}

/// The paper's "top x‰" threshold: the similarity value at the top
/// `permille`/1000 of the (sampled) pairwise distribution. Uses exact
/// computation below `exact_cutoff` vertices, sampling otherwise.
pub fn top_permille_threshold<O: SimilarityOracle>(
    oracle: &O,
    n: usize,
    permille: f64,
    exact_cutoff: usize,
    seed: u64,
) -> f64 {
    let q = permille / 1000.0;
    if n <= exact_cutoff {
        similarity_quantile_exact(oracle, n, q)
    } else {
        // ~2M samples gives a per-mille resolution comfortably.
        similarity_quantile_sampled(oracle, n, q, 2_000_000.min(n * 200), seed)
    }
}

/// Sorts descending and picks the value at rank `ceil(q * len) - 1`
/// (clamped), i.e. the threshold at which a `q` fraction of values is kept.
fn quantile_from_top(vals: &mut [f64], q: f64) -> f64 {
    assert!(!vals.is_empty());
    vals.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN metric value"));
    let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
    vals[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeTable;
    use crate::metrics::Metric;
    use crate::oracle::{TableOracle, Threshold};

    fn line_oracle(n: usize) -> TableOracle {
        // Points on a line: pairwise distances are distinct-ish.
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 0.0)).collect();
        TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        )
    }

    #[test]
    fn quantile_from_top_basics() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_from_top(&mut v.clone(), 0.25), 4.0);
        assert_eq!(quantile_from_top(&mut v.clone(), 0.5), 3.0);
        assert_eq!(quantile_from_top(&mut v, 1.0), 1.0);
    }

    #[test]
    fn exact_quantile_on_line() {
        let o = line_oracle(5);
        // Pairs distances: 1x4, 2x3, 3x2, 4x1 -> sorted desc: 4,3,3,2,2,2,1,1,1,1
        let top10 = similarity_quantile_exact(&o, 5, 0.1);
        assert_eq!(top10, 4.0);
        let all = similarity_quantile_exact(&o, 5, 1.0);
        assert_eq!(all, 1.0);
    }

    #[test]
    fn sampled_close_to_exact() {
        let o = line_oracle(40);
        let exact = similarity_quantile_exact(&o, 40, 0.3);
        let sampled = similarity_quantile_sampled(&o, 40, 0.3, 50_000, 42);
        assert!(
            (exact - sampled).abs() <= 2.0,
            "exact {exact} vs sampled {sampled}"
        );
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let o = line_oracle(30);
        let a = similarity_quantile_sampled(&o, 30, 0.2, 10_000, 7);
        let b = similarity_quantile_sampled(&o, 30, 0.2, 10_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn top_permille_uses_exact_under_cutoff() {
        let o = line_oracle(10);
        let t = top_permille_threshold(&o, 10, 500.0, 100, 1); // top 50%
        let e = similarity_quantile_exact(&o, 10, 0.5);
        assert_eq!(t, e);
    }

    #[test]
    #[should_panic]
    fn zero_quantile_panics() {
        let o = line_oracle(3);
        similarity_quantile_exact(&o, 3, 0.0);
    }
}
