//! Similarity oracle and threshold semantics.
//!
//! Definition 2 of the paper calls two vertices *similar* when
//! `sim(u,v) >= r`; footnote 1 flips the comparison for distance metrics
//! (similar iff `dist(u,v) <= r`). [`Threshold`] captures both conventions
//! so every algorithm is metric-agnostic.

use crate::attributes::AttributeTable;
use crate::metrics::Metric;
use serde::{Deserialize, Serialize};

/// Threshold semantics for the similarity constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Threshold {
    /// Similar iff `sim(u,v) >= r` (Jaccard, weighted Jaccard, cosine).
    MinSimilarity(f64),
    /// Similar iff `dist(u,v) <= r` (Euclidean km thresholds in the paper).
    MaxDistance(f64),
}

impl Threshold {
    /// Applies the threshold to a raw metric value.
    #[inline]
    pub fn is_similar_value(self, value: f64) -> bool {
        match self {
            Threshold::MinSimilarity(r) => value >= r,
            Threshold::MaxDistance(r) => value <= r,
        }
    }

    /// The raw threshold value `r`.
    pub fn value(self) -> f64 {
        match self {
            Threshold::MinSimilarity(r) | Threshold::MaxDistance(r) => r,
        }
    }
}

/// A pairwise similarity oracle: everything the (k,r)-core algorithms need
/// to know about attributes.
pub trait SimilarityOracle {
    /// Raw metric value between `u` and `v`.
    fn value(&self, u: u32, v: u32) -> f64;

    /// Whether `u` and `v` satisfy the similarity constraint.
    fn is_similar(&self, u: u32, v: u32) -> bool;
}

/// The standard oracle: an [`AttributeTable`], a [`Metric`], and a
/// [`Threshold`].
#[derive(Debug, Clone)]
pub struct TableOracle {
    attrs: AttributeTable,
    metric: Metric,
    threshold: Threshold,
}

impl TableOracle {
    /// Creates an oracle.
    ///
    /// # Panics
    /// Panics when the threshold direction contradicts the metric family
    /// (a distance metric with `MinSimilarity`, or vice versa) — a nearly
    /// certain configuration bug.
    pub fn new(attrs: AttributeTable, metric: Metric, threshold: Threshold) -> Self {
        match (metric.is_distance(), threshold) {
            (true, Threshold::MinSimilarity(_)) => {
                panic!("distance metric {metric:?} needs Threshold::MaxDistance")
            }
            (false, Threshold::MaxDistance(_)) => {
                panic!("similarity metric {metric:?} needs Threshold::MinSimilarity")
            }
            _ => {}
        }
        TableOracle {
            attrs,
            metric,
            threshold,
        }
    }

    /// The attribute table.
    pub fn attributes(&self) -> &AttributeTable {
        &self.attrs
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The threshold in use.
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// Returns a copy of this oracle with a different threshold (used by
    /// parameter sweeps over `r`).
    pub fn with_threshold(&self, threshold: Threshold) -> Self {
        TableOracle::new(self.attrs.clone(), self.metric, threshold)
    }
}

impl SimilarityOracle for TableOracle {
    #[inline]
    fn value(&self, u: u32, v: u32) -> f64 {
        self.metric.evaluate(&self.attrs, u, v)
    }

    #[inline]
    fn is_similar(&self, u: u32, v: u32) -> bool {
        self.threshold.is_similar_value(self.value(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_directions() {
        assert!(Threshold::MinSimilarity(0.5).is_similar_value(0.5));
        assert!(Threshold::MinSimilarity(0.5).is_similar_value(0.9));
        assert!(!Threshold::MinSimilarity(0.5).is_similar_value(0.4));
        assert!(Threshold::MaxDistance(10.0).is_similar_value(10.0));
        assert!(Threshold::MaxDistance(10.0).is_similar_value(3.0));
        assert!(!Threshold::MaxDistance(10.0).is_similar_value(11.0));
    }

    #[test]
    fn oracle_geo() {
        let o = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (3.0, 4.0), (100.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(10.0),
        );
        assert!(o.is_similar(0, 1));
        assert!(!o.is_similar(0, 2));
        assert_eq!(o.threshold().value(), 10.0);
    }

    #[test]
    fn oracle_keywords() {
        let o = TableOracle::new(
            AttributeTable::keywords(vec![vec![(1, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]]),
            Metric::WeightedJaccard,
            Threshold::MinSimilarity(0.5),
        );
        assert!(o.is_similar(0, 1));
        assert!(!o.is_similar(0, 2));
    }

    #[test]
    fn with_threshold_swaps_r() {
        let o = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (5.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        assert!(!o.is_similar(0, 1));
        let o2 = o.with_threshold(Threshold::MaxDistance(6.0));
        assert!(o2.is_similar(0, 1));
    }

    #[test]
    #[should_panic]
    fn mismatched_threshold_panics() {
        TableOracle::new(
            AttributeTable::points(vec![]),
            Metric::Euclidean,
            Threshold::MinSimilarity(0.5),
        );
    }
}
