//! Similarity oracle and threshold semantics.
//!
//! Definition 2 of the paper calls two vertices *similar* when
//! `sim(u,v) >= r`; footnote 1 flips the comparison for distance metrics
//! (similar iff `dist(u,v) <= r`). [`Threshold`] captures both conventions
//! so every algorithm is metric-agnostic.

use crate::attributes::AttributeTable;
use crate::candidates::{AllPairs, CandidatePairs, GridCandidates, InvertedIndexCandidates};
use crate::metrics::Metric;
use kr_graph::VertexId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Threshold semantics for the similarity constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Threshold {
    /// Similar iff `sim(u,v) >= r` (Jaccard, weighted Jaccard, cosine).
    MinSimilarity(f64),
    /// Similar iff `dist(u,v) <= r` (Euclidean km thresholds in the paper).
    MaxDistance(f64),
}

impl Threshold {
    /// Applies the threshold to a raw metric value.
    #[inline]
    pub fn is_similar_value(self, value: f64) -> bool {
        match self {
            Threshold::MinSimilarity(r) => value >= r,
            Threshold::MaxDistance(r) => value <= r,
        }
    }

    /// The raw threshold value `r`.
    pub fn value(self) -> f64 {
        match self {
            Threshold::MinSimilarity(r) | Threshold::MaxDistance(r) => r,
        }
    }
}

/// A pairwise similarity oracle: everything the (k,r)-core algorithms need
/// to know about attributes.
pub trait SimilarityOracle {
    /// Raw metric value between `u` and `v`.
    fn value(&self, u: u32, v: u32) -> f64;

    /// Whether `u` and `v` satisfy the similarity constraint.
    fn is_similar(&self, u: u32, v: u32) -> bool;

    /// Sound candidate generation over `members` (global ids, renumbered
    /// to local indices `0..members.len()`): every pair the returned set
    /// omits is guaranteed dissimilar, so preprocessing only verifies the
    /// candidates. The default is the brute-force all-pairs set;
    /// [`TableOracle`] overrides it with a metric-aware index.
    fn candidates(&self, members: &[VertexId]) -> Box<dyn CandidatePairs> {
        Box::new(AllPairs::new(members.len()))
    }
}

/// The standard oracle: an [`AttributeTable`], a [`Metric`], and a
/// [`Threshold`].
///
/// The table sits behind an [`Arc`], so cloning the oracle — as every
/// step of an r-sweep does via [`TableOracle::with_threshold`] — shares
/// the attribute storage instead of deep-copying it.
#[derive(Debug, Clone)]
pub struct TableOracle {
    attrs: Arc<AttributeTable>,
    metric: Metric,
    threshold: Threshold,
}

impl TableOracle {
    /// Creates an oracle.
    ///
    /// # Panics
    /// Panics when the threshold direction contradicts the metric family
    /// (a distance metric with `MinSimilarity`, or vice versa) — a nearly
    /// certain configuration bug.
    pub fn new(attrs: AttributeTable, metric: Metric, threshold: Threshold) -> Self {
        TableOracle::from_shared(Arc::new(attrs), metric, threshold)
    }

    /// [`TableOracle::new`] over an already-shared table (no copy).
    ///
    /// # Panics
    /// Same contract as [`TableOracle::new`].
    pub fn from_shared(attrs: Arc<AttributeTable>, metric: Metric, threshold: Threshold) -> Self {
        match (metric.is_distance(), threshold) {
            (true, Threshold::MinSimilarity(_)) => {
                panic!("distance metric {metric:?} needs Threshold::MaxDistance")
            }
            (false, Threshold::MaxDistance(_)) => {
                panic!("similarity metric {metric:?} needs Threshold::MinSimilarity")
            }
            _ => {}
        }
        TableOracle {
            attrs,
            metric,
            threshold,
        }
    }

    /// The attribute table.
    pub fn attributes(&self) -> &AttributeTable {
        &self.attrs
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The threshold in use.
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// Returns a copy of this oracle with a different threshold (used by
    /// parameter sweeps over `r`). The attribute table is shared, not
    /// copied.
    pub fn with_threshold(&self, threshold: Threshold) -> Self {
        TableOracle::from_shared(self.attrs.clone(), self.metric, threshold)
    }
}

impl SimilarityOracle for TableOracle {
    #[inline]
    fn value(&self, u: u32, v: u32) -> f64 {
        self.metric.evaluate(&self.attrs, u, v)
    }

    #[inline]
    fn is_similar(&self, u: u32, v: u32) -> bool {
        self.threshold.is_similar_value(self.value(u, v))
    }

    /// Metric-aware candidate index: a spatial grid for Euclidean points,
    /// an inverted keyword index for (weighted) Jaccard, and brute force
    /// for everything else (Cosine, mismatched attribute families, or
    /// inputs outside an index's soundness preconditions).
    fn candidates(&self, members: &[VertexId]) -> Box<dyn CandidatePairs> {
        match (self.metric, &*self.attrs, self.threshold) {
            (Metric::Euclidean, AttributeTable::Points(pts), Threshold::MaxDistance(r)) => {
                let member_pts: Vec<(f64, f64)> =
                    members.iter().map(|&g| pts[g as usize]).collect();
                match GridCandidates::try_new(&member_pts, r) {
                    Some(grid) => Box::new(grid),
                    None => Box::new(AllPairs::new(members.len())),
                }
            }
            (
                m @ (Metric::Jaccard | Metric::WeightedJaccard),
                AttributeTable::Keywords(lists),
                Threshold::MinSimilarity(r),
            ) => {
                let member_lists: Vec<&[(u32, f64)]> = members
                    .iter()
                    .map(|&g| lists[g as usize].as_slice())
                    .collect();
                match InvertedIndexCandidates::try_new(&member_lists, m == Metric::Jaccard, r) {
                    Some(ix) => Box::new(ix),
                    None => Box::new(AllPairs::new(members.len())),
                }
            }
            _ => Box::new(AllPairs::new(members.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_directions() {
        assert!(Threshold::MinSimilarity(0.5).is_similar_value(0.5));
        assert!(Threshold::MinSimilarity(0.5).is_similar_value(0.9));
        assert!(!Threshold::MinSimilarity(0.5).is_similar_value(0.4));
        assert!(Threshold::MaxDistance(10.0).is_similar_value(10.0));
        assert!(Threshold::MaxDistance(10.0).is_similar_value(3.0));
        assert!(!Threshold::MaxDistance(10.0).is_similar_value(11.0));
    }

    #[test]
    fn oracle_geo() {
        let o = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (3.0, 4.0), (100.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(10.0),
        );
        assert!(o.is_similar(0, 1));
        assert!(!o.is_similar(0, 2));
        assert_eq!(o.threshold().value(), 10.0);
    }

    #[test]
    fn oracle_keywords() {
        let o = TableOracle::new(
            AttributeTable::keywords(vec![vec![(1, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]]),
            Metric::WeightedJaccard,
            Threshold::MinSimilarity(0.5),
        );
        assert!(o.is_similar(0, 1));
        assert!(!o.is_similar(0, 2));
    }

    #[test]
    fn with_threshold_swaps_r() {
        let o = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (5.0, 0.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        assert!(!o.is_similar(0, 1));
        let o2 = o.with_threshold(Threshold::MaxDistance(6.0));
        assert!(o2.is_similar(0, 1));
    }

    #[test]
    fn with_threshold_shares_the_table() {
        let o = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0); 4]),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        let o2 = o.with_threshold(Threshold::MaxDistance(2.0));
        // Same allocation behind both oracles: an r-sweep step must not
        // deep-copy the attribute table.
        assert!(std::ptr::eq(o.attributes(), o2.attributes()));
    }

    #[test]
    fn candidate_strategy_follows_metric() {
        let geo = TableOracle::new(
            AttributeTable::points(vec![(0.0, 0.0), (1.0, 1.0)]),
            Metric::Euclidean,
            Threshold::MaxDistance(5.0),
        );
        assert_eq!(geo.candidates(&[0, 1]).strategy(), "grid");
        let kw = TableOracle::new(
            AttributeTable::keywords(vec![vec![(1, 1.0)], vec![(2, 1.0)]]),
            Metric::WeightedJaccard,
            Threshold::MinSimilarity(0.5),
        );
        assert_eq!(kw.candidates(&[0, 1]).strategy(), "inverted");
        // r = 0 keeps similarity-0 pairs similar: index preconditions
        // fail, brute force takes over.
        let loose = kw.with_threshold(Threshold::MinSimilarity(0.0));
        assert_eq!(loose.candidates(&[0, 1]).strategy(), "all-pairs");
        let cos = TableOracle::new(
            AttributeTable::vectors(vec![vec![1.0, 0.0], vec![0.0, 1.0]]),
            Metric::Cosine,
            Threshold::MinSimilarity(0.5),
        );
        assert_eq!(cos.candidates(&[0, 1]).strategy(), "all-pairs");
    }

    #[test]
    #[should_panic]
    fn mismatched_threshold_panics() {
        TableOracle::new(
            AttributeTable::points(vec![]),
            Metric::Euclidean,
            Threshold::MinSimilarity(0.5),
        );
    }
}
