//! Vertex attribute storage.
//!
//! Three attribute families cover the paper's datasets:
//!
//! * **Keywords** — weighted keyword multisets (DBLP's counted conference /
//!   journal lists, Pokec's interests). Stored as sorted `(keyword_id,
//!   weight)` pairs per vertex so weighted-Jaccard runs as a linear merge.
//! * **Points** — 2-D coordinates (Gowalla / Brightkite check-in homes).
//! * **Vectors** — dense `f64` vectors (generic embedding input for cosine
//!   or Euclidean metrics).

use serde::{Deserialize, Serialize};

/// Per-vertex attributes for a whole graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeTable {
    /// Sorted `(keyword, weight)` lists, one per vertex. Weights must be
    /// non-negative.
    Keywords(Vec<Vec<(u32, f64)>>),
    /// One 2-D point per vertex.
    Points(Vec<(f64, f64)>),
    /// One dense vector per vertex; all vectors must share a dimension.
    Vectors(Vec<Vec<f64>>),
}

impl AttributeTable {
    /// Builds a keyword table, sorting each list by keyword id and merging
    /// duplicate ids by summing their weights.
    pub fn keywords(mut lists: Vec<Vec<(u32, f64)>>) -> Self {
        for list in &mut lists {
            list.sort_unstable_by_key(|&(k, _)| k);
            // Merge duplicates in place.
            let mut w = 0usize;
            for i in 0..list.len() {
                if w > 0 && list[w - 1].0 == list[i].0 {
                    list[w - 1].1 += list[i].1;
                } else {
                    list[w] = list[i];
                    w += 1;
                }
            }
            list.truncate(w);
        }
        AttributeTable::Keywords(lists)
    }

    /// Builds a point table.
    pub fn points(pts: Vec<(f64, f64)>) -> Self {
        AttributeTable::Points(pts)
    }

    /// Builds a dense-vector table.
    ///
    /// # Panics
    /// Panics if the vectors do not all share one dimension.
    pub fn vectors(vecs: Vec<Vec<f64>>) -> Self {
        if let Some(first) = vecs.first() {
            let d = first.len();
            assert!(
                vecs.iter().all(|v| v.len() == d),
                "all attribute vectors must have equal dimension"
            );
        }
        AttributeTable::Vectors(vecs)
    }

    /// Number of vertices covered by the table.
    pub fn len(&self) -> usize {
        match self {
            AttributeTable::Keywords(v) => v.len(),
            AttributeTable::Points(v) => v.len(),
            AttributeTable::Vectors(v) => v.len(),
        }
    }

    /// True iff the table covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short variant name, for mismatch diagnostics ("keywords",
    /// "points", "vectors").
    pub fn family_name(&self) -> &'static str {
        match self {
            AttributeTable::Keywords(_) => "keywords",
            AttributeTable::Points(_) => "points",
            AttributeTable::Vectors(_) => "vectors",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_sorted_and_merged() {
        let t = AttributeTable::keywords(vec![vec![(3, 1.0), (1, 2.0), (3, 0.5)]]);
        match t {
            AttributeTable::Keywords(lists) => {
                assert_eq!(lists[0], vec![(1, 2.0), (3, 1.5)]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn len_variants() {
        assert_eq!(AttributeTable::points(vec![(0.0, 0.0); 3]).len(), 3);
        assert_eq!(AttributeTable::keywords(vec![]).len(), 0);
        assert!(AttributeTable::keywords(vec![]).is_empty());
        assert_eq!(AttributeTable::vectors(vec![vec![1.0], vec![2.0]]).len(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_vector_dims_panic() {
        AttributeTable::vectors(vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
