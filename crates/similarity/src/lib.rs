//! # kr-similarity
//!
//! Similarity substrate for the (k,r)-core reproduction.
//!
//! The paper's similarity constraint is parameterized by a metric over
//! vertex attributes and a threshold `r`:
//!
//! * DBLP / Pokec use **weighted Jaccard** over keyword multisets, with `r`
//!   calibrated as the top-x‰ quantile of the pairwise similarity
//!   distribution;
//! * Gowalla / Brightkite use **Euclidean distance** over geo-locations,
//!   with `r` a distance threshold in kilometers (two users are "similar"
//!   iff their distance is *at most* `r`).
//!
//! This crate provides attribute storage ([`AttributeTable`]), metrics
//! ([`Metric`]), threshold semantics ([`Threshold`]), the pairwise-quantile
//! calibration ([`quantile`]), metric-aware candidate indexes
//! ([`candidates`]), and similarity/dissimilarity graph materialization
//! over vertex subsets ([`simgraph`]).

pub mod attributes;
pub mod candidates;
pub mod io;
pub mod metrics;
pub mod oracle;
pub mod quantile;
pub mod simgraph;
pub mod snapshot;

pub use attributes::AttributeTable;
pub use candidates::{AllPairs, CandidatePairs, GridCandidates, InvertedIndexCandidates};
pub use io::{
    read_keywords, read_keywords_mapped, read_points, read_points_mapped, write_attributes,
    AttrIoError, AttrJoinStats,
};
pub use metrics::Metric;
pub use oracle::{SimilarityOracle, TableOracle, Threshold};
pub use quantile::{
    similarity_quantile_exact, similarity_quantile_sampled, top_permille_threshold,
};
pub use simgraph::{
    build_dissimilarity_lists, build_dissimilarity_lists_brute, build_dissimilarity_lists_on,
    build_dissimilarity_view, build_dissimilarity_view_on, build_similarity_graph,
    build_similarity_graph_brute, DissimMode, DissimilarityLists, DissimilarityView,
    LazyDissimilarity, LAZY_MIN_N,
};
pub use snapshot::{
    read_snapshot, read_snapshot_bytes, read_snapshot_file, snapshot_to_bytes, write_snapshot,
    write_snapshot_file, DatasetSnapshot,
};
