//! Property tests for metrics and the quantile calibration.

use kr_similarity::metrics::{cosine, euclidean, jaccard, weighted_jaccard};
use kr_similarity::{
    build_dissimilarity_lists, build_dissimilarity_lists_brute, build_dissimilarity_lists_on,
    build_similarity_graph, build_similarity_graph_brute, similarity_quantile_exact,
    AttributeTable, Metric, SimilarityOracle, TableOracle, Threshold,
};
use proptest::prelude::*;

fn arb_kwlist() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((0u32..30, 0.1f64..5.0), 0..10).prop_map(|mut l| {
        l.sort_by_key(|&(k, _)| k);
        l.dedup_by_key(|&mut (k, _)| k);
        l
    })
}

/// Indexed preprocessing must be indistinguishable from the brute-force
/// reference: same similarity graph, same dissimilarity CSR (byte for
/// byte), same pair count — and never more metric evaluations.
fn assert_indexed_matches_brute(oracle: &TableOracle, n: usize) -> Result<(), TestCaseError> {
    let members: Vec<u32> = (0..n as u32).collect();
    let fast = build_dissimilarity_lists(oracle, &members);
    let brute = build_dissimilarity_lists_brute(oracle, &members);
    prop_assert_eq!(&fast.csr, &brute.csr);
    prop_assert_eq!(fast.num_pairs, brute.num_pairs);
    prop_assert!(fast.oracle_evals <= brute.oracle_evals);
    let g_fast = build_similarity_graph(oracle, &members);
    let g_brute = build_similarity_graph_brute(oracle, &members);
    prop_assert_eq!(g_fast, g_brute);
    // Pool-sharded verification must match the serial path exactly.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .expect("pool");
    let sharded = build_dissimilarity_lists_on(oracle, &members, &pool);
    prop_assert_eq!(&sharded.csr, &brute.csr);
    prop_assert_eq!(sharded.oracle_evals, fast.oracle_evals);
    Ok(())
}

proptest! {
    #[test]
    fn jaccard_symmetric_and_bounded(a in arb_kwlist(), b in arb_kwlist()) {
        let s1 = jaccard(&a, &b);
        let s2 = jaccard(&b, &a);
        prop_assert!((s1 - s2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&s1));
        prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_symmetric_and_bounded(a in arb_kwlist(), b in arb_kwlist()) {
        let s1 = weighted_jaccard(&a, &b);
        let s2 = weighted_jaccard(&b, &a);
        prop_assert!((s1 - s2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&s1));
        prop_assert!((weighted_jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_dominated_by_jaccard_structure(a in arb_kwlist(), b in arb_kwlist()) {
        // If the keyword sets are disjoint, both metrics are 0 (unless both
        // empty).
        let keys_a: std::collections::HashSet<u32> = a.iter().map(|&(k, _)| k).collect();
        let disjoint = b.iter().all(|&(k, _)| !keys_a.contains(&k));
        if disjoint && !(a.is_empty() && b.is_empty()) && !(a.is_empty() || b.is_empty()) {
            prop_assert_eq!(jaccard(&a, &b), 0.0);
            prop_assert_eq!(weighted_jaccard(&a, &b), 0.0);
        }
    }

    #[test]
    fn euclidean_metric_axioms(
        a in proptest::collection::vec(-50.0f64..50.0, 3),
        b in proptest::collection::vec(-50.0f64..50.0, 3),
        c in proptest::collection::vec(-50.0f64..50.0, 3),
    ) {
        let dab = euclidean(&a, &b);
        let dba = euclidean(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(euclidean(&a, &a) < 1e-12);
        // Triangle inequality.
        prop_assert!(euclidean(&a, &c) <= dab + euclidean(&b, &c) + 1e-9);
    }

    #[test]
    fn cosine_bounded(
        a in proptest::collection::vec(-10.0f64..10.0, 4),
        b in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let s = cosine(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        prop_assert!((s - cosine(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn simgraph_and_dissim_partition(
        pts in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0), 2..12),
        r in 1.0f64..15.0,
    ) {
        let n = pts.len();
        let oracle = TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
        );
        let members: Vec<u32> = (0..n as u32).collect();
        let sim = build_similarity_graph(&oracle, &members);
        let dis = build_dissimilarity_lists(&oracle, &members);
        prop_assert_eq!(sim.num_edges() + dis.num_pairs, n * (n - 1) / 2);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                let s = sim.has_edge(u, v);
                let d = dis.are_dissimilar(u, v);
                prop_assert!(s != d, "pair ({u},{v}) must be exactly one of similar/dissimilar");
                prop_assert_eq!(s, oracle.is_similar(u, v));
            }
        }
    }

    #[test]
    fn indexed_matches_brute_on_points(
        pts in proptest::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 1..28),
        r in 0.0f64..30.0,
    ) {
        // MaxDistance direction (geo): exercises the spatial grid, and —
        // at r = 0 — the brute-force fallback.
        let n = pts.len();
        let oracle = TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(r),
        );
        assert_indexed_matches_brute(&oracle, n)?;
    }

    #[test]
    fn indexed_matches_brute_on_keywords(
        lists in proptest::collection::vec(arb_kwlist(), 1..22),
        r in 0.0f64..1.2,
        unweighted in false..true,
    ) {
        // MinSimilarity direction: exercises the inverted keyword index
        // (including empty lists, thresholds past 1.0, and — at r = 0 —
        // the brute-force fallback).
        let n = lists.len();
        let metric = if unweighted { Metric::Jaccard } else { Metric::WeightedJaccard };
        let oracle = TableOracle::new(
            AttributeTable::keywords(lists),
            metric,
            Threshold::MinSimilarity(r),
        );
        assert_indexed_matches_brute(&oracle, n)?;
    }

    #[test]
    fn indexed_matches_brute_on_vectors(
        vecs in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 3), 1..12),
        r in 0.0f64..1.0,
    ) {
        // Cosine has no index: the all-pairs fallback must still agree.
        let n = vecs.len();
        let oracle = TableOracle::new(
            AttributeTable::vectors(vecs),
            Metric::Cosine,
            Threshold::MinSimilarity(r),
        );
        assert_indexed_matches_brute(&oracle, n)?;
    }

    #[test]
    fn quantile_monotone_in_q(
        pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..15),
    ) {
        let n = pts.len();
        let oracle = TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        // For a distance metric, values sorted descending: larger q keeps
        // more pairs, so the threshold value decreases (toward similarity);
        // for distances "top" means largest distance first, so quantile is
        // non-increasing in q.
        let q25 = similarity_quantile_exact(&oracle, n, 0.25);
        let q50 = similarity_quantile_exact(&oracle, n, 0.5);
        let q100 = similarity_quantile_exact(&oracle, n, 1.0);
        prop_assert!(q25 >= q50);
        prop_assert!(q50 >= q100);
    }

    #[test]
    fn quantile_keeps_expected_fraction(
        pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..14),
        q in 0.1f64..1.0,
    ) {
        let n = pts.len();
        let oracle = TableOracle::new(
            AttributeTable::points(pts),
            Metric::Euclidean,
            Threshold::MaxDistance(1.0),
        );
        let threshold = similarity_quantile_exact(&oracle, n, q);
        let total = n * (n - 1) / 2;
        let kept = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .filter(|&(u, v)| oracle.value(u, v) >= threshold)
            .count();
        // At least ceil(q * total) pairs are at or above the cut (ties can
        // push it higher).
        prop_assert!(kept >= (q * total as f64).ceil() as usize);
    }
}
