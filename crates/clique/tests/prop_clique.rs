//! Property tests: Bron–Kerbosch output vs a brute-force clique oracle.

use kr_clique::{max_clique_size, maximal_cliques};
use kr_graph::{Graph, VertexId};
use proptest::prelude::*;

fn arb_graph(n_max: usize) -> impl Strategy<Value = Graph> {
    (1..=n_max).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges.min(40))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

fn is_clique(g: &Graph, vs: &[VertexId]) -> bool {
    for i in 0..vs.len() {
        for j in (i + 1)..vs.len() {
            if !g.has_edge(vs[i], vs[j]) {
                return false;
            }
        }
    }
    true
}

/// Brute force: all maximal cliques by subset enumeration (n <= ~12).
fn brute_maximal_cliques(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(n <= 14);
    let mut cliques: Vec<u32> = Vec::new(); // bitmask per clique
    for mask in 1u32..(1 << n) {
        let vs: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask >> v & 1 == 1).collect();
        if is_clique(g, &vs) {
            cliques.push(mask);
        }
    }
    // Keep only maximal masks.
    let mut out = Vec::new();
    'outer: for &m in &cliques {
        for &m2 in &cliques {
            if m != m2 && m & m2 == m {
                continue 'outer;
            }
        }
        let vs: Vec<VertexId> = (0..n as VertexId).filter(|&v| m >> v & 1 == 1).collect();
        out.push(vs);
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_brute_force(g in arb_graph(9)) {
        let mut fast = maximal_cliques(&g);
        fast.sort();
        let brute = brute_maximal_cliques(&g);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn all_outputs_are_maximal_cliques(g in arb_graph(12)) {
        let cs = maximal_cliques(&g);
        for c in &cs {
            prop_assert!(is_clique(&g, c));
            // Maximality: no vertex outside c is adjacent to all of c.
            for v in 0..g.num_vertices() as VertexId {
                if c.contains(&v) { continue; }
                let extends = c.iter().all(|&u| g.has_edge(u, v));
                prop_assert!(!extends, "clique {:?} extendable by {}", c, v);
            }
        }
    }

    #[test]
    fn no_duplicate_cliques(g in arb_graph(12)) {
        let mut cs = maximal_cliques(&g);
        let total = cs.len();
        cs.sort();
        cs.dedup();
        prop_assert_eq!(cs.len(), total);
    }

    #[test]
    fn max_size_consistent(g in arb_graph(10)) {
        let cs = maximal_cliques(&g);
        let best = cs.iter().map(|c| c.len()).max().unwrap_or(0);
        prop_assert_eq!(max_clique_size(&g), best);
    }

    #[test]
    fn every_vertex_in_some_clique(g in arb_graph(12)) {
        let cs = maximal_cliques(&g);
        let mut covered = vec![false; g.num_vertices()];
        for c in &cs {
            for &v in c {
                covered[v as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }
}
