//! Pivoted Bron–Kerbosch maximal clique enumeration.
//!
//! The recursion maintains the classic three sets: the current clique `R`,
//! the candidates `P` (vertices adjacent to all of `R` that may extend it),
//! and the exclusions `X` (vertices adjacent to all of `R` that were
//! already covered). A maximal clique is reported when both `P` and `X`
//! are empty. Pivoting on the vertex of `P ∪ X` with the most neighbors in
//! `P` skips candidates that cannot lead to new maximal cliques; the outer
//! loop runs in degeneracy order to bound recursion width.

use kr_graph::{degeneracy_order, Graph, VertexId};

/// Enumerates all maximal cliques of `g`, returning them as sorted vertex
/// lists. Intended for graphs where the result set fits in memory; use
/// [`maximal_cliques_visit`] to stream.
pub fn maximal_cliques(g: &Graph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    maximal_cliques_visit(g, |clique| {
        let mut c = clique.to_vec();
        c.sort_unstable();
        out.push(c);
    });
    out
}

/// Streams all maximal cliques of `g` to `visit`. Each callback argument is
/// a maximal clique (unsorted).
///
/// Isolated vertices are reported as singleton cliques, matching the
/// convention that a single vertex is a (trivial) clique.
pub fn maximal_cliques_visit<F: FnMut(&[VertexId])>(g: &Graph, mut visit: F) {
    try_maximal_cliques_visit(g, |c| {
        visit(c);
        true
    });
}

/// Abortable variant of [`maximal_cliques_visit`]: enumeration stops as
/// soon as `visit` returns `false`. Returns `true` when the enumeration
/// ran to completion. Clique counts are exponential in the worst case, so
/// budgeted callers (the Clique+ baseline under the paper's INF cutoff)
/// need this to bail out.
pub fn try_maximal_cliques_visit<F: FnMut(&[VertexId]) -> bool>(g: &Graph, mut visit: F) -> bool {
    let n = g.num_vertices();
    if n == 0 {
        return true;
    }
    let (order, _) = degeneracy_order(g);
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    let mut r: Vec<VertexId> = Vec::new();
    for &v in &order {
        // P = later neighbors in degeneracy order; X = earlier neighbors.
        let mut p: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] > rank[v as usize])
            .collect();
        let mut x: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] < rank[v as usize])
            .collect();
        r.push(v);
        let keep_going = bk_pivot(g, &mut r, &mut p, &mut x, &mut visit);
        r.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Size of the largest clique of `g` (0 for the empty graph). Enumerates
/// maximal cliques and tracks the maximum — adequate at the scales the
/// baseline and tests use.
pub fn max_clique_size(g: &Graph) -> usize {
    let mut best = 0usize;
    maximal_cliques_visit(g, |c| best = best.max(c.len()));
    best
}

/// Returns false when the visitor aborted the enumeration.
fn bk_pivot<F: FnMut(&[VertexId]) -> bool>(
    g: &Graph,
    r: &mut Vec<VertexId>,
    p: &mut Vec<VertexId>,
    x: &mut Vec<VertexId>,
    visit: &mut F,
) -> bool {
    if p.is_empty() && x.is_empty() {
        return visit(r);
    }
    // Pivot: vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| count_common(g, u, p))
        .expect("P ∪ X non-empty");
    // Candidates not adjacent to the pivot.
    let candidates: Vec<VertexId> = p
        .iter()
        .copied()
        .filter(|&u| !g.has_edge(pivot, u))
        .collect();
    for v in candidates {
        let new_p: Vec<VertexId> = p.iter().copied().filter(|&u| g.has_edge(v, u)).collect();
        let new_x: Vec<VertexId> = x.iter().copied().filter(|&u| g.has_edge(v, u)).collect();
        r.push(v);
        let (mut np, mut nx) = (new_p, new_x);
        let keep_going = bk_pivot(g, r, &mut np, &mut nx, visit);
        r.pop();
        if !keep_going {
            return false;
        }
        // Move v from P to X.
        p.retain(|&u| u != v);
        x.push(v);
    }
    true
}

fn count_common(g: &Graph, u: VertexId, p: &[VertexId]) -> usize {
    p.iter().filter(|&&w| g.has_edge(u, w)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_graph::GraphBuilder;

    fn sorted(mut cs: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
        cs.sort();
        cs
    }

    fn clique_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn clique_graph_single_maximal() {
        let g = clique_graph(5);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(max_clique_size(&g), 5);
    }

    #[test]
    fn triangle_with_pendant() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let cs = sorted(maximal_cliques(&g));
        assert_eq!(cs, vec![vec![0, 1, 2], vec![2, 3]]);
        assert_eq!(max_clique_size(&g), 3);
    }

    #[test]
    fn path_cliques_are_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cs = sorted(maximal_cliques(&g));
        assert_eq!(cs, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn isolated_vertices_singletons() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let cs = sorted(maximal_cliques(&g));
        assert_eq!(cs, vec![vec![0, 1], vec![2]]);
        assert_eq!(max_clique_size(&g), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert!(maximal_cliques(&g).is_empty());
        assert_eq!(max_clique_size(&g), 0);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // 0-1-2 and 1-2-3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let cs = sorted(maximal_cliques(&g));
        assert_eq!(cs, vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn moon_moser_count() {
        // The complete tripartite graph K(2,2,2) (octahedron) has 2^3 = 8
        // maximal cliques (Moon–Moser bound for n = 6).
        let mut b = GraphBuilder::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                if u / 2 != v / 2 {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 8);
        assert!(cs.iter().all(|c| c.len() == 3));
    }
}
