//! # kr-clique
//!
//! Maximal clique enumeration for the Clique+ baseline (Section 3 of the
//! (k,r)-core paper): the vertex set of every (k,r)-core is a clique of the
//! similarity graph, so the baseline enumerates maximal cliques of the
//! similarity graph and post-filters with the structure constraint.
//!
//! The implementation is the classic Bron–Kerbosch algorithm with pivoting
//! (Tomita et al.) and a degeneracy-ordered outer loop (Eppstein et al.),
//! which is worst-case optimal `O(d · n · 3^{d/3})` for degeneracy `d`.

pub mod bron_kerbosch;

pub use bron_kerbosch::{
    max_clique_size, maximal_cliques, maximal_cliques_visit, try_maximal_cliques_visit,
};
