//! The central correctness property: every algorithm configuration and the
//! clique-based baseline agree on random attributed graphs, and all agree
//! with the brute-force definition oracle.

use kr_core::{
    clique_based_maximal, enumerate_maximal, find_maximum, AlgoConfig, BoundKind, BranchPolicy,
    KrCore, ProblemInstance, SearchOrder,
};
use kr_graph::{Graph, VertexId};
use kr_similarity::{AttributeTable, Metric, Threshold};
use proptest::prelude::*;

/// Random instance: n vertices, random edges, random 1-D positions in a
/// small range so similar/dissimilar pairs both occur, k in 1..=3.
fn arb_instance(n_max: usize) -> impl Strategy<Value = ProblemInstance> {
    (4..=n_max).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges.min(36)),
            proptest::collection::vec(0.0f64..10.0, n),
            1u32..=3,
            1.0f64..9.0,
        )
            .prop_map(move |(edges, xs, k, r)| {
                let g = Graph::from_edges(n, &edges);
                let pts = xs.into_iter().map(|x| (x, 0.0)).collect();
                ProblemInstance::new(
                    g,
                    AttributeTable::points(pts),
                    Metric::Euclidean,
                    Threshold::MaxDistance(r),
                    k,
                )
            })
    })
}

/// Brute-force maximal (k,r)-core oracle by subset enumeration (n <= ~12).
fn brute_maximal(p: &ProblemInstance) -> Vec<KrCore> {
    let n = p.graph().num_vertices();
    assert!(n <= 14);
    let mut cores: Vec<(u32, Vec<VertexId>)> = Vec::new();
    for mask in 1u32..(1u32 << n) {
        let vs: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask >> v & 1 == 1).collect();
        if kr_core::is_kr_core(p, &KrCore::new(vs.clone())) {
            cores.push((mask, vs));
        }
    }
    let mut out = Vec::new();
    'outer: for &(m, ref vs) in &cores {
        for &(m2, _) in &cores {
            if m != m2 && m & m2 == m {
                continue 'outer;
            }
        }
        out.push(KrCore::new(vs.clone()));
    }
    out.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    out
}

fn enum_configs() -> Vec<(&'static str, AlgoConfig)> {
    vec![
        ("naive", AlgoConfig::naive_enum()),
        ("basic", AlgoConfig::basic_enum()),
        ("be_cr", AlgoConfig::be_cr()),
        ("be_cr_et", AlgoConfig::be_cr_et()),
        ("adv", AlgoConfig::adv_enum()),
        ("adv_degree", AlgoConfig::adv_enum_no_order()),
        (
            "adv_random",
            AlgoConfig::adv_enum().with_order(SearchOrder::Random),
        ),
        (
            "adv_d1",
            AlgoConfig::adv_enum().with_order(SearchOrder::Delta1),
        ),
        (
            "adv_d2",
            AlgoConfig::adv_enum().with_order(SearchOrder::Delta2),
        ),
        (
            "adv_lambda",
            AlgoConfig::adv_enum().with_order(SearchOrder::LambdaDelta),
        ),
    ]
}

fn max_configs() -> Vec<(&'static str, AlgoConfig)> {
    vec![
        ("basic_max", AlgoConfig::basic_max()),
        ("adv_max", AlgoConfig::adv_max()),
        (
            "max_color",
            AlgoConfig::adv_max().with_bound(BoundKind::Color),
        ),
        (
            "max_kcore",
            AlgoConfig::adv_max().with_bound(BoundKind::KCore),
        ),
        (
            "max_ck",
            AlgoConfig::adv_max().with_bound(BoundKind::ColorKCore),
        ),
        (
            "max_expand",
            AlgoConfig::adv_max().with_branch(BranchPolicy::AlwaysExpand),
        ),
        (
            "max_shrink",
            AlgoConfig::adv_max().with_branch(BranchPolicy::AlwaysShrink),
        ),
        ("max_degree", AlgoConfig::adv_max_no_order()),
        (
            "max_random",
            AlgoConfig::adv_max().with_order(SearchOrder::Random),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// AdvEnum output = brute-force maximal family.
    #[test]
    fn adv_enum_matches_brute_force(p in arb_instance(10)) {
        let expect = brute_maximal(&p);
        let got = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        prop_assert!(got.completed);
        prop_assert_eq!(&got.cores, &expect);
    }

    /// Every enumeration configuration agrees with NaiveEnum.
    #[test]
    fn all_enum_configs_agree(p in arb_instance(10)) {
        let reference = enumerate_maximal(&p, &AlgoConfig::naive_enum()).cores;
        for (name, cfg) in enum_configs() {
            let got = enumerate_maximal(&p, &cfg);
            prop_assert!(got.completed, "{} aborted", name);
            prop_assert_eq!(&got.cores, &reference, "config {}", name);
        }
    }

    /// The clique-based baseline agrees too.
    #[test]
    fn clique_baseline_agrees(p in arb_instance(10)) {
        let reference = enumerate_maximal(&p, &AlgoConfig::adv_enum()).cores;
        let baseline = clique_based_maximal(&p);
        prop_assert_eq!(baseline, reference);
    }

    /// Every maximum configuration finds a core of the true maximum size.
    #[test]
    fn max_configs_find_true_maximum(p in arb_instance(10)) {
        let maximal = brute_maximal(&p);
        let expect = maximal.iter().map(|c| c.len()).max().unwrap_or(0);
        for (name, cfg) in max_configs() {
            let got = find_maximum(&p, &cfg);
            prop_assert!(got.completed, "{} aborted", name);
            let size = got.core.as_ref().map_or(0, |c| c.len());
            prop_assert_eq!(size, expect, "config {}", name);
            if let Some(c) = &got.core {
                prop_assert!(kr_core::is_kr_core(&p, c), "{} returned non-core", name);
            }
        }
    }

    /// Upper bounds at the root dominate the true maximum size.
    #[test]
    fn bounds_dominate_maximum(p in arb_instance(10)) {
        use kr_core::bounds::size_upper_bound;
        use kr_core::search::SearchState;
        let maximal = brute_maximal(&p);
        let truth = maximal.iter().map(|c| c.len()).max().unwrap_or(0);
        // Bound is per component; the max over components bounds the max core.
        let comps = p.preprocess();
        for bound in [
            BoundKind::Naive,
            BoundKind::Color,
            BoundKind::KCore,
            BoundKind::ColorKCore,
            BoundKind::DoubleKCore,
        ] {
            let ub: u32 = comps
                .iter()
                .map(|c| {
                    let mut st = SearchState::new(c);
                    prop_assume!(st.prune_root());
                    Ok(size_upper_bound(&st, bound))
                })
                .collect::<Result<Vec<_>, TestCaseError>>()?
                .into_iter()
                .max()
                .unwrap_or(0);
            prop_assert!(ub as usize >= truth, "{bound:?}: ub {ub} < truth {truth}");
        }
        // The (k,k')-core bound is never looser than the similarity k-core
        // bound.
        for c in &comps {
            let mut st = SearchState::new(c);
            prop_assume!(st.prune_root());
            prop_assert!(
                size_upper_bound(&st, BoundKind::DoubleKCore)
                    <= size_upper_bound(&st, BoundKind::KCore)
            );
        }
    }

    /// Keyword attributes + weighted Jaccard: AdvEnum still matches brute
    /// force (exercises the similarity-metric side).
    #[test]
    fn keyword_instances_agree(
        n in 4usize..=9,
        edges in proptest::collection::vec((0u32..9, 0u32..9), 0..24),
        seeds in proptest::collection::vec(0u32..4, 9),
        k in 1u32..=2,
    ) {
        let edges: Vec<(VertexId, VertexId)> = edges
            .into_iter()
            .filter(|&(a, b)| (a as usize) < n && (b as usize) < n)
            .collect();
        let g = Graph::from_edges(n, &edges);
        // Two keyword "topics"; a vertex's list depends on its seed.
        let lists: Vec<Vec<(u32, f64)>> = seeds
            .iter()
            .take(n)
            .map(|&s| match s {
                0 => vec![(0, 2.0), (1, 1.0)],
                1 => vec![(0, 1.0), (1, 2.0)],
                2 => vec![(2, 2.0), (3, 1.0)],
                _ => vec![(1, 1.0), (2, 1.0)],
            })
            .collect();
        let p = ProblemInstance::new(
            g,
            AttributeTable::keywords(lists),
            Metric::WeightedJaccard,
            Threshold::MinSimilarity(0.4),
            k,
        );
        let expect = brute_maximal(&p);
        let got = enumerate_maximal(&p, &AlgoConfig::adv_enum());
        prop_assert_eq!(&got.cores, &expect);
        let m = find_maximum(&p, &AlgoConfig::adv_max());
        prop_assert_eq!(
            m.core.map_or(0, |c| c.len()),
            expect.iter().map(|c| c.len()).max().unwrap_or(0)
        );
    }
}
