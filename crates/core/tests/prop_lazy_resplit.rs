//! PR 9 equivalence properties: the lazy dissimilarity view and the
//! re-splitting parallel engine must be invisible in results.
//!
//! * Lazy ≡ eager: forcing [`DissimMode::Lazy`] (vs `Eager`) on random
//!   instances changes no enumerated core family and no maximum core —
//!   sequentially and under the parallel engine, with re-splitting off
//!   and forced, in both threshold directions (Euclidean `MaxDistance`
//!   and Jaccard `MinSimilarity`).
//! * Re-splitting fires: on an adversarial skewed instance (a chain of
//!   bridged cliques whose tree is deep and lopsided), `Resplit::Forced`
//!   must record at least one donation — and still return sequential
//!   results.

use kr_core::{enumerate_maximal, find_maximum, AlgoConfig, ProblemInstance, Resplit};
use kr_graph::{Graph, VertexId};
use kr_similarity::{AttributeTable, DissimMode, Metric, Threshold};
use proptest::prelude::*;

/// Random geometric instance: Euclidean points, similar = close
/// (`MaxDistance` direction — dissimilarity is "too far").
fn geo_instance(
    n: usize,
    edges: &[(VertexId, VertexId)],
    coords: &[(f64, f64)],
    r: f64,
) -> ProblemInstance {
    ProblemInstance::new(
        Graph::from_edges(n, edges),
        AttributeTable::points(coords[..n].to_vec()),
        Metric::Euclidean,
        Threshold::MaxDistance(r),
        2,
    )
}

/// Random keyword instance: Jaccard similarity, similar = enough overlap
/// (`MinSimilarity` direction — dissimilarity is "too little overlap").
fn keyword_instance(
    n: usize,
    edges: &[(VertexId, VertexId)],
    keyword_bits: &[u8],
    r: f64,
) -> ProblemInstance {
    let lists: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|v| {
            let bits = keyword_bits[v];
            (0..8u32)
                .filter(|kw| bits & (1 << kw) != 0)
                .map(|kw| (kw, 1.0))
                .collect()
        })
        .collect();
    ProblemInstance::new(
        Graph::from_edges(n, edges),
        AttributeTable::keywords(lists),
        Metric::Jaccard,
        Threshold::MinSimilarity(r),
        2,
    )
}

fn clamp_edges(edges: &[(VertexId, VertexId)], n: usize) -> Vec<(VertexId, VertexId)> {
    edges
        .iter()
        .map(|&(u, v)| (u % n as VertexId, v % n as VertexId))
        .filter(|&(u, v)| u != v)
        .collect()
}

/// Every engine variant under test must reproduce the eager sequential
/// result on `p` exactly (core family and maximum core vertex set).
fn assert_all_engines_agree(p: &ProblemInstance) {
    let eager = p.clone().with_dissim_mode(DissimMode::Eager);
    let lazy = p.clone().with_dissim_mode(DissimMode::Lazy);

    let enum_base = enumerate_maximal(&eager, &AlgoConfig::adv_enum());
    let max_base = find_maximum(&eager, &AlgoConfig::adv_max());

    let enum_cfgs = [
        ("seq", AlgoConfig::adv_enum()),
        (
            "par2-off",
            AlgoConfig::adv_enum_parallel()
                .with_threads(2)
                .with_resplit(Resplit::Off),
        ),
        (
            "par2-forced",
            AlgoConfig::adv_enum_parallel()
                .with_threads(2)
                .with_resplit(Resplit::Forced),
        ),
    ];
    for (name, cfg) in &enum_cfgs {
        for (mode, inst) in [("eager", &eager), ("lazy", &lazy)] {
            let res = enumerate_maximal(inst, cfg);
            assert!(res.completed, "enum {name}/{mode}");
            assert_eq!(res.cores, enum_base.cores, "enum {name}/{mode}");
        }
    }

    let max_cfgs = [
        ("seq", AlgoConfig::adv_max()),
        (
            "par2-off",
            AlgoConfig::adv_max_parallel()
                .with_threads(2)
                .with_resplit(Resplit::Off),
        ),
        (
            "par2-forced",
            AlgoConfig::adv_max_parallel()
                .with_threads(2)
                .with_resplit(Resplit::Forced),
        ),
    ];
    for (name, cfg) in &max_cfgs {
        for (mode, inst) in [("eager", &eager), ("lazy", &lazy)] {
            let res = find_maximum(inst, cfg);
            assert!(res.completed, "max {name}/{mode}");
            assert_eq!(
                res.core.as_ref().map(|c| &c.vertices),
                max_base.core.as_ref().map(|c| &c.vertices),
                "max {name}/{mode}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MaxDistance direction: random geometric instances.
    #[test]
    fn lazy_eager_and_resplit_agree_geometric(
        n in 6usize..13,
        edges in proptest::collection::vec((0u32..13, 0u32..13), 8..60),
        coords in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0), 13),
        r in 2.0f64..18.0,
    ) {
        let edges = clamp_edges(&edges, n);
        assert_all_engines_agree(&geo_instance(n, &edges, &coords, r));
    }

    /// MinSimilarity direction: random keyword instances under Jaccard.
    #[test]
    fn lazy_eager_and_resplit_agree_keywords(
        n in 6usize..13,
        edges in proptest::collection::vec((0u32..13, 0u32..13), 8..60),
        keyword_bits in proptest::collection::vec(1u8..=255, 13),
        r in 0.1f64..0.9,
    ) {
        let edges = clamp_edges(&edges, n);
        assert_all_engines_agree(&keyword_instance(n, &edges, &keyword_bits, r));
    }
}

/// Adversarial skewed-tree instance: a chain of `c` 4-cliques, each
/// bridged to the next through a shared vertex, laid out on a line so
/// only *adjacent* cliques are similar. The expand/shrink tree is deep
/// (one long spine) and lopsided, which is exactly the shape that
/// strands a static frontier split.
fn chain_of_cliques(c: usize) -> ProblemInstance {
    let mut edges = Vec::new();
    let mut pts = Vec::new();
    // Clique i owns vertices [3i, 3i+3]; vertex 3(i+1) is shared with
    // clique i+1.
    for i in 0..c {
        let base = (3 * i) as VertexId;
        let group = [base, base + 1, base + 2, base + 3];
        for a in 0..4 {
            for b in (a + 1)..4 {
                edges.push((group[a], group[b]));
            }
        }
    }
    let n = 3 * c + 1;
    for v in 0..n {
        // Cliques are 6.0 apart; within-clique spread is ~1. With r = 7
        // adjacent cliques stay similar, farther pairs turn dissimilar.
        let clique = v / 3;
        let offset = (v % 3) as f64 * 0.5;
        pts.push((clique as f64 * 6.0 + offset, offset));
    }
    ProblemInstance::new(
        Graph::from_edges(n, &edges),
        AttributeTable::points(pts),
        Metric::Euclidean,
        Threshold::MaxDistance(7.0),
        2,
    )
}

#[test]
fn forced_resplit_fires_and_preserves_enumeration() {
    let p = chain_of_cliques(6);
    let seq = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    assert!(seq.completed);
    assert!(!seq.cores.is_empty());
    for threads in [2, 4] {
        let cfg = AlgoConfig::adv_enum_parallel()
            .with_threads(threads)
            .with_resplit(Resplit::Forced);
        let par = enumerate_maximal(&p, &cfg);
        assert!(par.completed);
        assert_eq!(par.cores, seq.cores, "threads={threads}");
        assert!(
            par.stats.resplits >= 1,
            "forced re-splitting must donate at least once (threads={threads})"
        );
        assert!(par.stats.resplit_subtasks >= par.stats.resplits);
    }
}

#[test]
fn forced_resplit_fires_and_preserves_maximum() {
    let p = chain_of_cliques(6);
    let seq = find_maximum(&p, &AlgoConfig::adv_max());
    assert!(seq.completed);
    for threads in [2, 4] {
        let cfg = AlgoConfig::adv_max_parallel()
            .with_threads(threads)
            .with_resplit(Resplit::Forced);
        let par = find_maximum(&p, &cfg);
        assert!(par.completed);
        assert_eq!(
            par.core.as_ref().map(|c| &c.vertices),
            seq.core.as_ref().map(|c| &c.vertices),
            "threads={threads}"
        );
    }
}

#[test]
fn adaptive_resplit_defaults_on_and_preserves_results() {
    // The shipped default (`Resplit::Adaptive`) on the skewed chain:
    // donation only happens under measured starvation, so `resplits` may
    // legitimately be zero — results must be identical regardless.
    let p = chain_of_cliques(6);
    assert_eq!(AlgoConfig::adv_enum_parallel().resplit, Resplit::Adaptive);
    let seq = enumerate_maximal(&p, &AlgoConfig::adv_enum());
    let par = enumerate_maximal(&p, &AlgoConfig::adv_enum_parallel().with_threads(4));
    assert_eq!(par.cores, seq.cores);
    let seq_max = find_maximum(&p, &AlgoConfig::adv_max());
    let par_max = find_maximum(&p, &AlgoConfig::adv_max_parallel().with_threads(4));
    assert_eq!(
        par_max.core.as_ref().map(|c| &c.vertices),
        seq_max.core.as_ref().map(|c| &c.vertices),
    );
}

/// Lazy mode on the chain, exercised end to end: the searches must agree
/// and the component must report lazily materialized rows strictly below
/// the full row count (the ≤ 30 % bench gate's mechanism in miniature).
#[test]
fn lazy_materializes_fewer_rows_than_eager_on_chain() {
    let p = chain_of_cliques(8).with_dissim_mode(DissimMode::Lazy);
    let comps = p.preprocess();
    assert!(comps.iter().any(|c| c.is_dissimilarity_lazy()));
    let seq = kr_core::enumerate_maximal_prepared(&comps, &AlgoConfig::adv_enum());
    assert!(seq.completed);
    let (total_rows, materialized): (usize, usize) = comps.iter().fold((0, 0), |(t, m), c| {
        (t + c.len(), m + c.dissimilarity().materialized_rows())
    });
    assert!(
        materialized < total_rows,
        "search must not touch every row ({materialized}/{total_rows})"
    );
    // And the family still matches the eager run.
    let eager = chain_of_cliques(8).with_dissim_mode(DissimMode::Eager);
    let expect = enumerate_maximal(&eager, &AlgoConfig::adv_enum());
    assert_eq!(seq.cores, expect.cores);
}
