//! Property tests for the parallel engine: parallel pruning must never
//! lose a maximal core, and the parallel maximum search must return the
//! very core the sequential search returns.

use kr_core::{enumerate_maximal, find_maximum, AlgoConfig, KrCore, ProblemInstance};
use kr_graph::{Graph, VertexId};
use kr_similarity::{AttributeTable, Metric, Threshold};
use proptest::prelude::*;

/// Random instance: n vertices, random edges, random 1-D positions in a
/// small range so similar/dissimilar pairs both occur, k in 1..=3.
fn arb_instance(n_max: usize) -> impl Strategy<Value = ProblemInstance> {
    (4..=n_max).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        (
            proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges.min(36)),
            proptest::collection::vec(0.0f64..10.0, n),
            1u32..=3,
            1.0f64..9.0,
        )
            .prop_map(move |(edges, xs, k, r)| {
                let g = Graph::from_edges(n, &edges);
                let pts = xs.into_iter().map(|x| (x, 0.0)).collect();
                ProblemInstance::new(
                    g,
                    AttributeTable::points(pts),
                    Metric::Euclidean,
                    Threshold::MaxDistance(r),
                    k,
                )
            })
    })
}

/// Brute-force maximal (k,r)-core oracle by subset enumeration.
fn brute_maximal(p: &ProblemInstance) -> Vec<KrCore> {
    let n = p.graph().num_vertices();
    assert!(n <= 14);
    let mut cores: Vec<(u32, Vec<VertexId>)> = Vec::new();
    for mask in 1u32..(1u32 << n) {
        let vs: Vec<VertexId> = (0..n as VertexId).filter(|&v| mask >> v & 1 == 1).collect();
        if kr_core::is_kr_core(p, &KrCore::new(vs.clone())) {
            cores.push((mask, vs));
        }
    }
    let mut out = Vec::new();
    'outer: for &(m, ref vs) in &cores {
        for &(m2, _) in &cores {
            if m != m2 && m & m2 == m {
                continue 'outer;
            }
        }
        out.push(KrCore::new(vs.clone()));
    }
    out.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parallel pruning never loses a maximal core: every brute-force
    /// maximal (k,r)-core appears in the parallel enumeration, at every
    /// thread count (and nothing extra appears either).
    #[test]
    fn parallel_enum_never_loses_a_core(p in arb_instance(10)) {
        let expect = brute_maximal(&p);
        for threads in [2, 3, 8] {
            let par = enumerate_maximal(
                &p,
                &AlgoConfig::adv_enum_parallel().with_threads(threads),
            );
            prop_assert!(par.completed, "threads={} aborted", threads);
            for core in &expect {
                prop_assert!(
                    par.cores.contains(core),
                    "threads={}: lost maximal core {:?}",
                    threads,
                    core
                );
            }
            prop_assert_eq!(&par.cores, &expect, "threads={}", threads);
        }
    }

    /// The parallel maximum search returns the exact same vertex set as
    /// the sequential search — tie-breaking included (the shared atomic
    /// bound is only consulted strictly, see kr_core::parallel docs).
    #[test]
    fn parallel_max_identical_to_sequential(p in arb_instance(10)) {
        let seq = find_maximum(&p, &AlgoConfig::adv_max());
        for threads in [2, 3, 8] {
            let par = find_maximum(
                &p,
                &AlgoConfig::adv_max_parallel().with_threads(threads),
            );
            prop_assert!(par.completed, "threads={} aborted", threads);
            prop_assert_eq!(
                par.core.as_ref().map(|c| &c.vertices),
                seq.core.as_ref().map(|c| &c.vertices),
                "threads={}",
                threads
            );
        }
    }

    /// BasicMax on the parallel engine (naive bound, no maximal check)
    /// also reproduces its sequential twin, exercising the merge path
    /// without the (k,k')-core bound.
    #[test]
    fn parallel_basic_max_identical_to_sequential(p in arb_instance(9)) {
        let seq = find_maximum(&p, &AlgoConfig::basic_max());
        let par = find_maximum(&p, &AlgoConfig::basic_max().with_threads(4));
        prop_assert_eq!(
            par.core.as_ref().map(|c| &c.vertices),
            seq.core.as_ref().map(|c| &c.vertices)
        );
    }
}
